//! # conference
//!
//! A large-scale video-conferencing-service simulator — the substrate that
//! stands in for the paper's proprietary MS Teams telemetry (§3).
//!
//! The pipeline per call: [`netsim`] paths per participant → application
//! mitigation → per-channel impairment → the behavioural user model in
//! [`behavior`] (mute / camera / leave state machines) → client telemetry
//! aggregation → [`records::SessionRecord`]s, with an explicit 1–5 rating for
//! a ~0.1–1 % sampled sliver ([`feedback`]).
//!
//! The headline invariants this crate is calibrated to (asserted in its
//! tests and in `tests/figure_shapes.rs`):
//!
//! * latency hits Mic On hardest (steep to ~150 ms, plateau after);
//! * loss ≤ 2 % barely moves engagement (mitigation), ≥ 3 % triggers
//!   abandonment;
//! * jitter hits Cam On hardest;
//! * bandwidth ≥ 1 Mbps is enough; Mic On ignores bandwidth entirely;
//! * latency × loss compound (Fig. 2); mobile users bail sooner (Fig. 3);
//! * engagement correlates with the sampled MOS (Fig. 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod call;
pub mod dataset;
pub mod events;
pub mod feedback;
pub mod platform;
pub mod records;
pub mod user;

pub use behavior::{BehaviorOutcome, BehaviorParams, SessionBehavior};
pub use call::{CallConfig, CallSimulator, DetailedSession};
pub use dataset::{generate, generate_with, DatasetConfig};
pub use events::{EarlySnapshot, SessionEvent, SessionTimeline, TimedEvent};
pub use feedback::FeedbackModel;
pub use platform::Platform;
pub use records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
pub use user::UserProfile;
