//! The behavioural user model: impairment → in-session actions.
//!
//! This is the mechanistic heart of the §3 reproduction. Each participant is
//! a small per-tick stochastic state machine over (in-call, mic, camera):
//!
//! * **Leaving** — a per-tick hazard with a baseline (people leave meetings
//!   for non-network reasons) plus a network term driven by overall
//!   impairment, amplified by a *loss kick* above ~2 % raw loss (the paper:
//!   at ≥ 3 % loss *"the chance of a user dropping off increases
//!   significantly"* because quality becomes unacceptable even to FEC) and a
//!   latency×loss interaction that produces the Fig. 2 compounding dip.
//! * **Muting** — a two-state Markov chain whose off-pressure follows the
//!   interactivity impairment: latency's knee-then-plateau shape reappears in
//!   Mic On (*"users mute themselves … as the means of first resort"*).
//! * **Camera** — a two-state Markov chain pressured by video impairment
//!   (jitter, loss, bandwidth deficit) and, more weakly, by interactivity
//!   (high latency makes people turn video off too).
//!
//! Sensitivities are scaled per platform (Fig. 3), per user conditioning
//! (§6), and per meeting size (§6, weak).

use crate::events::{SessionEvent, SessionTimeline};
use crate::platform::Platform;
use crate::user::UserProfile;
use analytics::dist::bernoulli;
use netsim::quality::ChannelImpairment;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunable constants of the behavioural model.
///
/// Defaults are calibrated so the population curves match the paper's
/// reported magnitudes (see crate tests and `tests/figure_shapes.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorParams {
    /// Baseline per-tick leave hazard (non-network reasons).
    pub leave_base_per_tick: f64,
    /// Gain of the network term of the leave hazard.
    pub leave_net_gain: f64,
    /// Raw loss fraction where the "unacceptable quality" kick starts.
    pub loss_kick_threshold: f64,
    /// Raw loss span over which the kick saturates.
    pub loss_kick_sat: f64,
    /// Kick magnitude at saturation (added leave pressure).
    pub loss_kick_gain: f64,
    /// Interaction gain between overall impairment and the loss kick
    /// (drives the Fig. 2 compounding).
    pub leave_interaction: f64,
    /// Baseline P(unmute) per tick.
    pub mic_on_base: f64,
    /// Baseline P(mute) per tick.
    pub mic_off_base: f64,
    /// Network gain on mute pressure.
    pub mic_off_net_gain: f64,
    /// Network damping on unmute rate.
    pub mic_on_net_damp: f64,
    /// Weight of audio impairment in mic pressure (interactivity weight is 1).
    pub mic_audio_weight: f64,
    /// Baseline P(camera on) per tick.
    pub cam_on_base: f64,
    /// Baseline P(camera off) per tick.
    pub cam_off_base: f64,
    /// Weight of video impairment in camera pressure.
    pub cam_video_weight: f64,
    /// Weight of interactivity impairment in camera pressure.
    pub cam_int_weight: f64,
    /// Network gain on camera-off pressure.
    pub cam_off_net_gain: f64,
    /// Network damping on camera-on rate.
    pub cam_on_net_damp: f64,
    /// Per-extra-participant multiplier on staying muted (large meetings).
    pub meeting_size_mute_gain: f64,
    /// Per-extra-participant multiplier on the baseline leave hazard (weak).
    pub meeting_size_leave_gain: f64,
}

impl Default for BehaviorParams {
    fn default() -> BehaviorParams {
        BehaviorParams {
            leave_base_per_tick: 1.7e-4,
            leave_net_gain: 1.8e-3,
            loss_kick_threshold: 0.024,
            loss_kick_sat: 0.03,
            loss_kick_gain: 7.0,
            leave_interaction: 0.7,
            mic_on_base: 0.06,
            mic_off_base: 0.02,
            mic_off_net_gain: 1.1,
            mic_on_net_damp: 0.7,
            mic_audio_weight: 0.3,
            cam_on_base: 0.025,
            cam_off_base: 0.015,
            cam_video_weight: 1.6,
            cam_int_weight: 0.6,
            cam_off_net_gain: 0.8,
            cam_on_net_damp: 0.6,
            meeting_size_mute_gain: 0.04,
            meeting_size_leave_gain: 0.01,
        }
    }
}

impl BehaviorParams {
    /// The leave *pressure* (multiplies [`BehaviorParams::leave_net_gain`])
    /// for one tick, given the channel impairment and the **session-mean**
    /// raw (pre-FEC) loss fraction so far. Using the running mean — not the
    /// instantaneous tick — matches the paper's session-mean framing: loss
    /// bursts inside an otherwise-clean session do not trigger abandonment,
    /// sustained loss beyond ~2–3 % does.
    pub fn leave_pressure(&self, imp: &ChannelImpairment, raw_loss_frac: f64) -> f64 {
        let overall = imp.overall();
        let kick = if self.loss_kick_sat <= 0.0 {
            0.0
        } else {
            self.loss_kick_gain
                * ((raw_loss_frac - self.loss_kick_threshold) / self.loss_kick_sat).clamp(0.0, 1.0)
        };
        overall + kick + self.leave_interaction * overall * kick
    }

    /// Mic-toggle pressure for one tick.
    pub fn mic_pressure(&self, imp: &ChannelImpairment) -> f64 {
        imp.interactivity + self.mic_audio_weight * imp.audio
    }

    /// Camera-toggle pressure for one tick.
    pub fn cam_pressure(&self, imp: &ChannelImpairment) -> f64 {
        self.cam_video_weight * imp.video + self.cam_int_weight * imp.interactivity
    }
}

/// Outcome of a finished (or abandoned) session from the behaviour model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorOutcome {
    /// Ticks the user stayed in the call.
    pub attended_ticks: u32,
    /// Ticks with microphone on.
    pub mic_on_ticks: u32,
    /// Ticks with camera on.
    pub cam_on_ticks: u32,
    /// Whether the user left before the scheduled end.
    pub left_early: bool,
    /// Mean overall impairment experienced while in the call.
    pub mean_overall_impairment: f64,
    /// Mean leave pressure experienced while in the call (includes the loss
    /// kick; feeds the MOS latent quality).
    pub mean_leave_pressure: f64,
}

impl BehaviorOutcome {
    /// Fraction of attended ticks with mic on (0 when nothing attended).
    pub fn mic_on_fraction(&self) -> f64 {
        if self.attended_ticks == 0 {
            0.0
        } else {
            self.mic_on_ticks as f64 / self.attended_ticks as f64
        }
    }

    /// Fraction of attended ticks with camera on.
    pub fn cam_on_fraction(&self) -> f64 {
        if self.attended_ticks == 0 {
            0.0
        } else {
            self.cam_on_ticks as f64 / self.attended_ticks as f64
        }
    }
}

/// Live behavioural state for one participant session.
#[derive(Debug, Clone)]
pub struct SessionBehavior {
    params: BehaviorParams,
    // Precomputed per-session multipliers.
    leave_base: f64,
    leave_sens: f64,
    toggle_sens: f64,
    mic_on_rate: f64,
    mic_off_rate: f64,
    cam_on_rate: f64,
    cam_off_rate: f64,
    // State.
    mic_on: bool,
    cam_on: bool,
    attended: u32,
    mic_ticks: u32,
    cam_ticks: u32,
    overall_sum: f64,
    pressure_sum: f64,
    raw_loss_sum: f64,
    loss_ticks: u32,
    left: bool,
    timeline: Option<SessionTimeline>,
}

impl SessionBehavior {
    /// Set up the per-session multipliers and draw initial mic/cam states
    /// from their baseline stationary distribution.
    pub fn start<R: Rng + ?Sized>(
        rng: &mut R,
        params: BehaviorParams,
        platform: Platform,
        user: &UserProfile,
        meeting_size: u16,
    ) -> SessionBehavior {
        let extra = (meeting_size.max(3) - 3) as f64;
        let mute_size_factor = (1.0 + params.meeting_size_mute_gain * extra).min(2.5);
        let leave_size_factor = 1.0 + params.meeting_size_leave_gain * extra;
        let mic_on_rate =
            (params.mic_on_base * user.mic_propensity / mute_size_factor).clamp(1e-4, 0.9);
        let mic_off_rate = (params.mic_off_base * mute_size_factor).clamp(1e-4, 0.9);
        let cam_on_rate =
            (params.cam_on_base * user.cam_propensity * platform.cam_baseline()).clamp(1e-4, 0.9);
        let cam_off_rate = params.cam_off_base.clamp(1e-4, 0.9);
        let mic_stationary = mic_on_rate / (mic_on_rate + mic_off_rate);
        let cam_stationary = cam_on_rate / (cam_on_rate + cam_off_rate);
        SessionBehavior {
            params,
            leave_base: params.leave_base_per_tick * user.impatience * leave_size_factor,
            leave_sens: platform.leave_sensitivity() * user.network_sensitivity(),
            toggle_sens: platform.toggle_sensitivity() * user.network_sensitivity(),
            mic_on_rate,
            mic_off_rate,
            cam_on_rate,
            cam_off_rate,
            mic_on: bernoulli(rng, mic_stationary),
            cam_on: bernoulli(rng, cam_stationary),
            attended: 0,
            mic_ticks: 0,
            cam_ticks: 0,
            overall_sum: 0.0,
            pressure_sum: 0.0,
            raw_loss_sum: 0.0,
            loss_ticks: 0,
            left: false,
            timeline: None,
        }
    }

    /// Start recording the action timeline (§3.3's "early indication"
    /// machinery). Records the join and the initial mic/cam states at tick 0.
    pub fn enable_timeline(&mut self) {
        let mut t = SessionTimeline::default();
        t.push(0, SessionEvent::Joined);
        if self.mic_on {
            t.push(0, SessionEvent::MicOn);
        }
        if self.cam_on {
            t.push(0, SessionEvent::CamOn);
        }
        self.timeline = Some(t);
    }

    /// Take the recorded timeline (empty if recording was never enabled).
    pub fn take_timeline(&mut self) -> SessionTimeline {
        self.timeline.take().unwrap_or_default()
    }

    /// Whether the user has already left.
    pub fn has_left(&self) -> bool {
        self.left
    }

    /// Advance one tick. Returns `false` once the user has left (the tick is
    /// not counted).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        imp: &ChannelImpairment,
        raw_loss_frac: f64,
    ) -> bool {
        if self.left {
            return false;
        }
        // Track the running session-mean raw loss (including this tick).
        self.raw_loss_sum += raw_loss_frac.clamp(0.0, 1.0);
        self.loss_ticks += 1;
        let mean_raw_loss = self.raw_loss_sum / f64::from(self.loss_ticks);
        let pressure = self.params.leave_pressure(imp, mean_raw_loss);
        let p_leave = (self.leave_base + self.params.leave_net_gain * self.leave_sens * pressure)
            .clamp(0.0, 0.5);
        if bernoulli(rng, p_leave) {
            self.left = true;
            if let Some(t) = self.timeline.as_mut() {
                t.push(self.attended, SessionEvent::Left);
            }
            return false;
        }
        self.attended += 1;
        self.overall_sum += imp.overall();
        self.pressure_sum += pressure;

        // Mic chain.
        let mic_p = self.toggle_sens * self.params.mic_pressure(imp);
        if self.mic_on {
            let p_off =
                (self.mic_off_rate * (1.0 + self.params.mic_off_net_gain * mic_p)).min(0.95);
            if bernoulli(rng, p_off) {
                self.mic_on = false;
                if let Some(t) = self.timeline.as_mut() {
                    t.push(self.attended, SessionEvent::MicOff);
                }
            }
        } else {
            let p_on = self.mic_on_rate / (1.0 + self.params.mic_on_net_damp * mic_p);
            if bernoulli(rng, p_on) {
                self.mic_on = true;
                if let Some(t) = self.timeline.as_mut() {
                    t.push(self.attended, SessionEvent::MicOn);
                }
            }
        }
        if self.mic_on {
            self.mic_ticks += 1;
        }

        // Camera chain.
        let cam_p = self.toggle_sens * self.params.cam_pressure(imp);
        if self.cam_on {
            let p_off =
                (self.cam_off_rate * (1.0 + self.params.cam_off_net_gain * cam_p)).min(0.95);
            if bernoulli(rng, p_off) {
                self.cam_on = false;
                if let Some(t) = self.timeline.as_mut() {
                    t.push(self.attended, SessionEvent::CamOff);
                }
            }
        } else {
            let p_on = self.cam_on_rate / (1.0 + self.params.cam_on_net_damp * cam_p);
            if bernoulli(rng, p_on) {
                self.cam_on = true;
                if let Some(t) = self.timeline.as_mut() {
                    t.push(self.attended, SessionEvent::CamOn);
                }
            }
        }
        if self.cam_on {
            self.cam_ticks += 1;
        }
        true
    }

    /// Finalize after the scheduled end (or early exit).
    pub fn finish(&self, scheduled_ticks: u32) -> BehaviorOutcome {
        let attended = self.attended;
        BehaviorOutcome {
            attended_ticks: attended,
            mic_on_ticks: self.mic_ticks,
            cam_on_ticks: self.cam_ticks,
            left_early: self.left && attended < scheduled_ticks,
            mean_overall_impairment: if attended == 0 {
                0.0
            } else {
                self.overall_sum / attended as f64
            },
            mean_leave_pressure: if attended == 0 {
                0.0
            } else {
                self.pressure_sum / attended as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean() -> ChannelImpairment {
        ChannelImpairment {
            interactivity: 0.0,
            audio: 0.0,
            video: 0.0,
        }
    }

    fn user(rng: &mut StdRng) -> UserProfile {
        let mut u = UserProfile::sample(rng, 1);
        // Neutralise heterogeneity for deterministic-ish averages.
        u.mic_propensity = 1.0;
        u.cam_propensity = 1.0;
        u.impatience = 1.0;
        u.conditioned = false;
        u
    }

    /// Run many sessions under constant impairment; return mean
    /// (attended_fraction, mic_fraction, cam_fraction).
    fn population(
        imp: ChannelImpairment,
        raw_loss: f64,
        platform: Platform,
        ticks: u32,
        n: usize,
    ) -> (f64, f64, f64) {
        let mut rng = StdRng::seed_from_u64(77);
        let params = BehaviorParams::default();
        let mut att = 0.0;
        let mut mic = 0.0;
        let mut cam = 0.0;
        for _ in 0..n {
            let u = user(&mut rng);
            let mut b = SessionBehavior::start(&mut rng, params, platform, &u, 6);
            for _ in 0..ticks {
                if !b.step(&mut rng, &imp, raw_loss) {
                    break;
                }
            }
            let out = b.finish(ticks);
            att += out.attended_ticks as f64 / ticks as f64;
            mic += out.mic_on_fraction();
            cam += out.cam_on_fraction();
        }
        (att / n as f64, mic / n as f64, cam / n as f64)
    }

    #[test]
    fn clean_conditions_high_attendance() {
        let (att, mic, cam) = population(clean(), 0.0, Platform::WindowsPc, 360, 400);
        assert!(att > 0.9, "attendance {att}");
        assert!((0.6..0.9).contains(&mic), "mic {mic}");
        assert!((0.45..0.8).contains(&cam), "cam {cam}");
    }

    #[test]
    fn latency_impairment_cuts_mic_most() {
        // Interactivity impairment at the paper's 300 ms point (≈ 0.73).
        let imp = ChannelImpairment {
            interactivity: 0.73,
            audio: 0.0,
            video: 0.0,
        };
        let (att0, mic0, cam0) = population(clean(), 0.0, Platform::WindowsPc, 360, 400);
        let (att, mic, cam) = population(imp, 0.0, Platform::WindowsPc, 360, 400);
        let mic_drop = (mic0 - mic) / mic0 * 100.0;
        let cam_drop = (cam0 - cam) / cam0 * 100.0;
        let att_drop = (att0 - att) / att0 * 100.0;
        assert!(mic_drop > 20.0, "mic drop {mic_drop}");
        assert!((8.0..40.0).contains(&cam_drop), "cam drop {cam_drop}");
        assert!(
            (8.0..35.0).contains(&att_drop),
            "attendance drop {att_drop}"
        );
    }

    #[test]
    fn loss_kick_drives_abandonment() {
        let p = BehaviorParams::default();
        let imp = ChannelImpairment {
            interactivity: 0.0,
            audio: 0.2,
            video: 0.25,
        };
        // Below the kick threshold the pressure is just the overall score.
        let below = p.leave_pressure(&imp, 0.015);
        assert!((below - imp.overall()).abs() < 1e-9);
        // At 3 % raw loss the kick adds > 0.9 of pressure.
        let at3 = p.leave_pressure(&imp, 0.03);
        assert!(at3 > below + 0.9, "{at3} vs {below}");
        // Attendance collapses relative to clean.
        let (att_clean, _, _) = population(clean(), 0.0, Platform::WindowsPc, 360, 300);
        let (att_lossy, _, _) = population(imp, 0.03, Platform::WindowsPc, 360, 300);
        assert!(att_lossy < att_clean * 0.8, "{att_lossy} vs {att_clean}");
    }

    #[test]
    fn compounding_latency_loss_dips_hard() {
        // Fig. 2's worst corner: 300 ms latency + 3 % loss.
        let worst = ChannelImpairment {
            interactivity: 0.73,
            audio: 0.215,
            video: 0.257,
        };
        let (att_best, _, _) = population(clean(), 0.0, Platform::WindowsPc, 360, 300);
        let (att_worst, _, _) = population(worst, 0.03, Platform::WindowsPc, 360, 300);
        let dip = (att_best - att_worst) / att_best * 100.0;
        assert!(dip > 35.0, "compounding dip only {dip}%");
    }

    #[test]
    fn mobile_drops_sooner_than_pc() {
        let imp = ChannelImpairment {
            interactivity: 0.4,
            audio: 0.15,
            video: 0.2,
        };
        let (att_pc, _, _) = population(imp, 0.015, Platform::WindowsPc, 360, 400);
        let (att_android, _, _) = population(imp, 0.015, Platform::AndroidMobile, 360, 400);
        assert!(att_android < att_pc, "{att_android} vs {att_pc}");
    }

    #[test]
    fn video_impairment_hits_camera() {
        // 10 ms raw jitter → ~0.4 video impairment after mitigation.
        let imp = ChannelImpairment {
            interactivity: 0.0,
            audio: 0.05,
            video: 0.4,
        };
        let (_, mic0, cam0) = population(clean(), 0.0, Platform::WindowsPc, 360, 400);
        let (_, mic, cam) = population(imp, 0.0, Platform::WindowsPc, 360, 400);
        let cam_drop = (cam0 - cam) / cam0 * 100.0;
        let mic_drop = (mic0 - mic) / mic0 * 100.0;
        assert!(cam_drop > 12.0, "cam drop {cam_drop}");
        assert!(mic_drop < cam_drop, "mic should be less jitter-sensitive");
    }

    #[test]
    fn outcome_fractions_safe_on_zero_attendance() {
        let out = BehaviorOutcome {
            attended_ticks: 0,
            mic_on_ticks: 0,
            cam_on_ticks: 0,
            left_early: true,
            mean_overall_impairment: 0.0,
            mean_leave_pressure: 0.0,
        };
        assert_eq!(out.mic_on_fraction(), 0.0);
        assert_eq!(out.cam_on_fraction(), 0.0);
    }

    #[test]
    fn step_after_leave_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = user(&mut rng);
        let mut b = SessionBehavior::start(
            &mut rng,
            BehaviorParams::default(),
            Platform::WindowsPc,
            &u,
            3,
        );
        // Force a leave by stepping under extreme pressure.
        let terrible = ChannelImpairment {
            interactivity: 1.0,
            audio: 1.0,
            video: 1.0,
        };
        let mut steps = 0;
        while b.step(&mut rng, &terrible, 0.2) && steps < 100_000 {
            steps += 1;
        }
        assert!(b.has_left());
        let attended = b.finish(1_000_000).attended_ticks;
        assert!(!b.step(&mut rng, &terrible, 0.2));
        assert_eq!(b.finish(1_000_000).attended_ticks, attended);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn leave_pressure_monotone_in_loss(
                a in 0.0..0.3f64, b in 0.0..0.3f64, imp in 0.0..1.0f64
            ) {
                let p = BehaviorParams::default();
                let ch = ChannelImpairment { interactivity: imp, audio: 0.0, video: 0.0 };
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(p.leave_pressure(&ch, lo) <= p.leave_pressure(&ch, hi) + 1e-12);
            }

            #[test]
            fn pressures_non_negative(
                i in 0.0..1.0f64, au in 0.0..1.0f64, v in 0.0..1.0f64, loss in 0.0..1.0f64
            ) {
                let p = BehaviorParams::default();
                let ch = ChannelImpairment { interactivity: i, audio: au, video: v };
                prop_assert!(p.leave_pressure(&ch, loss) >= 0.0);
                prop_assert!(p.mic_pressure(&ch) >= 0.0);
                prop_assert!(p.cam_pressure(&ch) >= 0.0);
            }

            #[test]
            fn mic_pressure_monotone_in_interactivity(a in 0.0..1.0f64, b in 0.0..1.0f64) {
                let p = BehaviorParams::default();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let cl = ChannelImpairment { interactivity: lo, audio: 0.1, video: 0.1 };
                let ch = ChannelImpairment { interactivity: hi, audio: 0.1, video: 0.1 };
                prop_assert!(p.mic_pressure(&cl) <= p.mic_pressure(&ch) + 1e-12);
            }
        }
    }

    #[test]
    fn conditioned_users_less_reactive() {
        let imp = ChannelImpairment {
            interactivity: 0.6,
            audio: 0.1,
            video: 0.2,
        };
        let mut rng = StdRng::seed_from_u64(123);
        let params = BehaviorParams::default();
        let mut att = [0.0f64; 2]; // [unconditioned, conditioned]
        let n = 500;
        for conditioned in [false, true] {
            let mut total = 0.0;
            for _ in 0..n {
                let mut u = user(&mut rng);
                u.conditioned = conditioned;
                let mut b = SessionBehavior::start(&mut rng, params, Platform::WindowsPc, &u, 6);
                let mut t = 0;
                while t < 360 && b.step(&mut rng, &imp, 0.0) {
                    t += 1;
                }
                total += b.finish(360).attended_ticks as f64 / 360.0;
            }
            att[conditioned as usize] = total / n as f64;
        }
        assert!(
            att[1] > att[0],
            "conditioned {} vs unconditioned {}",
            att[1],
            att[0]
        );
    }
}
