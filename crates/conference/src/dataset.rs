//! Large-scale call-dataset generation.
//!
//! §3.1's call dataset: enterprise calls during business hours (9 AM – 8 PM)
//! on weekdays with 3+ participants. The builder applies those filters at
//! generation time (dates land on weekdays, start hours inside the window,
//! participant counts ≥ 3) and shards the work across threads with
//! `crossbeam::scope` — each shard owns a deterministic `StdRng` derived from
//! the dataset seed, so the full dataset is reproducible regardless of the
//! thread count.

use crate::call::{CallConfig, CallSimulator};
use crate::records::{CallDataset, SessionRecord};
use analytics::dist::{Dist, Sampler};
use analytics::time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for dataset generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of calls to simulate.
    pub calls: usize,
    /// Master seed; the same seed + config reproduces the dataset exactly
    /// (including across different `threads` values).
    pub seed: u64,
    /// First calendar day of the study window (paper: Jan 2022).
    pub start: Date,
    /// Last calendar day of the study window (paper: Apr 2022).
    pub end: Date,
    /// Business-hours window `[from, to)` in local hours (paper: 9–20).
    pub business_hours: (u8, u8),
    /// Minimum participants per call (paper: 3).
    pub min_participants: u16,
    /// Cap on participants per call.
    pub max_participants: u16,
    /// Mean of the exponential tail added to `min_participants`.
    pub mean_extra_participants: f64,
    /// Distribution of scheduled call length in ticks.
    pub duration_ticks: Dist,
    /// Number of worker threads (0 ⇒ available parallelism).
    pub threads: usize,
    /// LEO outage calendar `(date, severity 0–1)`: on these days, satellite
    /// participants see conditions degraded proportionally to severity. This
    /// is the cross-signal hook — the USaaS "Teams-on-Starlink" query joins
    /// social outage detections with degraded implicit signals.
    pub leo_outage_calendar: Vec<(Date, f64)>,
}

impl Default for DatasetConfig {
    fn default() -> DatasetConfig {
        DatasetConfig {
            calls: 10_000,
            seed: 0xC0FFEE,
            start: Date::from_ymd(2022, 1, 3).expect("valid date"),
            end: Date::from_ymd(2022, 4, 29).expect("valid date"),
            business_hours: (9, 20),
            min_participants: 3,
            max_participants: 20,
            mean_extra_participants: 3.0,
            // 5-second ticks: 10 min .. 60 min, mode 30 min.
            duration_ticks: Dist::Triangular {
                lo: 120.0,
                mode: 360.0,
                hi: 720.0,
            },
            threads: 0,
            leo_outage_calendar: Vec::new(),
        }
    }
}

impl DatasetConfig {
    /// A small config for unit/integration tests.
    pub fn small(calls: usize, seed: u64) -> DatasetConfig {
        DatasetConfig {
            calls,
            seed,
            duration_ticks: Dist::Triangular {
                lo: 60.0,
                mode: 180.0,
                hi: 360.0,
            },
            ..DatasetConfig::default()
        }
    }

    /// Severity of any LEO outage on `date` (0 when none).
    pub fn leo_outage_severity(&self, date: Date) -> f64 {
        self.leo_outage_calendar
            .iter()
            .filter(|(d, _)| *d == date)
            .map(|(_, s)| *s)
            .fold(0.0, f64::max)
    }

    fn sample_call<R: Rng + ?Sized>(&self, rng: &mut R, call_id: u64) -> CallConfig {
        // Uniform weekday in the window.
        let span = self.end.days_since(self.start).max(0);
        let date = loop {
            let d = self.start.offset(rng.gen_range(0..=span));
            if d.weekday().is_business_day() {
                break d;
            }
        };
        let (h_lo, h_hi) = self.business_hours;
        let start_hour = rng.gen_range(h_lo..h_hi.max(h_lo + 1));
        let extra = Dist::Exponential {
            lambda: 1.0 / self.mean_extra_participants.max(0.1),
        }
        .sample(rng)
        .floor() as u16;
        let participants =
            (self.min_participants + extra).clamp(self.min_participants, self.max_participants);
        let scheduled_ticks = self.duration_ticks.sample(rng).round().max(12.0) as u32;
        CallConfig {
            call_id,
            date,
            start_hour,
            participants,
            scheduled_ticks,
        }
    }
}

/// Generate a dataset with the default [`CallSimulator`].
pub fn generate(config: &DatasetConfig) -> CallDataset {
    generate_with(config, &CallSimulator::default())
}

/// Generate a dataset with a custom simulator (ablations swap the mitigation
/// stack or behaviour constants here).
pub fn generate_with(config: &DatasetConfig, simulator: &CallSimulator) -> CallDataset {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.threads
    }
    .max(1)
    .min(config.calls.max(1));

    // Static sharding: shard s simulates calls s, s+threads, s+2*threads, …
    // Every call derives its own RNG from (seed, call_id), so results are
    // identical for any thread count.
    let mut shard_outputs: Vec<Vec<SessionRecord>> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut call_id = shard as u64;
                    while (call_id as usize) < config.calls {
                        let mut rng = call_rng(config.seed, call_id);
                        let call = config.sample_call(&mut rng, call_id);
                        let severity = config.leo_outage_severity(call.date);
                        // User ids partitioned per call: 64 slots each.
                        let mut uid = call_id * 64;
                        out.extend(
                            simulator.simulate_with_outage(&mut rng, &call, &mut uid, severity),
                        );
                        call_id += threads as u64;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            shard_outputs.push(h.join().expect("dataset shard panicked"));
        }
    })
    .expect("crossbeam scope");

    let mut sessions: Vec<SessionRecord> = shard_outputs.into_iter().flatten().collect();
    // Deterministic order regardless of sharding.
    sessions.sort_by_key(|s| (s.call_id, s.user_id));
    CallDataset { sessions }
}

/// Derive the per-call RNG: SplitMix64 over (seed, call_id) gives
/// well-separated streams without a CSPRNG dependency.
fn call_rng(seed: u64, call_id: u64) -> StdRng {
    let mut z = seed ^ call_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_calls() {
        let ds = generate(&DatasetConfig::small(60, 1));
        assert_eq!(ds.call_count(), 60);
        assert!(ds.len() >= 60 * 2, "sessions {}", ds.len());
    }

    #[test]
    fn respects_study_filters() {
        let cfg = DatasetConfig::small(80, 2);
        let ds = generate(&cfg);
        for s in &ds.sessions {
            assert!(s.date >= cfg.start && s.date <= cfg.end);
            assert!(
                s.date.weekday().is_business_day(),
                "weekend call on {}",
                s.date
            );
            assert!((9..20).contains(&s.start_hour));
            assert!(s.meeting_size >= 3);
            assert!(s.meeting_size <= cfg.max_participants);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut one = DatasetConfig::small(40, 3);
        one.threads = 1;
        let mut four = DatasetConfig::small(40, 3);
        four.threads = 4;
        let a = generate(&one);
        let b = generate(&four);
        assert_eq!(a.sessions.len(), b.sessions.len());
        assert_eq!(a.sessions, b.sessions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DatasetConfig::small(20, 10));
        let b = generate(&DatasetConfig::small(20, 11));
        assert_ne!(a.sessions, b.sessions);
    }

    #[test]
    fn some_sessions_carry_ratings_at_scale() {
        let ds = generate(&DatasetConfig::small(400, 4));
        let rated = ds.rated_sessions().count();
        assert!(
            rated > 0,
            "expected at least one rated session in {}",
            ds.len()
        );
        let rate = rated as f64 / ds.len() as f64;
        assert!(rate < 0.05, "rating rate {rate} too high");
    }

    #[test]
    fn leo_outage_calendar_degrades_satellite_sessions() {
        use crate::records::NetworkMetric;
        use netsim::access::AccessType;
        let outage_day = Date::from_ymd(2022, 2, 15).unwrap(); // a Tuesday
        let mut cfg = DatasetConfig::small(600, 12);
        cfg.leo_outage_calendar = vec![(outage_day, 0.9)];
        let ds = generate(&cfg);
        let loss = |on_day: bool| {
            let xs: Vec<f64> = ds
                .sessions
                .iter()
                .filter(|s| s.access == AccessType::SatelliteLeo)
                .filter(|s| (s.date == outage_day) == on_day)
                .map(|s| s.network_mean(NetworkMetric::LossPct))
                .collect();
            analytics::mean(&xs).unwrap_or(0.0)
        };
        let on = loss(true);
        let off = loss(false);
        assert!(on > off + 2.0, "outage-day LEO loss {on}% vs normal {off}%");
        // Terrestrial sessions are untouched.
        let terr: Vec<f64> = ds
            .sessions
            .iter()
            .filter(|s| s.access != AccessType::SatelliteLeo && s.date == outage_day)
            .map(|s| s.network_mean(NetworkMetric::LossPct))
            .collect();
        if let Ok(m) = analytics::mean(&terr) {
            assert!(m < 2.0, "terrestrial loss on outage day {m}%");
        }
    }

    #[test]
    fn record_invariants_hold_across_seeds() {
        for seed in [1u64, 99, 4242] {
            let ds = generate(&DatasetConfig::small(120, seed));
            for s in &ds.sessions {
                assert!((0.0..=100.0).contains(&s.presence_pct), "{s:?}");
                assert!((0.0..=100.0).contains(&s.mic_on_pct), "{s:?}");
                assert!((0.0..=100.0).contains(&s.cam_on_pct), "{s:?}");
                assert!(s.attended_ticks >= 1 && s.attended_ticks <= s.scheduled_ticks);
                assert_eq!(s.net.ticks as u32, s.attended_ticks);
                assert!((1.0..=5.0).contains(&s.latent_quality));
                if let Some(r) = s.rating {
                    assert!((1..=5).contains(&r));
                }
                assert!(s.net.latency_ms.min <= s.net.latency_ms.mean);
                assert!(s.net.latency_ms.mean <= s.net.latency_ms.max);
                assert!(s.net.loss_pct.min >= 0.0);
                assert!(s.net.bandwidth_mbps.min > 0.0);
                assert_eq!(
                    s.left_early,
                    s.attended_ticks < s.scheduled_ticks && s.left_early,
                    "left_early implies truncated attendance"
                );
            }
        }
    }

    #[test]
    fn call_rng_streams_are_distinct() {
        let mut a = call_rng(1, 0);
        let mut b = call_rng(1, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }
}
