//! In-session action timelines.
//!
//! The paper's core advantage claim for implicit signals is that they are
//! *"available throughout the user session"* (§1) and therefore an *"early
//! and more readily available indication of call quality"* (§3.3). To make
//! that claim testable, the simulator can record every state transition —
//! mute/unmute, camera on/off, leaving — with its 5-second tick timestamp.
//! The `usaas::early` monitor consumes these timelines to predict quality
//! from only the first minutes of a call.

use serde::{Deserialize, Serialize};

/// One user-action transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// Joined the call (always the first event, tick 0).
    Joined,
    /// Unmuted.
    MicOn,
    /// Muted.
    MicOff,
    /// Camera turned on.
    CamOn,
    /// Camera turned off.
    CamOff,
    /// Left the call (always the last event when present).
    Left,
}

/// An event with its tick timestamp (5-second ticks from session start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Tick index (0-based).
    pub tick: u32,
    /// The transition.
    pub event: SessionEvent,
}

/// A session's full action timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionTimeline {
    /// Transitions in tick order.
    pub events: Vec<TimedEvent>,
}

/// Partial-session engagement reconstructed from a timeline at a horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlySnapshot {
    /// Ticks observed (min of horizon and attendance).
    pub observed_ticks: u32,
    /// Whether the user was still in the call at the horizon.
    pub still_present: bool,
    /// Fraction of observed ticks with mic on.
    pub mic_on_fraction: f64,
    /// Fraction of observed ticks with camera on.
    pub cam_on_fraction: f64,
}

impl SessionTimeline {
    /// Record one transition.
    pub fn push(&mut self, tick: u32, event: SessionEvent) {
        self.events.push(TimedEvent { tick, event });
    }

    /// True when the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Tick at which the user left, if they did.
    pub fn left_at(&self) -> Option<u32> {
        self.events
            .iter()
            .find(|e| e.event == SessionEvent::Left)
            .map(|e| e.tick)
    }

    /// Reconstruct partial engagement over the first `horizon` ticks.
    ///
    /// Replays the transitions; ticks between transitions inherit the state
    /// at their start. Returns `None` for an empty timeline.
    pub fn snapshot_at(&self, horizon: u32) -> Option<EarlySnapshot> {
        if self.events.is_empty() || horizon == 0 {
            return None;
        }
        let mut mic = false;
        let mut cam = false;
        let mut mic_ticks = 0u32;
        let mut cam_ticks = 0u32;
        let mut cursor = 0u32;
        let end = match self.left_at() {
            Some(t) => t.min(horizon),
            None => horizon,
        };
        for e in &self.events {
            let upto = e.tick.min(end);
            if upto > cursor {
                let span = upto - cursor;
                if mic {
                    mic_ticks += span;
                }
                if cam {
                    cam_ticks += span;
                }
                cursor = upto;
            }
            match e.event {
                SessionEvent::MicOn => mic = true,
                SessionEvent::MicOff => mic = false,
                SessionEvent::CamOn => cam = true,
                SessionEvent::CamOff => cam = false,
                SessionEvent::Joined | SessionEvent::Left => {}
            }
            if e.tick >= end {
                break;
            }
        }
        if end > cursor {
            let span = end - cursor;
            if mic {
                mic_ticks += span;
            }
            if cam {
                cam_ticks += span;
            }
        }
        let observed = end.max(1);
        Some(EarlySnapshot {
            observed_ticks: end,
            still_present: self.left_at().is_none_or(|t| t > horizon),
            mic_on_fraction: f64::from(mic_ticks) / f64::from(observed),
            cam_on_fraction: f64::from(cam_ticks) / f64::from(observed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(events: &[(u32, SessionEvent)]) -> SessionTimeline {
        let mut t = SessionTimeline::default();
        for (tick, e) in events {
            t.push(*tick, *e);
        }
        t
    }

    #[test]
    fn empty_timeline_has_no_snapshot() {
        assert!(SessionTimeline::default().snapshot_at(10).is_none());
        assert!(timeline(&[(0, SessionEvent::Joined)])
            .snapshot_at(0)
            .is_none());
    }

    #[test]
    fn replay_reconstructs_fractions() {
        // mic on from tick 2..6, cam on from 4 to horizon.
        let t = timeline(&[
            (0, SessionEvent::Joined),
            (2, SessionEvent::MicOn),
            (4, SessionEvent::CamOn),
            (6, SessionEvent::MicOff),
        ]);
        let s = t.snapshot_at(10).unwrap();
        assert_eq!(s.observed_ticks, 10);
        assert!(s.still_present);
        assert!((s.mic_on_fraction - 0.4).abs() < 1e-9, "{s:?}");
        assert!((s.cam_on_fraction - 0.6).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn leaving_truncates_observation() {
        let t = timeline(&[
            (0, SessionEvent::Joined),
            (0, SessionEvent::MicOn),
            (5, SessionEvent::Left),
        ]);
        let s = t.snapshot_at(20).unwrap();
        assert_eq!(s.observed_ticks, 5);
        assert!(!s.still_present);
        assert!((s.mic_on_fraction - 1.0).abs() < 1e-9);
        assert_eq!(t.left_at(), Some(5));
    }

    #[test]
    fn horizon_before_leave_counts_as_present() {
        let t = timeline(&[(0, SessionEvent::Joined), (50, SessionEvent::Left)]);
        let s = t.snapshot_at(20).unwrap();
        assert!(s.still_present);
        assert_eq!(s.observed_ticks, 20);
    }

    #[test]
    fn transitions_after_horizon_ignored() {
        let t = timeline(&[
            (0, SessionEvent::Joined),
            (3, SessionEvent::MicOn),
            (100, SessionEvent::MicOff),
        ]);
        let s = t.snapshot_at(10).unwrap();
        assert!((s.mic_on_fraction - 0.7).abs() < 1e-9, "{s:?}");
    }
}
