//! Single-call simulation: participants, paths, behaviour, engagement.
//!
//! One call holds N participants, each with their own network path, client
//! platform, and behavioural state machine. The simulator advances all
//! participants tick-by-tick (5-second ticks, §3.1), lets each client gather
//! its own telemetry, and finally computes the call-relative engagement
//! metrics — Presence is defined against the *median* session duration
//! across the call's participants exactly as §3.1 specifies ("robust to
//! outliers … capped at 100").

use crate::behavior::{BehaviorParams, SessionBehavior};
use crate::events::SessionTimeline;
use crate::feedback::FeedbackModel;
use crate::platform::Platform;
use crate::records::SessionRecord;
use crate::user::UserProfile;
use analytics::time::Date;
use netsim::access::AccessType;
use netsim::mitigation::Mitigation;
use netsim::path::NetworkPath;
use netsim::quality::ImpairmentParams;
use netsim::sampler::ClientSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static description of one call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallConfig {
    /// Unique call id.
    pub call_id: u64,
    /// Calendar day.
    pub date: Date,
    /// Local start hour (24 h).
    pub start_hour: u8,
    /// Participant count (≥ 2; the paper's dataset keeps 3+).
    pub participants: u16,
    /// Scheduled length in 5-second ticks.
    pub scheduled_ticks: u32,
}

/// A session record together with its recorded action timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DetailedSession {
    /// The uploaded per-session record.
    pub record: SessionRecord,
    /// The tick-stamped action timeline.
    pub timeline: SessionTimeline,
}

/// The per-call simulator: composes path, mitigation, impairment scoring,
/// behaviour, and feedback models.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallSimulator {
    /// Behavioural constants.
    pub behavior: BehaviorParams,
    /// Impairment-curve constants.
    pub impairment: ImpairmentParams,
    /// Application-layer mitigation stack.
    pub mitigation: Mitigation,
    /// Explicit-feedback model.
    pub feedback: FeedbackModel,
}

impl CallSimulator {
    /// Simulate one call, returning one [`SessionRecord`] per participant
    /// that attended at least one tick. `next_user_id` supplies stable
    /// pseudonymous user ids.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        config: &CallConfig,
        next_user_id: &mut u64,
    ) -> Vec<SessionRecord> {
        self.simulate_with_outage(rng, config, next_user_id, 0.0)
    }

    /// Like [`CallSimulator::simulate`], but degrades LEO-satellite
    /// participants by `leo_outage_severity` (0–1): during a satellite
    /// outage their paths see inflated loss, latency, and jitter and reduced
    /// bandwidth. This is how social outage detections become corroborable
    /// by implicit signals (§5's cross-signal example).
    pub fn simulate_with_outage<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        config: &CallConfig,
        next_user_id: &mut u64,
        leo_outage_severity: f64,
    ) -> Vec<SessionRecord> {
        self.run(rng, config, next_user_id, leo_outage_severity, false)
            .into_iter()
            .map(|d| d.record)
            .collect()
    }

    /// Simulate one call *with action timelines* (§3.3's early-indication
    /// analyses need the per-tick transitions, not just the aggregates).
    pub fn simulate_detailed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        config: &CallConfig,
        next_user_id: &mut u64,
    ) -> Vec<DetailedSession> {
        self.run(rng, config, next_user_id, 0.0, true)
    }

    fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        config: &CallConfig,
        next_user_id: &mut u64,
        leo_outage_severity: f64,
        record_timelines: bool,
    ) -> Vec<DetailedSession> {
        let severity = leo_outage_severity.clamp(0.0, 1.0);
        let n = config.participants.max(2) as usize;
        let ticks = config.scheduled_ticks.max(1);

        struct Live {
            user: UserProfile,
            platform: Platform,
            access: AccessType,
            path: NetworkPath,
            sampler: ClientSampler,
            behavior: SessionBehavior,
        }

        let mut live: Vec<Live> = (0..n)
            .map(|_| {
                let user_id = *next_user_id;
                *next_user_id += 1;
                let user = UserProfile::sample(rng, user_id);
                let platform = Platform::sample_mixture(rng);
                let access = AccessType::sample_mixture(rng);
                let mut targets = access.sample_targets(rng);
                if access == AccessType::SatelliteLeo && severity > 0.0 {
                    targets.loss_frac = (targets.loss_frac + 0.08 * severity).min(0.3);
                    targets.latency_ms = (targets.latency_ms * (1.0 + severity)).min(800.0);
                    targets.jitter_ms = (targets.jitter_ms * (1.0 + 2.0 * severity)).min(120.0);
                    targets.bandwidth_mbps =
                        (targets.bandwidth_mbps * (1.0 - 0.7 * severity)).max(0.1);
                }
                let mut behavior = SessionBehavior::start(
                    rng,
                    self.behavior,
                    platform,
                    &user,
                    config.participants,
                );
                if record_timelines {
                    behavior.enable_timeline();
                }
                Live {
                    user,
                    platform,
                    access,
                    path: NetworkPath::from_targets(targets),
                    sampler: ClientSampler::with_capacity(ticks as usize),
                    behavior,
                }
            })
            .collect();

        for _tick in 0..ticks {
            let mut all_left = true;
            for p in live.iter_mut() {
                if p.behavior.has_left() {
                    continue;
                }
                let raw = p.path.tick(rng);
                let mitigated = self.mitigation.apply(&raw);
                let imp = self.impairment.score(&mitigated);
                if p.behavior.step(rng, &imp, raw.loss_frac) {
                    // Client measures the raw network while the user is in
                    // the session.
                    p.sampler.record(&raw);
                    all_left = false;
                }
            }
            if all_left {
                break;
            }
        }

        // Call-level Presence baseline: median attended duration (§3.1).
        let mut durations: Vec<f64> = live
            .iter()
            .map(|p| p.behavior.finish(ticks).attended_ticks as f64)
            .filter(|d| *d > 0.0)
            .collect();
        if durations.is_empty() {
            return Vec::new();
        }
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median_duration = analytics::descriptive::percentile_sorted(&durations, 50.0).max(1.0);

        let mut records = Vec::with_capacity(live.len());
        for mut p in live {
            let outcome = p.behavior.finish(ticks);
            if outcome.attended_ticks == 0 {
                continue;
            }
            let net = match p.sampler.finish() {
                Ok(net) => net,
                Err(_) => continue,
            };
            let presence_pct = (outcome.attended_ticks as f64 / median_duration * 100.0).min(100.0);
            let rating = self.feedback.sample_rating(rng, &outcome);
            let timeline = p.behavior.take_timeline();
            records.push(DetailedSession {
                timeline,
                record: SessionRecord {
                    call_id: config.call_id,
                    user_id: p.user.user_id,
                    date: config.date,
                    start_hour: config.start_hour,
                    platform: p.platform,
                    access: p.access,
                    meeting_size: config.participants,
                    scheduled_ticks: ticks,
                    attended_ticks: outcome.attended_ticks,
                    net,
                    presence_pct,
                    mic_on_pct: outcome.mic_on_fraction() * 100.0,
                    cam_on_pct: outcome.cam_on_fraction() * 100.0,
                    left_early: outcome.left_early,
                    rating,
                    latent_quality: self.feedback.latent_quality(&outcome),
                    conditioned: p.user.conditioned,
                },
            });
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(participants: u16, ticks: u32) -> CallConfig {
        CallConfig {
            call_id: 7,
            date: Date::from_ymd(2022, 2, 15).unwrap(),
            start_hour: 10,
            participants,
            scheduled_ticks: ticks,
        }
    }

    #[test]
    fn produces_one_record_per_attendee() {
        let sim = CallSimulator::default();
        let mut rng = StdRng::seed_from_u64(50);
        let mut uid = 0;
        let records = sim.simulate(&mut rng, &config(6, 120), &mut uid);
        assert!(!records.is_empty());
        assert!(records.len() <= 6);
        assert_eq!(uid, 6);
        for r in &records {
            assert_eq!(r.call_id, 7);
            assert_eq!(r.meeting_size, 6);
            assert!((0.0..=100.0).contains(&r.presence_pct));
            assert!((0.0..=100.0).contains(&r.mic_on_pct));
            assert!((0.0..=100.0).contains(&r.cam_on_pct));
            assert!(r.attended_ticks >= 1 && r.attended_ticks <= 120);
            assert!(r.net.ticks as u32 == r.attended_ticks);
            assert!((1.0..=5.0).contains(&r.latent_quality));
        }
    }

    #[test]
    fn presence_capped_at_100() {
        let sim = CallSimulator::default();
        let mut rng = StdRng::seed_from_u64(51);
        let mut uid = 0;
        for _ in 0..20 {
            for r in sim.simulate(&mut rng, &config(5, 60), &mut uid) {
                assert!(r.presence_pct <= 100.0);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let sim = CallSimulator::default();
        let mut a_uid = 0;
        let mut b_uid = 0;
        let a = sim.simulate(&mut StdRng::seed_from_u64(52), &config(4, 100), &mut a_uid);
        let b = sim.simulate(&mut StdRng::seed_from_u64(52), &config(4, 100), &mut b_uid);
        assert_eq!(a, b);
    }

    #[test]
    fn ratings_are_rare() {
        let sim = CallSimulator::default();
        let mut rng = StdRng::seed_from_u64(53);
        let mut uid = 0;
        let mut total = 0usize;
        let mut rated = 0usize;
        for call in 0..300 {
            let mut c = config(4, 60);
            c.call_id = call;
            for r in sim.simulate(&mut rng, &c, &mut uid) {
                total += 1;
                if r.rating.is_some() {
                    rated += 1;
                }
            }
        }
        let rate = rated as f64 / total as f64;
        assert!(rate < 0.05, "feedback rate {rate} too high");
    }
}
