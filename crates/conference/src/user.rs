//! Per-user heterogeneity: propensities and long-term conditioning.
//!
//! Real engagement data is noisy because people differ; the paper's curves
//! are population averages. [`UserProfile`] injects per-user variation in
//! baseline mic/cam behaviour and patience, plus the §6 confounder the paper
//! calls *long-term conditioning*: users habitually exposed to poor networks
//! have lower expectations and react less to the same impairment.

use analytics::dist::{bernoulli, Dist, Sampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-user behavioural profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Stable pseudo-identity.
    pub user_id: u64,
    /// Multiplier on baseline mic-on propensity (log-normal around 1).
    pub mic_propensity: f64,
    /// Multiplier on baseline cam-on propensity (log-normal around 1).
    pub cam_propensity: f64,
    /// Multiplier on the baseline (non-network) leave hazard: impatient
    /// people leave meetings early regardless of the network.
    pub impatience: f64,
    /// Long-term conditioning flag: `true` means the user is acclimatised to
    /// poor networks and reacts *less* to impairment.
    pub conditioned: bool,
}

/// Fraction of the population acclimatised to poor networks.
pub const CONDITIONED_FRACTION: f64 = 0.25;

/// How much conditioning attenuates network-driven reactions (multiplier on
/// network sensitivity, < 1). The paper calls this effect "relatively weaker"
/// than the platform effect, so the attenuation is mild.
pub const CONDITIONING_ATTENUATION: f64 = 0.75;

impl UserProfile {
    /// Draw a user profile.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, user_id: u64) -> UserProfile {
        let spread = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.25,
        };
        UserProfile {
            user_id,
            mic_propensity: spread.sample(rng).clamp(0.4, 2.5),
            cam_propensity: spread.sample(rng).clamp(0.4, 2.5),
            impatience: Dist::LogNormal {
                mu: 0.0,
                sigma: 0.4,
            }
            .sample(rng)
            .clamp(0.3, 4.0),
            conditioned: bernoulli(rng, CONDITIONED_FRACTION),
        }
    }

    /// Multiplier applied to all network-driven behavioural pressure for
    /// this user.
    pub fn network_sensitivity(&self) -> f64 {
        if self.conditioned {
            CONDITIONING_ATTENUATION
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profiles_within_bounds() {
        let mut r = StdRng::seed_from_u64(6);
        for i in 0..2000 {
            let u = UserProfile::sample(&mut r, i);
            assert!((0.4..=2.5).contains(&u.mic_propensity));
            assert!((0.4..=2.5).contains(&u.cam_propensity));
            assert!((0.3..=4.0).contains(&u.impatience));
            assert_eq!(u.user_id, i);
        }
    }

    #[test]
    fn conditioning_rate_near_target() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 20_000;
        let conditioned = (0..n)
            .filter(|i| UserProfile::sample(&mut r, *i).conditioned)
            .count();
        let rate = conditioned as f64 / n as f64;
        assert!((rate - CONDITIONED_FRACTION).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn conditioned_users_react_less() {
        let mut r = StdRng::seed_from_u64(8);
        let mut seen_both = (false, false);
        for i in 0..1000 {
            let u = UserProfile::sample(&mut r, i);
            if u.conditioned {
                assert!(u.network_sensitivity() < 1.0);
                seen_both.0 = true;
            } else {
                assert_eq!(u.network_sensitivity(), 1.0);
                seen_both.1 = true;
            }
        }
        assert!(seen_both.0 && seen_both.1);
    }

    #[test]
    fn population_mean_propensity_near_one() {
        let mut r = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..20_000)
            .map(|i| UserProfile::sample(&mut r, i).mic_propensity)
            .collect();
        let m = analytics::mean(&xs).unwrap();
        assert!((m - 1.0).abs() < 0.1, "mean {m}");
    }
}
