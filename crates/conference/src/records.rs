//! Per-session telemetry records — the schema the §3 analyses consume.
//!
//! One [`SessionRecord`] is what a conferencing client uploads at session
//! end: aggregated network stats (§3.1), engagement metrics (Presence /
//! Cam On / Mic On), platform, meeting size, and — for a sampled sliver of
//! sessions — an explicit 1–5 rating. The hidden `latent_quality` field is
//! the simulator's ground truth, kept for validation and never used by the
//! `usaas` pipelines as an input.

use crate::platform::Platform;
use analytics::time::Date;
use netsim::access::AccessType;
use netsim::sampler::SessionNetworkStats;
use serde::{Deserialize, Serialize};

/// One participant-session of one call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Call this session belongs to.
    pub call_id: u64,
    /// Pseudonymous user id.
    pub user_id: u64,
    /// Calendar day of the call.
    pub date: Date,
    /// Local start hour (24 h).
    pub start_hour: u8,
    /// Client platform.
    pub platform: Platform,
    /// Access technology of the user's path.
    pub access: AccessType,
    /// Number of participants in the call.
    pub meeting_size: u16,
    /// Scheduled call length in 5-second ticks.
    pub scheduled_ticks: u32,
    /// Ticks this user actually attended.
    pub attended_ticks: u32,
    /// Aggregated network statistics for the session.
    pub net: SessionNetworkStats,
    /// Presence: session duration as % of the median session duration across
    /// the call's participants, capped at 100 (§3.1).
    pub presence_pct: f64,
    /// % of the user's session with microphone on.
    pub mic_on_pct: f64,
    /// % of the user's session with camera on.
    pub cam_on_pct: f64,
    /// Whether the user left before the scheduled end.
    pub left_early: bool,
    /// Explicit 1–5 rating, present only for the sampled feedback sliver.
    pub rating: Option<u8>,
    /// Simulator ground truth (not uploaded by real clients; excluded from
    /// pipeline inputs, used only to validate the reproduction).
    pub latent_quality: f64,
    /// Whether this user is long-term conditioned to poor networks.
    pub conditioned: bool,
}

impl SessionRecord {
    /// Engagement value by metric (all as %, 0–100).
    pub fn engagement(&self, metric: EngagementMetric) -> f64 {
        match metric {
            EngagementMetric::Presence => self.presence_pct,
            EngagementMetric::MicOn => self.mic_on_pct,
            EngagementMetric::CamOn => self.cam_on_pct,
        }
    }

    /// Session-mean network value by metric, in the paper's plotting units
    /// (latency ms, loss %, jitter ms, bandwidth Mbps).
    pub fn network_mean(&self, metric: NetworkMetric) -> f64 {
        match metric {
            NetworkMetric::LatencyMs => self.net.latency_ms.mean,
            NetworkMetric::LossPct => self.net.loss_pct.mean,
            NetworkMetric::JitterMs => self.net.jitter_ms.mean,
            NetworkMetric::BandwidthMbps => self.net.bandwidth_mbps.mean,
        }
    }

    /// Session-P95 network value by metric.
    pub fn network_p95(&self, metric: NetworkMetric) -> f64 {
        match metric {
            NetworkMetric::LatencyMs => self.net.latency_ms.p95,
            NetworkMetric::LossPct => self.net.loss_pct.p95,
            NetworkMetric::JitterMs => self.net.jitter_ms.p95,
            NetworkMetric::BandwidthMbps => self.net.bandwidth_mbps.p95,
        }
    }
}

/// The three §3.1 user-engagement metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngagementMetric {
    /// Session duration relative to the call median (capped at 100 %).
    Presence,
    /// Fraction of the session with microphone on.
    MicOn,
    /// Fraction of the session with camera on.
    CamOn,
}

impl EngagementMetric {
    /// All metrics, plot order.
    pub const ALL: [EngagementMetric; 3] = [
        EngagementMetric::Presence,
        EngagementMetric::CamOn,
        EngagementMetric::MicOn,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EngagementMetric::Presence => "Presence",
            EngagementMetric::MicOn => "Mic On",
            EngagementMetric::CamOn => "Cam On",
        }
    }
}

/// The four §3.1 network-condition metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkMetric {
    /// Network latency (ms).
    LatencyMs,
    /// Packet loss (percent).
    LossPct,
    /// Jitter (ms).
    JitterMs,
    /// Available bandwidth (Mbps).
    BandwidthMbps,
}

impl NetworkMetric {
    /// All metrics, Fig. 1 panel order.
    pub const ALL: [NetworkMetric; 4] = [
        NetworkMetric::LatencyMs,
        NetworkMetric::LossPct,
        NetworkMetric::JitterMs,
        NetworkMetric::BandwidthMbps,
    ];

    /// Display label with units.
    pub fn label(self) -> &'static str {
        match self {
            NetworkMetric::LatencyMs => "latency (ms)",
            NetworkMetric::LossPct => "packet loss (%)",
            NetworkMetric::JitterMs => "jitter (ms)",
            NetworkMetric::BandwidthMbps => "bandwidth (Mbps)",
        }
    }

    /// The paper's confounder *reference range* for this metric (the band a
    /// metric is held to while another is being swept): latency 0–40 ms,
    /// loss 0–0.2 %, jitter 0–5 ms, bandwidth 3–4 Mbps.
    pub fn reference_range(self) -> (f64, f64) {
        match self {
            NetworkMetric::LatencyMs => (0.0, 40.0),
            NetworkMetric::LossPct => (0.0, 0.2),
            NetworkMetric::JitterMs => (0.0, 5.0),
            NetworkMetric::BandwidthMbps => (3.0, 4.0),
        }
    }

    /// The sweep range the paper plots for this metric (Fig. 1 axes):
    /// latency 0–300 ms, loss 0–2 %, jitter 0–12 ms, bandwidth 0.25–4 Mbps.
    pub fn sweep_range(self) -> (f64, f64) {
        match self {
            NetworkMetric::LatencyMs => (0.0, 300.0),
            NetworkMetric::LossPct => (0.0, 2.0),
            NetworkMetric::JitterMs => (0.0, 12.0),
            NetworkMetric::BandwidthMbps => (0.25, 4.0),
        }
    }
}

/// A full call dataset: the unit of analysis for §3.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CallDataset {
    /// All participant-sessions.
    pub sessions: Vec<SessionRecord>,
}

impl CallDataset {
    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Number of distinct calls.
    pub fn call_count(&self) -> usize {
        let mut ids: Vec<u64> = self.sessions.iter().map(|s| s.call_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Sessions carrying an explicit rating.
    pub fn rated_sessions(&self) -> impl Iterator<Item = &SessionRecord> {
        self.sessions.iter().filter(|s| s.rating.is_some())
    }

    /// Mean opinion score over the rated sliver; `None` if no ratings.
    pub fn mos(&self) -> Option<f64> {
        let ratings: Vec<f64> = self
            .rated_sessions()
            .filter_map(|s| s.rating)
            .map(f64::from)
            .collect();
        analytics::mean(&ratings).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytics::Summary;

    fn summary(v: f64) -> Summary {
        Summary {
            count: 10,
            min: v,
            mean: v,
            median: v,
            p95: v,
            max: v,
        }
    }

    fn record(rating: Option<u8>) -> SessionRecord {
        SessionRecord {
            call_id: 1,
            user_id: 2,
            date: Date::from_ymd(2022, 2, 15).unwrap(),
            start_hour: 10,
            platform: Platform::WindowsPc,
            access: AccessType::Cable,
            meeting_size: 5,
            scheduled_ticks: 360,
            attended_ticks: 300,
            net: SessionNetworkStats {
                latency_ms: summary(42.0),
                loss_pct: summary(0.1),
                jitter_ms: summary(3.0),
                bandwidth_mbps: summary(3.4),
                ticks: 300,
            },
            presence_pct: 90.0,
            mic_on_pct: 70.0,
            cam_on_pct: 55.0,
            left_early: true,
            rating,
            latent_quality: 4.2,
            conditioned: false,
        }
    }

    #[test]
    fn metric_accessors() {
        let r = record(None);
        assert_eq!(r.engagement(EngagementMetric::Presence), 90.0);
        assert_eq!(r.engagement(EngagementMetric::MicOn), 70.0);
        assert_eq!(r.engagement(EngagementMetric::CamOn), 55.0);
        assert_eq!(r.network_mean(NetworkMetric::LatencyMs), 42.0);
        assert_eq!(r.network_mean(NetworkMetric::LossPct), 0.1);
        assert_eq!(r.network_p95(NetworkMetric::JitterMs), 3.0);
        assert_eq!(r.network_mean(NetworkMetric::BandwidthMbps), 3.4);
    }

    #[test]
    fn reference_ranges_match_paper() {
        assert_eq!(NetworkMetric::LatencyMs.reference_range(), (0.0, 40.0));
        assert_eq!(NetworkMetric::LossPct.reference_range(), (0.0, 0.2));
        assert_eq!(NetworkMetric::JitterMs.reference_range(), (0.0, 5.0));
        assert_eq!(NetworkMetric::BandwidthMbps.reference_range(), (3.0, 4.0));
    }

    #[test]
    fn dataset_mos_and_counts() {
        let mut ds = CallDataset::default();
        assert!(ds.is_empty());
        assert_eq!(ds.mos(), None);
        ds.sessions.push(record(Some(4)));
        ds.sessions.push(record(Some(2)));
        ds.sessions.push(record(None));
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.call_count(), 1);
        assert_eq!(ds.rated_sessions().count(), 2);
        assert_eq!(ds.mos(), Some(3.0));
    }
}
