//! Client platforms and their sensitivity profiles.
//!
//! Fig. 3 of the paper: *"Different platforms (PC/mobile, operating system,
//! etc.) have different impacts on user sensitivity to network performance
//! … users joining calls on their mobile devices tend to drop off sooner at
//! the same mean network latency than users on PCs."* Each platform carries a
//! multiplier on the network-driven leave hazard plus baseline engagement
//! offsets (mobile users keep cameras off more, reflecting both expectations
//! and client-side resource constraints).

use analytics::dist::weighted_index;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Client platform of a participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Windows desktop client.
    WindowsPc,
    /// macOS desktop client.
    MacPc,
    /// Android mobile client.
    AndroidMobile,
    /// iOS mobile client.
    IosMobile,
}

impl Platform {
    /// All platforms, mixture order.
    pub const ALL: [Platform; 4] = [
        Platform::WindowsPc,
        Platform::MacPc,
        Platform::AndroidMobile,
        Platform::IosMobile,
    ];

    /// Mixture weight among enterprise business-hour calls.
    pub fn mixture_weight(self) -> f64 {
        match self {
            Platform::WindowsPc => 0.55,
            Platform::MacPc => 0.22,
            Platform::AndroidMobile => 0.12,
            Platform::IosMobile => 0.11,
        }
    }

    /// Multiplier on the *network-driven* component of the leave hazard.
    /// Mobile users bail sooner under the same conditions.
    pub fn leave_sensitivity(self) -> f64 {
        match self {
            Platform::WindowsPc => 1.0,
            Platform::MacPc => 1.08,
            Platform::AndroidMobile => 1.9,
            Platform::IosMobile => 1.7,
        }
    }

    /// Multiplier on network-driven mic/cam toggling pressure.
    pub fn toggle_sensitivity(self) -> f64 {
        match self {
            Platform::WindowsPc => 1.0,
            Platform::MacPc => 1.05,
            Platform::AndroidMobile => 1.35,
            Platform::IosMobile => 1.25,
        }
    }

    /// Baseline camera-on propensity multiplier (mobile clients and their
    /// CPU/battery constraints keep video off more).
    pub fn cam_baseline(self) -> f64 {
        match self {
            Platform::WindowsPc => 1.0,
            Platform::MacPc => 1.0,
            Platform::AndroidMobile => 0.7,
            Platform::IosMobile => 0.75,
        }
    }

    /// True for phone/tablet clients.
    pub fn is_mobile(self) -> bool {
        matches!(self, Platform::AndroidMobile | Platform::IosMobile)
    }

    /// Draw a platform from the enterprise mixture.
    pub fn sample_mixture<R: Rng + ?Sized>(rng: &mut R) -> Platform {
        let weights: Vec<f64> = Platform::ALL.iter().map(|p| p.mixture_weight()).collect();
        Platform::ALL[weighted_index(rng, &weights).expect("weights positive")]
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Platform::WindowsPc => "Windows PC",
            Platform::MacPc => "macOS PC",
            Platform::AndroidMobile => "Android",
            Platform::IosMobile => "iOS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = Platform::ALL.iter().map(|p| p.mixture_weight()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mobile_more_sensitive_than_pc() {
        for mobile in [Platform::AndroidMobile, Platform::IosMobile] {
            for pc in [Platform::WindowsPc, Platform::MacPc] {
                assert!(mobile.leave_sensitivity() > pc.leave_sensitivity());
                assert!(mobile.toggle_sensitivity() > pc.toggle_sensitivity());
                assert!(mobile.cam_baseline() < pc.cam_baseline());
            }
        }
    }

    #[test]
    fn os_differences_exist_within_class() {
        assert_ne!(
            Platform::WindowsPc.leave_sensitivity(),
            Platform::MacPc.leave_sensitivity()
        );
        assert_ne!(
            Platform::AndroidMobile.leave_sensitivity(),
            Platform::IosMobile.leave_sensitivity()
        );
    }

    #[test]
    fn mixture_hits_all_platforms() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            seen.insert(Platform::sample_mixture(&mut r).label());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn is_mobile_classification() {
        assert!(!Platform::WindowsPc.is_mobile());
        assert!(!Platform::MacPc.is_mobile());
        assert!(Platform::AndroidMobile.is_mobile());
        assert!(Platform::IosMobile.is_mobile());
    }
}
