//! Explicit end-of-call feedback (MOS) — §3.1 and §3.3 of the paper.
//!
//! *"MS Teams requests a subset of users to submit explicit feedback at the
//! end of sessions — a rating between 1 (worst) and 5 (best) … Such feedback
//! is only provided for a small fraction (between 0.1 % and 1 %) of
//! sessions."*
//!
//! The rating model converts the session's experienced impairment into a
//! latent quality score, adds a per-rating noise term (humans are noisy
//! raters), and rounds to the 1–5 star scale. Only a sampled sliver of
//! sessions produces a rating, which is exactly the scarcity the paper
//! argues implicit signals can compensate for.

use crate::behavior::BehaviorOutcome;
use analytics::dist::{bernoulli, standard_normal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the explicit-feedback model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackModel {
    /// Probability a session is asked for (and provides) feedback. The paper
    /// bounds this between 0.001 and 0.01.
    pub rate: f64,
    /// Std of the human rating noise (stars).
    pub noise_std: f64,
    /// Weight of the mean overall impairment in the latent quality.
    pub impairment_weight: f64,
    /// Weight of the loss-kick component (leave pressure minus overall).
    pub kick_weight: f64,
    /// Stars docked when the rater abandoned the call early — people who
    /// bailed out rate what drove them away.
    pub left_early_penalty: f64,
}

impl Default for FeedbackModel {
    fn default() -> FeedbackModel {
        FeedbackModel {
            rate: 0.004,
            noise_std: 0.45,
            impairment_weight: 2.8,
            kick_weight: 0.45,
            left_early_penalty: 0.8,
        }
    }
}

impl FeedbackModel {
    /// Latent call quality on the 1–5 scale, before rating noise.
    pub fn latent_quality(&self, outcome: &BehaviorOutcome) -> f64 {
        let kick = (outcome.mean_leave_pressure - outcome.mean_overall_impairment).max(0.0);
        let abandon = if outcome.left_early {
            self.left_early_penalty
        } else {
            0.0
        };
        (5.0 - self.impairment_weight * outcome.mean_overall_impairment
            - self.kick_weight * kick
            - abandon)
            .clamp(1.0, 5.0)
    }

    /// Maybe produce a star rating for a session: `None` for the unsampled
    /// majority.
    pub fn sample_rating<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        outcome: &BehaviorOutcome,
    ) -> Option<u8> {
        if !bernoulli(rng, self.rate) {
            return None;
        }
        Some(self.rate_session(rng, outcome))
    }

    /// Produce a rating unconditionally (used by tests and by ablations that
    /// pretend feedback were universal).
    pub fn rate_session<R: Rng + ?Sized>(&self, rng: &mut R, outcome: &BehaviorOutcome) -> u8 {
        let q = self.latent_quality(outcome) + self.noise_std * standard_normal(rng);
        q.round().clamp(1.0, 5.0) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn outcome(imp: f64, pressure: f64) -> BehaviorOutcome {
        BehaviorOutcome {
            attended_ticks: 300,
            mic_on_ticks: 200,
            cam_on_ticks: 150,
            left_early: false,
            mean_overall_impairment: imp,
            mean_leave_pressure: pressure,
        }
    }

    #[test]
    fn abandonment_docks_stars() {
        let m = FeedbackModel::default();
        let mut left = outcome(0.3, 0.3);
        left.left_early = true;
        assert!(m.latent_quality(&left) < m.latent_quality(&outcome(0.3, 0.3)));
    }

    #[test]
    fn perfect_call_rates_five() {
        let m = FeedbackModel::default();
        assert_eq!(m.latent_quality(&outcome(0.0, 0.0)), 5.0);
    }

    #[test]
    fn quality_monotone_in_impairment() {
        let m = FeedbackModel::default();
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let imp = i as f64 / 10.0;
            let q = m.latent_quality(&outcome(imp, imp));
            assert!(q <= prev + 1e-12);
            prev = q;
        }
        assert!(m.latent_quality(&outcome(1.0, 3.0)) >= 1.0);
    }

    #[test]
    fn loss_kick_lowers_quality_beyond_impairment() {
        let m = FeedbackModel::default();
        let without = m.latent_quality(&outcome(0.4, 0.4));
        let with = m.latent_quality(&outcome(0.4, 1.4));
        assert!(with < without);
    }

    #[test]
    fn sampling_rate_respected() {
        let m = FeedbackModel::default();
        let mut rng = StdRng::seed_from_u64(17);
        let o = outcome(0.2, 0.2);
        let n = 100_000;
        let sampled = (0..n)
            .filter(|_| m.sample_rating(&mut rng, &o).is_some())
            .count();
        let rate = sampled as f64 / n as f64;
        assert!((rate - m.rate).abs() < 0.0015, "rate {rate}");
    }

    #[test]
    fn ratings_in_star_range_and_track_quality() {
        let m = FeedbackModel::default();
        let mut rng = StdRng::seed_from_u64(18);
        let good: Vec<f64> = (0..2000)
            .map(|_| m.rate_session(&mut rng, &outcome(0.05, 0.05)) as f64)
            .collect();
        let bad: Vec<f64> = (0..2000)
            .map(|_| m.rate_session(&mut rng, &outcome(0.8, 1.8)) as f64)
            .collect();
        assert!(good.iter().all(|r| (1.0..=5.0).contains(r)));
        assert!(bad.iter().all(|r| (1.0..=5.0).contains(r)));
        let mg = analytics::mean(&good).unwrap();
        let mb = analytics::mean(&bad).unwrap();
        assert!(mg > 4.3, "good MOS {mg}");
        assert!(mb < 2.6, "bad MOS {mb}");
    }
}
