//! Gilbert–Elliott bursty packet-loss model.
//!
//! Internet packet loss is bursty, not i.i.d.: losses cluster when a queue
//! overflows or a radio link fades. The classic two-state Gilbert–Elliott
//! chain captures this: a *Good* state with low loss probability and a *Bad*
//! state with high loss probability, with geometric sojourn times. The
//! conferencing simulator uses per-tick loss fractions derived from this
//! chain, so sessions exhibit realistic loss bursts rather than a constant
//! rate — which matters for the paper's observation that the app's loss
//! mitigation (FEC + retransmission) hides moderate loss from users.

use analytics::dist::bernoulli;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Chain state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossState {
    /// Low-loss state.
    Good,
    /// High-loss (burst) state.
    Bad,
}

/// A Gilbert–Elliott loss process.
///
/// Parameters:
/// * `p_gb` — per-step probability of Good → Bad;
/// * `p_bg` — per-step probability of Bad → Good;
/// * `loss_good` / `loss_bad` — per-packet loss probability in each state.
///
/// One "step" is one 5-second tick of the path simulation; the per-tick loss
/// *fraction* is obtained by simulating `packets_per_tick` Bernoulli packet
/// fates within the current state (cheap, and gives natural sampling noise).
///
/// ```
/// use netsim::gilbert::GilbertElliott;
/// use rand::SeedableRng;
/// let mut chain = GilbertElliott::with_mean_loss(0.02, 3.0);
/// assert!((chain.stationary_loss() - 0.02).abs() < 0.002);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let frac = chain.tick(&mut rng, 250);
/// assert!((0.0..=1.0).contains(&frac));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(Good → Bad) per tick.
    pub p_gb: f64,
    /// P(Bad → Good) per tick.
    pub p_bg: f64,
    /// Per-packet loss probability in Good.
    pub loss_good: f64,
    /// Per-packet loss probability in Bad.
    pub loss_bad: f64,
    state: LossState,
}

impl GilbertElliott {
    /// Create a chain starting in the Good state. Probabilities are clamped
    /// to `[0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> GilbertElliott {
        GilbertElliott {
            p_gb: p_gb.clamp(0.0, 1.0),
            p_bg: p_bg.clamp(0.0, 1.0),
            loss_good: loss_good.clamp(0.0, 1.0),
            loss_bad: loss_bad.clamp(0.0, 1.0),
            state: LossState::Good,
        }
    }

    /// A chain tuned to a target *stationary* mean loss rate (fraction in
    /// `[0, 1)`), with burstiness controlled by the mean burst length in
    /// ticks (≥ 1). Loss in Good is a tenth of the target; the Bad-state loss
    /// is solved from the stationary equation.
    pub fn with_mean_loss(mean_loss: f64, mean_burst_ticks: f64) -> GilbertElliott {
        let mean_loss = mean_loss.clamp(0.0, 0.95);
        let burst = mean_burst_ticks.max(1.0);
        let p_bg = 1.0 / burst;
        // Keep the chain in Bad ~20 % of the time when lossy at all.
        let pi_bad: f64 = 0.2;
        let p_gb = p_bg * pi_bad / (1.0 - pi_bad);
        let loss_good = mean_loss * 0.1;
        // mean = pi_good * loss_good + pi_bad * loss_bad  =>  solve loss_bad.
        let loss_bad = ((mean_loss - (1.0 - pi_bad) * loss_good) / pi_bad).clamp(0.0, 1.0);
        GilbertElliott::new(p_gb, p_bg, loss_good, loss_bad)
    }

    /// Current state.
    pub fn state(&self) -> LossState {
        self.state
    }

    /// Stationary probability of being in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    /// Stationary mean per-packet loss rate.
    pub fn stationary_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }

    /// Advance one tick and return the loss *fraction* observed over
    /// `packets` transmitted packets during the tick.
    pub fn tick<R: Rng + ?Sized>(&mut self, rng: &mut R, packets: u32) -> f64 {
        // State transition first (sojourn starts at entry).
        self.state = match self.state {
            LossState::Good if bernoulli(rng, self.p_gb) => LossState::Bad,
            LossState::Bad if bernoulli(rng, self.p_bg) => LossState::Good,
            s => s,
        };
        if packets == 0 {
            return 0.0;
        }
        let p = match self.state {
            LossState::Good => self.loss_good,
            LossState::Bad => self.loss_bad,
        };
        if p <= 0.0 {
            return 0.0;
        }
        // Binomial draw via normal approximation for large counts, exact
        // Bernoulli sum for small ones.
        let n = packets as f64;
        let lost = if n * p * (1.0 - p) > 9.0 {
            let std = (n * p * (1.0 - p)).sqrt();
            (n * p + std * analytics::dist::standard_normal(rng))
                .round()
                .clamp(0.0, n)
        } else {
            (0..packets).filter(|_| bernoulli(rng, p)).count() as f64
        };
        lost / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn stationary_loss_matches_target() {
        for target in [0.001, 0.005, 0.02, 0.05] {
            let ge = GilbertElliott::with_mean_loss(target, 3.0);
            let analytic = ge.stationary_loss();
            assert!(
                (analytic - target).abs() / target < 0.05,
                "target {target}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn empirical_loss_converges_to_stationary() {
        let mut ge = GilbertElliott::with_mean_loss(0.02, 3.0);
        let mut r = rng();
        let mut total = 0.0;
        let ticks = 50_000;
        for _ in 0..ticks {
            total += ge.tick(&mut r, 250);
        }
        let mean = total / ticks as f64;
        assert!((mean - 0.02).abs() < 0.004, "mean {mean}");
    }

    #[test]
    fn loss_is_bursty() {
        // Consecutive-tick loss correlation should be clearly positive.
        let mut ge = GilbertElliott::with_mean_loss(0.03, 5.0);
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| ge.tick(&mut r, 250)).collect();
        let a = &xs[..xs.len() - 1];
        let b = &xs[1..];
        let corr = analytics::correlation::pearson(a, b).unwrap();
        assert!(corr > 0.3, "lag-1 autocorrelation {corr}");
    }

    #[test]
    fn zero_loss_chain_never_loses() {
        let mut ge = GilbertElliott::with_mean_loss(0.0, 3.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(ge.tick(&mut r, 250), 0.0);
        }
    }

    #[test]
    fn zero_packets_is_zero_loss() {
        let mut ge = GilbertElliott::with_mean_loss(0.5, 3.0);
        let mut r = rng();
        assert_eq!(ge.tick(&mut r, 0), 0.0);
    }

    #[test]
    fn params_clamped() {
        let ge = GilbertElliott::new(2.0, -1.0, 1.5, -0.5);
        assert_eq!(ge.p_gb, 1.0);
        assert_eq!(ge.p_bg, 0.0);
        assert_eq!(ge.loss_good, 1.0);
        assert_eq!(ge.loss_bad, 0.0);
    }

    #[test]
    fn stationary_bad_degenerate() {
        let ge = GilbertElliott::new(0.0, 0.0, 0.0, 1.0);
        assert_eq!(ge.stationary_bad(), 0.0);
    }

    #[test]
    fn loss_fraction_in_unit_interval() {
        let mut ge = GilbertElliott::with_mean_loss(0.08, 2.0);
        let mut r = rng();
        for _ in 0..5000 {
            let f = ge.tick(&mut r, 250);
            assert!((0.0..=1.0).contains(&f), "fraction {f}");
        }
    }
}
