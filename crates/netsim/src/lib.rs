//! # netsim
//!
//! Network-path simulation substrate for the `user-signals` workspace.
//!
//! The paper's §3 analysis consumes *per-session network condition metrics*
//! gathered by the conferencing client every 5 seconds: latency, packet-loss
//! percentage, jitter, and available bandwidth, aggregated per session into
//! mean / median / P95. This crate produces exactly those measurements from a
//! mechanistic path model:
//!
//! * [`gilbert`] — Gilbert–Elliott two-state bursty packet loss;
//! * [`jitter`] — an AR(1) delay-variation process;
//! * [`access`] — access-technology presets (fiber, cable, DSL, Wi-Fi, LTE,
//!   LEO satellite) with realistic marginal distributions;
//! * [`path`] — a [`path::NetworkPath`] combining the processes and emitting
//!   one [`path::PathSample`] per 5-second tick;
//! * [`sampler`] — the client-side aggregator mirroring §3.1 of the paper;
//! * [`mitigation`] — application-layer safeguards (FEC/retransmit/jitter
//!   buffer) that convert raw network metrics into the *effective* metrics an
//!   app experiences — the reason the paper finds loss ≤ 2 % barely moves
//!   engagement;
//! * [`quality`] — impairment curves mapping effective metrics to per-channel
//!   (audio / video / interactivity) impairment scores in `[0, 1]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod gilbert;
pub mod jitter;
pub mod mitigation;
pub mod path;
pub mod quality;
pub mod sampler;

pub use access::AccessType;
pub use gilbert::GilbertElliott;
pub use jitter::Ar1Jitter;
pub use mitigation::{MitigatedSample, Mitigation};
pub use path::{NetworkPath, PathConfig, PathSample};
pub use quality::ChannelImpairment;
pub use sampler::{ClientSampler, SessionNetworkStats, TICK_SECONDS};
