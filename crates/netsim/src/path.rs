//! A simulated network path emitting one sample per 5-second tick.
//!
//! [`NetworkPath`] composes the loss chain ([`crate::gilbert`]), the jitter
//! process ([`crate::jitter`]), and a noisy bandwidth share around the
//! session targets drawn from [`crate::access`]. Latency couples to jitter
//! (queueing delay variation raises the mean) exactly as on real paths.

use crate::access::TargetConditions;
use crate::gilbert::GilbertElliott;
use crate::jitter::Ar1Jitter;
use analytics::dist::standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Audio+video packet rate assumed per tick for loss sampling (50 pkt/s over
/// a 5 s tick).
pub const PACKETS_PER_TICK: u32 = 250;

/// Configuration for a [`NetworkPath`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathConfig {
    /// Base propagation+processing latency (ms), before queueing variation.
    pub base_latency_ms: f64,
    /// Long-run mean jitter level (ms).
    pub jitter_level_ms: f64,
    /// Jitter autocorrelation `[0, 1)`.
    pub jitter_phi: f64,
    /// Jitter innovation std (ms).
    pub jitter_sigma_ms: f64,
    /// Target stationary mean loss fraction.
    pub mean_loss_frac: f64,
    /// Mean loss-burst length in ticks.
    pub loss_burst_ticks: f64,
    /// Mean available bandwidth (Mbps).
    pub bandwidth_mbps: f64,
    /// Relative bandwidth fluctuation std (fraction of mean).
    pub bandwidth_rel_std: f64,
    /// How strongly jitter couples into latency (ms of extra mean latency per
    /// ms of jitter).
    pub latency_jitter_coupling: f64,
}

impl PathConfig {
    /// Build a config whose session-mean metrics match the drawn targets.
    ///
    /// The latency/jitter coupling is subtracted from the base so the
    /// realised session mean stays near `targets.latency_ms`.
    pub fn from_targets(targets: TargetConditions) -> PathConfig {
        let coupling = 0.6;
        let base = (targets.latency_ms - coupling * targets.jitter_ms).max(1.0);
        PathConfig {
            base_latency_ms: base,
            jitter_level_ms: targets.jitter_ms,
            jitter_phi: 0.75,
            jitter_sigma_ms: (targets.jitter_ms * 0.35).max(0.05),
            mean_loss_frac: targets.loss_frac,
            loss_burst_ticks: 3.0,
            bandwidth_mbps: targets.bandwidth_mbps,
            bandwidth_rel_std: 0.08,
            latency_jitter_coupling: coupling,
        }
    }
}

/// One 5-second observation of the path, as the conferencing client would
/// measure it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSample {
    /// Mean latency over the tick (ms).
    pub latency_ms: f64,
    /// Loss fraction over the tick in `[0, 1]`.
    pub loss_frac: f64,
    /// Mean jitter over the tick (ms).
    pub jitter_ms: f64,
    /// Available bandwidth over the tick (Mbps).
    pub bandwidth_mbps: f64,
}

/// A live path simulation.
#[derive(Debug, Clone)]
pub struct NetworkPath {
    config: PathConfig,
    loss: GilbertElliott,
    jitter: Ar1Jitter,
}

impl NetworkPath {
    /// Instantiate the stochastic processes for a config.
    pub fn new(config: PathConfig) -> NetworkPath {
        NetworkPath {
            config,
            loss: GilbertElliott::with_mean_loss(config.mean_loss_frac, config.loss_burst_ticks),
            jitter: Ar1Jitter::new(
                config.jitter_level_ms,
                config.jitter_phi,
                config.jitter_sigma_ms,
            ),
        }
    }

    /// Convenience: path straight from drawn targets.
    pub fn from_targets(targets: TargetConditions) -> NetworkPath {
        NetworkPath::new(PathConfig::from_targets(targets))
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PathConfig {
        &self.config
    }

    /// Advance one 5-second tick.
    pub fn tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> PathSample {
        let jitter_ms = self.jitter.tick(rng);
        let loss_frac = self.loss.tick(rng, PACKETS_PER_TICK);
        let latency_noise = 1.0 + 0.02 * standard_normal(rng);
        let latency_ms = (self.config.base_latency_ms
            + self.config.latency_jitter_coupling * jitter_ms)
            * latency_noise.max(0.5);
        let bw_noise = 1.0 + self.config.bandwidth_rel_std * standard_normal(rng);
        let bandwidth_mbps = (self.config.bandwidth_mbps * bw_noise.clamp(0.5, 1.5)).max(0.05);
        PathSample {
            latency_ms: latency_ms.max(0.5),
            loss_frac,
            jitter_ms,
            bandwidth_mbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn targets() -> TargetConditions {
        TargetConditions {
            latency_ms: 80.0,
            loss_frac: 0.01,
            jitter_ms: 6.0,
            bandwidth_mbps: 3.0,
        }
    }

    #[test]
    fn session_means_match_targets() {
        let mut path = NetworkPath::from_targets(targets());
        let mut r = StdRng::seed_from_u64(31);
        let n = 40_000;
        let mut lat = Vec::with_capacity(n);
        let mut loss = Vec::with_capacity(n);
        let mut jit = Vec::with_capacity(n);
        let mut bw = Vec::with_capacity(n);
        for _ in 0..n {
            let s = path.tick(&mut r);
            lat.push(s.latency_ms);
            loss.push(s.loss_frac);
            jit.push(s.jitter_ms);
            bw.push(s.bandwidth_mbps);
        }
        let t = targets();
        let ml = analytics::mean(&lat).unwrap();
        let mo = analytics::mean(&loss).unwrap();
        let mj = analytics::mean(&jit).unwrap();
        let mb = analytics::mean(&bw).unwrap();
        assert!(
            (ml - t.latency_ms).abs() / t.latency_ms < 0.08,
            "latency {ml}"
        );
        assert!((mo - t.loss_frac).abs() / t.loss_frac < 0.25, "loss {mo}");
        assert!((mj - t.jitter_ms).abs() / t.jitter_ms < 0.15, "jitter {mj}");
        assert!(
            (mb - t.bandwidth_mbps).abs() / t.bandwidth_mbps < 0.05,
            "bw {mb}"
        );
    }

    #[test]
    fn samples_physically_sane() {
        let mut r = StdRng::seed_from_u64(32);
        for access in AccessType::ALL {
            let t = access.sample_targets(&mut r);
            let mut path = NetworkPath::from_targets(t);
            for _ in 0..500 {
                let s = path.tick(&mut r);
                assert!(s.latency_ms > 0.0 && s.latency_ms < 5_000.0);
                assert!((0.0..=1.0).contains(&s.loss_frac));
                assert!(s.jitter_ms >= 0.0);
                assert!(s.bandwidth_mbps > 0.0);
            }
        }
    }

    #[test]
    fn latency_couples_to_jitter() {
        // Sessions configured with higher jitter see higher realised latency
        // for the same base, matching queueing behaviour.
        let mut r = StdRng::seed_from_u64(33);
        let mut calm = NetworkPath::new(PathConfig {
            jitter_level_ms: 1.0,
            ..PathConfig::from_targets(targets())
        });
        let mut stormy = NetworkPath::new(PathConfig {
            jitter_level_ms: 20.0,
            ..PathConfig::from_targets(targets())
        });
        let calm_lat: Vec<f64> = (0..5000).map(|_| calm.tick(&mut r).latency_ms).collect();
        let stormy_lat: Vec<f64> = (0..5000).map(|_| stormy.tick(&mut r).latency_ms).collect();
        assert!(analytics::mean(&stormy_lat).unwrap() > analytics::mean(&calm_lat).unwrap() + 5.0);
    }

    #[test]
    fn base_latency_never_negative() {
        let t = TargetConditions {
            latency_ms: 2.0,
            loss_frac: 0.0,
            jitter_ms: 50.0,
            bandwidth_mbps: 1.0,
        };
        let c = PathConfig::from_targets(t);
        assert!(c.base_latency_ms >= 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = NetworkPath::from_targets(targets());
        let mut b = NetworkPath::from_targets(targets());
        let mut ra = StdRng::seed_from_u64(99);
        let mut rb = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.tick(&mut ra), b.tick(&mut rb));
        }
    }
}
