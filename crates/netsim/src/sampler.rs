//! Client-side telemetry aggregation (§3.1 of the paper).
//!
//! *"The client running on the user-end of MS Teams gathers network latency,
//! packet loss percent, jitter, and available bandwidth information every 5
//! seconds. When the user session ends, each client computes the mean,
//! median, and 95th percentile (P95) value for each of these metrics per
//! session."*
//!
//! [`ClientSampler`] is that client: it accumulates [`PathSample`]s and, at
//! session end, produces a [`SessionNetworkStats`] with a
//! [`analytics::Summary`] per metric. The paper reports results on the means;
//! the P95s are carried too so the `usaas` analyses can reproduce the
//! "similar trends hold for P95" remark.

use crate::path::PathSample;
use analytics::{AnalyticsError, Summary};
use serde::{Deserialize, Serialize};

/// Seconds between client measurements (the paper's cadence).
pub const TICK_SECONDS: u32 = 5;

/// Per-session aggregated network statistics, one [`Summary`] per metric.
/// Loss is carried as a *percentage* here (0–100), matching the paper's
/// plotting units; everything upstream uses fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionNetworkStats {
    /// Latency (ms).
    pub latency_ms: Summary,
    /// Packet loss (percent, 0–100).
    pub loss_pct: Summary,
    /// Jitter (ms).
    pub jitter_ms: Summary,
    /// Available bandwidth (Mbps).
    pub bandwidth_mbps: Summary,
    /// Number of 5-second ticks observed.
    pub ticks: usize,
}

impl SessionNetworkStats {
    /// Session duration in seconds implied by the tick count.
    pub fn duration_secs(&self) -> u32 {
        self.ticks as u32 * TICK_SECONDS
    }
}

/// Accumulates per-tick samples for one session.
#[derive(Debug, Clone, Default)]
pub struct ClientSampler {
    latency: Vec<f64>,
    loss: Vec<f64>,
    jitter: Vec<f64>,
    bandwidth: Vec<f64>,
}

impl ClientSampler {
    /// Fresh sampler.
    pub fn new() -> ClientSampler {
        ClientSampler::default()
    }

    /// Sampler with capacity for an expected number of ticks.
    pub fn with_capacity(ticks: usize) -> ClientSampler {
        ClientSampler {
            latency: Vec::with_capacity(ticks),
            loss: Vec::with_capacity(ticks),
            jitter: Vec::with_capacity(ticks),
            bandwidth: Vec::with_capacity(ticks),
        }
    }

    /// Record one 5-second observation.
    pub fn record(&mut self, sample: &PathSample) {
        self.latency.push(sample.latency_ms);
        self.loss.push(sample.loss_frac * 100.0);
        self.jitter.push(sample.jitter_ms);
        self.bandwidth.push(sample.bandwidth_mbps);
    }

    /// Ticks recorded so far.
    pub fn ticks(&self) -> usize {
        self.latency.len()
    }

    /// Finalize into per-session statistics; errors if nothing was recorded.
    pub fn finish(&self) -> Result<SessionNetworkStats, AnalyticsError> {
        Ok(SessionNetworkStats {
            latency_ms: Summary::from_samples(&self.latency)?,
            loss_pct: Summary::from_samples(&self.loss)?,
            jitter_ms: Summary::from_samples(&self.jitter)?,
            bandwidth_mbps: Summary::from_samples(&self.bandwidth)?,
            ticks: self.latency.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::TargetConditions;
    use crate::path::NetworkPath;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_sampler_errors() {
        assert!(ClientSampler::new().finish().is_err());
    }

    #[test]
    fn loss_is_reported_in_percent() {
        let mut s = ClientSampler::new();
        s.record(&PathSample {
            latency_ms: 20.0,
            loss_frac: 0.01,
            jitter_ms: 2.0,
            bandwidth_mbps: 3.0,
        });
        let stats = s.finish().unwrap();
        assert!((stats.loss_pct.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_full_session() {
        let t = TargetConditions {
            latency_ms: 60.0,
            loss_frac: 0.005,
            jitter_ms: 4.0,
            bandwidth_mbps: 3.5,
        };
        let mut path = NetworkPath::from_targets(t);
        let mut r = StdRng::seed_from_u64(41);
        let mut sampler = ClientSampler::with_capacity(720);
        for _ in 0..720 {
            sampler.record(&path.tick(&mut r));
        }
        let stats = sampler.finish().unwrap();
        assert_eq!(stats.ticks, 720);
        assert_eq!(stats.duration_secs(), 3600);
        assert!((stats.latency_ms.mean - 60.0).abs() < 10.0);
        assert!(stats.latency_ms.median <= stats.latency_ms.p95);
        assert!((stats.loss_pct.mean - 0.5).abs() < 0.4);
        assert!((stats.bandwidth_mbps.mean - 3.5).abs() < 0.3);
        // Loss P95 reflects burstiness: well above the mean.
        assert!(stats.loss_pct.p95 >= stats.loss_pct.mean);
    }

    #[test]
    fn tick_count_tracks_records() {
        let mut s = ClientSampler::new();
        assert_eq!(s.ticks(), 0);
        for i in 0..5 {
            s.record(&PathSample {
                latency_ms: 10.0 + i as f64,
                loss_frac: 0.0,
                jitter_ms: 1.0,
                bandwidth_mbps: 4.0,
            });
        }
        assert_eq!(s.ticks(), 5);
        let stats = s.finish().unwrap();
        assert_eq!(stats.latency_ms.count, 5);
        assert_eq!(stats.latency_ms.mean, 12.0);
    }
}
