//! AR(1) delay-variation (jitter) process.
//!
//! Jitter on real paths is temporally correlated — a congested queue stays
//! congested for a while. We model the per-tick mean jitter as the absolute
//! value of a mean-reverting AR(1) process around a configurable level, which
//! produces the right mix of calm stretches and jitter storms that drive the
//! Fig. 1 (middle-right) Cam-On sensitivity.

use analytics::dist::standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mean-reverting AR(1) jitter process (values in milliseconds).
///
/// `x_{t+1} = level + phi * (x_t - level) + sigma * N(0,1)`, reported jitter
/// is `max(x, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ar1Jitter {
    /// Long-run mean jitter level (ms).
    pub level: f64,
    /// Autocorrelation coefficient in `[0, 1)`.
    pub phi: f64,
    /// Innovation standard deviation (ms).
    pub sigma: f64,
    x: f64,
}

impl Ar1Jitter {
    /// Create a process starting at its long-run level. `phi` is clamped to
    /// `[0, 0.999]`, `level`/`sigma` floored at 0.
    pub fn new(level: f64, phi: f64, sigma: f64) -> Ar1Jitter {
        let level = level.max(0.0);
        Ar1Jitter {
            level,
            phi: phi.clamp(0.0, 0.999),
            sigma: sigma.max(0.0),
            x: level,
        }
    }

    /// Advance one tick; returns the jitter (ms, ≥ 0) for the tick.
    pub fn tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.x = self.level + self.phi * (self.x - self.level) + self.sigma * standard_normal(rng);
        self.x.max(0.0)
    }

    /// Current (last emitted) value before flooring.
    pub fn raw(&self) -> f64 {
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_reverts_to_level() {
        let mut j = Ar1Jitter::new(8.0, 0.8, 1.0);
        let mut r = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..30_000).map(|_| j.tick(&mut r)).collect();
        let mean = analytics::mean(&xs).unwrap();
        assert!((mean - 8.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn non_negative() {
        let mut j = Ar1Jitter::new(0.5, 0.9, 2.0);
        let mut r = StdRng::seed_from_u64(12);
        for _ in 0..10_000 {
            assert!(j.tick(&mut r) >= 0.0);
        }
    }

    #[test]
    fn temporally_correlated() {
        let mut j = Ar1Jitter::new(5.0, 0.9, 1.0);
        let mut r = StdRng::seed_from_u64(13);
        let xs: Vec<f64> = (0..20_000).map(|_| j.tick(&mut r)).collect();
        let corr = analytics::correlation::pearson(&xs[..xs.len() - 1], &xs[1..]).unwrap();
        assert!(corr > 0.7, "lag-1 autocorrelation {corr}");
    }

    #[test]
    fn zero_sigma_is_constant_at_level() {
        let mut j = Ar1Jitter::new(3.0, 0.5, 0.0);
        let mut r = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            assert_eq!(j.tick(&mut r), 3.0);
        }
    }

    #[test]
    fn parameter_clamping() {
        let j = Ar1Jitter::new(-5.0, 1.5, -1.0);
        assert_eq!(j.level, 0.0);
        assert!(j.phi < 1.0);
        assert_eq!(j.sigma, 0.0);
    }
}
