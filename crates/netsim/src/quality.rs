//! Impairment curves: effective network metrics → per-channel impairment.
//!
//! The behavioural model in `conference` needs to know *how bad the call
//! feels* on each channel before it can decide whether a user mutes, turns
//! the camera off, or leaves. This module maps one [`MitigatedSample`] to an
//! [`ChannelImpairment`] with three scores in `[0, 1]`:
//!
//! * **interactivity** — driven by latency; the knee-then-plateau shape
//!   encodes the paper's observation that muting pressure is steepest up to
//!   ~150 ms ("the lag hinders the rapid turn-taking called for in an
//!   interactive dialogue") and plateaus after;
//! * **audio** — driven by residual loss (audio uses negligible bandwidth,
//!   matching Fig. 1 right where Mic On is flat across bandwidth);
//! * **video** — driven by residual jitter (the Fig. 1 middle-right Cam On
//!   sensitivity), residual loss, and bandwidth deficit below ~1 Mbps
//!   (Fig. 1 right: all metrics within 5 % of best at ≥ 1 Mbps).

use crate::mitigation::MitigatedSample;
use serde::{Deserialize, Serialize};

/// Tunable knees and slopes for the impairment curves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpairmentParams {
    /// Latency below this feels instantaneous (ms).
    pub latency_free_ms: f64,
    /// Knee where the latency response flattens (ms).
    pub latency_knee_ms: f64,
    /// Impairment accumulated between free and knee.
    pub latency_knee_level: f64,
    /// Additional impairment per ms beyond the knee (much shallower).
    pub latency_post_knee_per_ms: f64,
    /// Residual loss fraction that saturates audio impairment.
    pub audio_loss_sat: f64,
    /// Residual jitter (ms) that saturates the audio jitter term.
    pub audio_jitter_sat_ms: f64,
    /// Residual jitter (ms) that saturates video impairment.
    pub video_jitter_sat_ms: f64,
    /// Residual loss fraction that saturates the video loss term.
    pub video_loss_sat: f64,
    /// Bandwidth (Mbps) below which video starts degrading.
    pub video_bw_floor_mbps: f64,
}

impl Default for ImpairmentParams {
    fn default() -> ImpairmentParams {
        ImpairmentParams {
            latency_free_ms: 40.0,
            latency_knee_ms: 150.0,
            latency_knee_level: 0.55,
            latency_post_knee_per_ms: 0.0012,
            audio_loss_sat: 0.06,
            audio_jitter_sat_ms: 45.0,
            video_jitter_sat_ms: 18.0,
            video_loss_sat: 0.10,
            video_bw_floor_mbps: 0.9,
        }
    }
}

/// Per-channel impairment scores, each in `[0, 1]` (0 = perfect, 1 = unusable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelImpairment {
    /// Conversational-interactivity impairment (latency-driven).
    pub interactivity: f64,
    /// Audio-quality impairment.
    pub audio: f64,
    /// Video-quality impairment.
    pub video: f64,
}

impl ChannelImpairment {
    /// Overall impairment: probabilistic OR of the three channels
    /// (`1 - Π(1 - x)`), used for the leave hazard and MOS latent quality.
    pub fn overall(&self) -> f64 {
        1.0 - (1.0 - self.interactivity) * (1.0 - self.audio) * (1.0 - self.video)
    }
}

/// Combine independent impairment contributions: `1 - Π(1 - x_i)`.
fn combine(parts: &[f64]) -> f64 {
    1.0 - parts
        .iter()
        .fold(1.0, |acc, x| acc * (1.0 - x.clamp(0.0, 1.0)))
}

/// Saturating-linear ramp: 0 at `x <= 0`, 1 at `x >= sat`.
fn ramp(x: f64, sat: f64) -> f64 {
    if sat <= 0.0 {
        return if x > 0.0 { 1.0 } else { 0.0 };
    }
    (x / sat).clamp(0.0, 1.0)
}

impl ImpairmentParams {
    /// Latency-driven interactivity impairment: zero up to
    /// `latency_free_ms`, steep to `latency_knee_level` at `latency_knee_ms`,
    /// then a shallow linear tail (capped at 1).
    pub fn interactivity(&self, latency_ms: f64) -> f64 {
        let l = latency_ms.max(0.0);
        if l <= self.latency_free_ms {
            0.0
        } else if l <= self.latency_knee_ms {
            self.latency_knee_level * (l - self.latency_free_ms)
                / (self.latency_knee_ms - self.latency_free_ms)
        } else {
            (self.latency_knee_level + self.latency_post_knee_per_ms * (l - self.latency_knee_ms))
                .min(1.0)
        }
    }

    /// Audio impairment from residual loss and jitter.
    pub fn audio(&self, loss_frac: f64, jitter_ms: f64) -> f64 {
        combine(&[
            ramp(loss_frac, self.audio_loss_sat),
            0.5 * ramp(jitter_ms, self.audio_jitter_sat_ms),
        ])
    }

    /// Video impairment from residual jitter, residual loss, and bandwidth
    /// deficit.
    pub fn video(&self, loss_frac: f64, jitter_ms: f64, bandwidth_mbps: f64) -> f64 {
        let bw_deficit = if bandwidth_mbps >= self.video_bw_floor_mbps {
            0.0
        } else {
            ((self.video_bw_floor_mbps - bandwidth_mbps) / self.video_bw_floor_mbps).clamp(0.0, 1.0)
        };
        combine(&[
            ramp(jitter_ms, self.video_jitter_sat_ms),
            ramp(loss_frac, self.video_loss_sat),
            bw_deficit,
        ])
    }

    /// Score all channels for one mitigated sample.
    pub fn score(&self, s: &MitigatedSample) -> ChannelImpairment {
        ChannelImpairment {
            interactivity: self.interactivity(s.latency_ms),
            audio: self.audio(s.loss_frac, s.jitter_ms),
            video: self.video(s.loss_frac, s.jitter_ms, s.bandwidth_mbps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> ImpairmentParams {
        ImpairmentParams::default()
    }

    fn ms(latency: f64, loss: f64, jitter: f64, bw: f64) -> MitigatedSample {
        MitigatedSample {
            latency_ms: latency,
            loss_frac: loss,
            jitter_ms: jitter,
            bandwidth_mbps: bw,
        }
    }

    #[test]
    fn interactivity_knee_shape() {
        let q = p();
        assert_eq!(q.interactivity(0.0), 0.0);
        assert_eq!(q.interactivity(40.0), 0.0);
        // The slope before the knee is much steeper than after it — the
        // paper's Mic-On shape.
        let pre_knee_slope = (q.interactivity(150.0) - q.interactivity(50.0)) / 100.0;
        let post_knee_slope = (q.interactivity(300.0) - q.interactivity(200.0)) / 100.0;
        assert!(
            pre_knee_slope > 3.0 * post_knee_slope,
            "{pre_knee_slope} vs {post_knee_slope}"
        );
        assert!(q.interactivity(10_000.0) <= 1.0);
    }

    #[test]
    fn audio_ignores_bandwidth() {
        let q = p();
        let a = q.score(&ms(50.0, 0.01, 5.0, 0.3)).audio;
        let b = q.score(&ms(50.0, 0.01, 5.0, 4.0)).audio;
        assert_eq!(a, b, "audio impairment must not depend on bandwidth");
    }

    #[test]
    fn video_most_sensitive_to_jitter() {
        let q = p();
        // 10 ms of residual jitter hurts video more than 1 % residual loss.
        let jitter_only = q.video(0.0, 10.0, 4.0);
        let loss_only = q.video(0.01, 0.0, 4.0);
        assert!(jitter_only > loss_only, "{jitter_only} vs {loss_only}");
    }

    #[test]
    fn bandwidth_floor_behaviour() {
        let q = p();
        // Above ~1 Mbps video is unaffected by bandwidth.
        assert_eq!(q.video(0.0, 0.0, 1.0), 0.0);
        assert_eq!(q.video(0.0, 0.0, 4.0), 0.0);
        // Below the floor it degrades monotonically.
        let v_half = q.video(0.0, 0.0, 0.45);
        let v_tenth = q.video(0.0, 0.0, 0.09);
        assert!(v_half > 0.0 && v_tenth > v_half);
    }

    #[test]
    fn overall_combines_channels() {
        let clean = ChannelImpairment {
            interactivity: 0.0,
            audio: 0.0,
            video: 0.0,
        };
        assert_eq!(clean.overall(), 0.0);
        let one = ChannelImpairment {
            interactivity: 1.0,
            audio: 0.0,
            video: 0.0,
        };
        assert_eq!(one.overall(), 1.0);
        let mixed = ChannelImpairment {
            interactivity: 0.5,
            audio: 0.5,
            video: 0.0,
        };
        assert!((mixed.overall() - 0.75).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn scores_bounded(lat in 0.0..2000.0f64, loss in 0.0..1.0f64,
                          jit in 0.0..200.0f64, bw in 0.05..20.0f64) {
            let c = p().score(&ms(lat, loss, jit, bw));
            for v in [c.interactivity, c.audio, c.video, c.overall()] {
                prop_assert!((0.0..=1.0).contains(&v), "score {v}");
            }
        }

        #[test]
        fn interactivity_monotone(a in 0.0..2000.0f64, b in 0.0..2000.0f64) {
            let q = p();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(q.interactivity(lo) <= q.interactivity(hi) + 1e-12);
        }

        #[test]
        fn video_monotone_in_each_axis(loss in 0.0..0.2f64, jit in 0.0..50.0f64, bw in 0.1..5.0f64) {
            let q = p();
            prop_assert!(q.video(loss, jit, bw) <= q.video(loss + 0.01, jit, bw) + 1e-12);
            prop_assert!(q.video(loss, jit, bw) <= q.video(loss, jit + 1.0, bw) + 1e-12);
            prop_assert!(q.video(loss, jit, bw) + 1e-12 >= q.video(loss, jit, bw + 0.1) - 1e-12);
        }
    }
}
