//! Application-layer safeguards.
//!
//! §3.2 of the paper observes that loss barely dents engagement up to ~2 %
//! because *"MS Teams is able to effectively mitigate the packet loss using
//! application layer safeguards"*. This module models those safeguards —
//! forward error correction + selective retransmission for loss, a jitter
//! buffer for delay variation — and exposes an on/off switch so the
//! `mitigation_ablation` bench can show Fig. 1b's flat loss response turning
//! steep without them.

use crate::path::PathSample;
use serde::{Deserialize, Serialize};

/// Parameters of the application-layer mitigation stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mitigation {
    /// Master switch; `false` passes raw metrics through (ablation).
    pub enabled: bool,
    /// FEC/retransmit knee (fraction): residual loss is
    /// `raw² / (raw + knee)`, i.e. nearly total recovery below the knee and
    /// diminishing recovery above it.
    pub fec_knee: f64,
    /// Jitter-buffer half-absorption point (ms): residual jitter is
    /// `raw² / (raw + half)`.
    pub jitter_buffer_half_ms: f64,
    /// Playout delay added per ms of raw jitter (the cost of buffering).
    pub buffer_delay_gain: f64,
    /// Cap on added playout delay (ms).
    pub max_buffer_delay_ms: f64,
    /// Extra mean latency per unit raw loss (retransmission round trips),
    /// expressed as a multiple of the path latency.
    pub retransmit_latency_gain: f64,
}

impl Default for Mitigation {
    fn default() -> Mitigation {
        Mitigation {
            enabled: true,
            fec_knee: 0.04,
            jitter_buffer_half_ms: 4.0,
            buffer_delay_gain: 1.5,
            max_buffer_delay_ms: 60.0,
            retransmit_latency_gain: 1.0,
        }
    }
}

/// Metrics as the application experiences them after mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigatedSample {
    /// End-to-end latency including playout buffering and retransmits (ms).
    pub latency_ms: f64,
    /// Residual (unrecovered) loss fraction.
    pub loss_frac: f64,
    /// Residual jitter after the playout buffer (ms).
    pub jitter_ms: f64,
    /// Available bandwidth (unchanged by mitigation) (Mbps).
    pub bandwidth_mbps: f64,
}

impl Mitigation {
    /// Mitigation disabled — raw metrics pass through (for ablations).
    pub fn disabled() -> Mitigation {
        Mitigation {
            enabled: false,
            ..Mitigation::default()
        }
    }

    /// Residual loss fraction after FEC/retransmission.
    pub fn residual_loss(&self, raw: f64) -> f64 {
        let raw = raw.clamp(0.0, 1.0);
        if !self.enabled || raw == 0.0 {
            return raw;
        }
        (raw * raw / (raw + self.fec_knee)).clamp(0.0, raw)
    }

    /// Residual jitter (ms) after the playout buffer.
    pub fn residual_jitter(&self, raw_ms: f64) -> f64 {
        let raw = raw_ms.max(0.0);
        if !self.enabled || raw == 0.0 {
            return raw;
        }
        (raw * raw / (raw + self.jitter_buffer_half_ms)).clamp(0.0, raw)
    }

    /// Apply the full stack to one tick's sample.
    pub fn apply(&self, s: &PathSample) -> MitigatedSample {
        if !self.enabled {
            return MitigatedSample {
                latency_ms: s.latency_ms,
                loss_frac: s.loss_frac,
                jitter_ms: s.jitter_ms,
                bandwidth_mbps: s.bandwidth_mbps,
            };
        }
        let buffer_delay = (self.buffer_delay_gain * s.jitter_ms).min(self.max_buffer_delay_ms);
        let retransmit_delay = self.retransmit_latency_gain * s.loss_frac * s.latency_ms;
        MitigatedSample {
            latency_ms: s.latency_ms + buffer_delay + retransmit_delay,
            loss_frac: self.residual_loss(s.loss_frac),
            jitter_ms: self.residual_jitter(s.jitter_ms),
            bandwidth_mbps: s.bandwidth_mbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(latency: f64, loss: f64, jitter: f64, bw: f64) -> PathSample {
        PathSample {
            latency_ms: latency,
            loss_frac: loss,
            jitter_ms: jitter,
            bandwidth_mbps: bw,
        }
    }

    #[test]
    fn low_loss_is_nearly_fully_recovered() {
        let m = Mitigation::default();
        // At 0.5 % raw loss the residual is tiny.
        assert!(m.residual_loss(0.005) < 0.001);
        // At 2 % (the paper's "rare" mark) residual is under 0.7 %.
        assert!(m.residual_loss(0.02) < 0.007);
        // At 5 % recovery has degraded a lot.
        assert!(m.residual_loss(0.05) > 0.025);
    }

    #[test]
    fn residual_never_exceeds_raw() {
        let m = Mitigation::default();
        for raw in [0.0, 0.001, 0.01, 0.1, 0.5, 1.0] {
            assert!(m.residual_loss(raw) <= raw);
            assert!(m.residual_jitter(raw * 50.0) <= raw * 50.0);
        }
    }

    #[test]
    fn disabled_passes_through() {
        let m = Mitigation::disabled();
        let s = sample(100.0, 0.03, 12.0, 2.0);
        let out = m.apply(&s);
        assert_eq!(out.latency_ms, 100.0);
        assert_eq!(out.loss_frac, 0.03);
        assert_eq!(out.jitter_ms, 12.0);
    }

    #[test]
    fn buffering_trades_jitter_for_latency() {
        let m = Mitigation::default();
        let s = sample(50.0, 0.0, 10.0, 3.0);
        let out = m.apply(&s);
        assert!(out.jitter_ms < 10.0, "jitter should be absorbed");
        assert!(out.latency_ms > 50.0, "buffering must add delay");
        assert!(out.latency_ms <= 50.0 + m.max_buffer_delay_ms + 1e-9);
    }

    #[test]
    fn buffer_delay_capped() {
        let m = Mitigation::default();
        let s = sample(50.0, 0.0, 200.0, 3.0);
        let out = m.apply(&s);
        assert!(out.latency_ms <= 50.0 + m.max_buffer_delay_ms + 1e-9);
    }

    #[test]
    fn retransmits_add_latency_under_loss() {
        let m = Mitigation::default();
        let clean = m.apply(&sample(100.0, 0.0, 0.0, 3.0));
        let lossy = m.apply(&sample(100.0, 0.05, 0.0, 3.0));
        assert!(lossy.latency_ms > clean.latency_ms);
    }

    #[test]
    fn bandwidth_unchanged() {
        let m = Mitigation::default();
        let out = m.apply(&sample(10.0, 0.01, 5.0, 2.5));
        assert_eq!(out.bandwidth_mbps, 2.5);
    }

    proptest! {
        #[test]
        fn residual_loss_monotone(a in 0.0..0.5f64, b in 0.0..0.5f64) {
            let m = Mitigation::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.residual_loss(lo) <= m.residual_loss(hi) + 1e-12);
        }

        #[test]
        fn residual_jitter_monotone(a in 0.0..100.0f64, b in 0.0..100.0f64) {
            let m = Mitigation::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.residual_jitter(lo) <= m.residual_jitter(hi) + 1e-12);
        }
    }
}
