//! Access-technology presets.
//!
//! Per-session network conditions in the call dataset are drawn from a
//! mixture over access technologies. Each technology specifies marginal
//! distributions for the session-mean latency, loss, jitter, and available
//! bandwidth. The presets are tuned so the *joint* dataset covers the ranges
//! the paper plots (latency 0–300 ms, loss 0–3 %+, jitter 0–10 ms+, bandwidth
//! 0.25–4 Mbps) while keeping plenty of mass inside the paper's confounder
//! reference ranges (latency 0–40 ms, loss 0–0.2 %, jitter 0–5 ms, bandwidth
//! 3–4 Mbps) so the filtered Fig. 1 analyses have well-populated bins.

use analytics::dist::{weighted_index, Dist, Sampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Access technology of a participant's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// FTTH — low latency, clean.
    Fiber,
    /// Cable broadband (DOCSIS).
    Cable,
    /// DSL.
    Dsl,
    /// Home Wi-Fi last hop over any broadband — extra jitter/loss.
    Wifi,
    /// Cellular LTE/5G.
    Lte,
    /// LEO satellite (e.g. Starlink).
    SatelliteLeo,
    /// Long-haul / congested path: high RTT but otherwise clean — this is
    /// what populates the 150–300 ms latency bins with reference-range loss,
    /// jitter, and bandwidth.
    LongHaul,
}

/// Session-mean target conditions drawn for one participant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetConditions {
    /// Mean one-way-ish latency (ms) the session should exhibit.
    pub latency_ms: f64,
    /// Mean packet-loss fraction in `[0, 1)`.
    pub loss_frac: f64,
    /// Mean jitter (ms).
    pub jitter_ms: f64,
    /// Mean available bandwidth (Mbps).
    pub bandwidth_mbps: f64,
}

/// Marginal distributions for one access type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessProfile {
    /// Latency marginal (ms).
    pub latency: Dist,
    /// Loss-fraction marginal (unitless fraction).
    pub loss: Dist,
    /// Jitter marginal (ms).
    pub jitter: Dist,
    /// Bandwidth marginal (Mbps).
    pub bandwidth: Dist,
}

impl AccessType {
    /// All access types in mixture order.
    pub const ALL: [AccessType; 7] = [
        AccessType::Fiber,
        AccessType::Cable,
        AccessType::Dsl,
        AccessType::Wifi,
        AccessType::Lte,
        AccessType::SatelliteLeo,
        AccessType::LongHaul,
    ];

    /// Default mixture weight of this access type among enterprise US calls.
    pub fn mixture_weight(self) -> f64 {
        match self {
            AccessType::Fiber => 0.18,
            AccessType::Cable => 0.28,
            AccessType::Dsl => 0.10,
            AccessType::Wifi => 0.16,
            AccessType::Lte => 0.12,
            AccessType::SatelliteLeo => 0.05,
            AccessType::LongHaul => 0.11,
        }
    }

    /// The marginal distributions for this access type.
    ///
    /// Loss marginals are log-normal with occasional heavy tails; the
    /// medians sit well below the "rare on the Internet" 2 % mark the paper
    /// cites from the QUIC deployment study.
    pub fn profile(self) -> AccessProfile {
        match self {
            AccessType::Fiber => AccessProfile {
                latency: Dist::log_normal_median(12.0, 1.5),
                loss: Dist::log_normal_median(0.0002, 3.0),
                jitter: Dist::log_normal_median(1.5, 1.7),
                bandwidth: Dist::log_normal_median(3.8, 1.25),
            },
            AccessType::Cable => AccessProfile {
                latency: Dist::log_normal_median(24.0, 1.6),
                loss: Dist::log_normal_median(0.0006, 3.5),
                jitter: Dist::log_normal_median(3.0, 1.8),
                bandwidth: Dist::log_normal_median(3.5, 1.35),
            },
            AccessType::Dsl => AccessProfile {
                latency: Dist::log_normal_median(42.0, 1.6),
                loss: Dist::log_normal_median(0.0012, 3.5),
                jitter: Dist::log_normal_median(5.0, 1.8),
                bandwidth: Dist::log_normal_median(2.1, 1.5),
            },
            AccessType::Wifi => AccessProfile {
                latency: Dist::log_normal_median(32.0, 1.8),
                loss: Dist::log_normal_median(0.004, 3.5),
                jitter: Dist::log_normal_median(7.0, 1.9),
                bandwidth: Dist::log_normal_median(3.0, 1.6),
            },
            AccessType::Lte => AccessProfile {
                latency: Dist::log_normal_median(68.0, 1.9),
                loss: Dist::log_normal_median(0.005, 3.5),
                jitter: Dist::log_normal_median(9.0, 1.9),
                bandwidth: Dist::log_normal_median(2.4, 1.8),
            },
            AccessType::SatelliteLeo => AccessProfile {
                latency: Dist::log_normal_median(48.0, 1.7),
                loss: Dist::log_normal_median(0.006, 3.5),
                jitter: Dist::log_normal_median(10.0, 1.9),
                bandwidth: Dist::log_normal_median(2.8, 1.8),
            },
            AccessType::LongHaul => AccessProfile {
                latency: Dist::log_normal_median(170.0, 1.55),
                loss: Dist::log_normal_median(0.0006, 3.0),
                jitter: Dist::log_normal_median(3.0, 1.6),
                bandwidth: Dist::log_normal_median(3.4, 1.3),
            },
        }
    }

    /// Draw one access type from the default mixture.
    pub fn sample_mixture<R: Rng + ?Sized>(rng: &mut R) -> AccessType {
        let weights: Vec<f64> = AccessType::ALL.iter().map(|a| a.mixture_weight()).collect();
        let idx = weighted_index(rng, &weights).expect("mixture weights are positive");
        AccessType::ALL[idx]
    }

    /// Draw session-mean target conditions for this access type. Values are
    /// clamped to physically sensible ranges (loss < 30 %, bandwidth ≥ 0.1
    /// Mbps, latency ≥ 1 ms).
    pub fn sample_targets<R: Rng + ?Sized>(self, rng: &mut R) -> TargetConditions {
        let p = self.profile();
        TargetConditions {
            latency_ms: p.latency.sample(rng).clamp(1.0, 800.0),
            loss_frac: p.loss.sample(rng).clamp(0.0, 0.3),
            jitter_ms: p.jitter.sample(rng).clamp(0.0, 120.0),
            bandwidth_mbps: p.bandwidth.sample(rng).clamp(0.1, 20.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn mixture_weights_sum_to_one() {
        let total: f64 = AccessType::ALL.iter().map(|a| a.mixture_weight()).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn targets_within_physical_bounds() {
        let mut r = rng();
        for access in AccessType::ALL {
            for _ in 0..500 {
                let t = access.sample_targets(&mut r);
                assert!((1.0..=800.0).contains(&t.latency_ms));
                assert!((0.0..=0.3).contains(&t.loss_frac));
                assert!((0.0..=120.0).contains(&t.jitter_ms));
                assert!((0.1..=20.0).contains(&t.bandwidth_mbps));
            }
        }
    }

    #[test]
    fn mixture_covers_paper_plot_ranges() {
        // The joint dataset must populate the extremes of every Fig. 1 axis.
        let mut r = rng();
        let mut lat_hi = 0usize; // latency in 250–300 ms
        let mut loss_hi = 0usize; // loss >= 2 %
        let mut jit_hi = 0usize; // jitter >= 10 ms
        let mut bw_lo = 0usize; // bandwidth <= 1 Mbps
        let n = 60_000;
        for _ in 0..n {
            let access = AccessType::sample_mixture(&mut r);
            let t = access.sample_targets(&mut r);
            if (250.0..=300.0).contains(&t.latency_ms) {
                lat_hi += 1;
            }
            if t.loss_frac >= 0.02 {
                loss_hi += 1;
            }
            if t.jitter_ms >= 10.0 {
                jit_hi += 1;
            }
            if t.bandwidth_mbps <= 1.0 {
                bw_lo += 1;
            }
        }
        assert!(lat_hi > n / 400, "high-latency sessions too rare: {lat_hi}");
        assert!(loss_hi > n / 400, "lossy sessions too rare: {loss_hi}");
        assert!(jit_hi > n / 200, "jittery sessions too rare: {jit_hi}");
        assert!(bw_lo > n / 400, "low-bandwidth sessions too rare: {bw_lo}");
    }

    #[test]
    fn reference_ranges_are_well_populated() {
        // The paper's confounder filter needs joint mass: latency 0–40 ms,
        // loss 0–0.2 %, jitter 0–5 ms, bandwidth 3–4 Mbps.
        let mut r = rng();
        let n = 60_000;
        let mut in_ref = 0usize;
        for _ in 0..n {
            let access = AccessType::sample_mixture(&mut r);
            let t = access.sample_targets(&mut r);
            if t.latency_ms <= 40.0
                && t.loss_frac <= 0.002
                && t.jitter_ms <= 5.0
                && (3.0..=4.0).contains(&t.bandwidth_mbps)
            {
                in_ref += 1;
            }
        }
        assert!(
            in_ref > n / 50,
            "reference-range sessions too rare: {in_ref}/{n}"
        );
    }

    #[test]
    fn long_haul_is_high_latency_but_clean() {
        let mut r = rng();
        let mut lat = Vec::new();
        let mut loss = Vec::new();
        for _ in 0..5000 {
            let t = AccessType::LongHaul.sample_targets(&mut r);
            lat.push(t.latency_ms);
            loss.push(t.loss_frac);
        }
        assert!(analytics::median(&lat).unwrap() > 120.0);
        assert!(analytics::median(&loss).unwrap() < 0.002);
    }

    #[test]
    fn mixture_sampler_hits_every_type() {
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(format!("{:?}", AccessType::sample_mixture(&mut r)));
        }
        assert_eq!(seen.len(), AccessType::ALL.len());
    }
}
