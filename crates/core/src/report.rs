//! Plain-text and CSV rendering of analysis results.
//!
//! The bench binaries regenerate each figure as text (for eyeballing) and
//! CSV (for plotting); both renderers live here so examples, benches, and
//! EXPERIMENTS.md share one formatting path.

use crate::correlate::Grid2d;
use crate::fulcrum::MonthlyPoint;
use analytics::binning::BinnedCurve;
use std::fmt::Write as _;

/// Render a curve as an aligned text table.
pub fn curve_table(title: &str, x_label: &str, y_label: &str, curve: &BinnedCurve) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "{x_label:>14} {y_label:>14} {:>8}", "n");
    for ((x, y), n) in curve.xs.iter().zip(&curve.ys).zip(&curve.counts) {
        match y {
            Some(y) => {
                let _ = writeln!(out, "{x:>14.2} {y:>14.2} {n:>8}");
            }
            None => {
                let _ = writeln!(out, "{x:>14.2} {:>14} {n:>8}", "-");
            }
        }
    }
    out
}

/// Render several named curves as CSV sharing an x column (curves must share
/// bin layout; shorter curves pad with empty cells).
pub fn curves_csv(x_label: &str, curves: &[(&str, &BinnedCurve)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for (name, _) in curves {
        let _ = write!(out, ",{name}");
    }
    let _ = writeln!(out);
    let rows = curves.iter().map(|(_, c)| c.xs.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = curves
            .iter()
            .find_map(|(_, c)| c.xs.get(i))
            .copied()
            .unwrap_or(f64::NAN);
        let _ = write!(out, "{x:.3}");
        for (_, c) in curves {
            match c.ys.get(i).copied().flatten() {
                Some(y) => {
                    let _ = write!(out, ",{y:.3}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a 2-D grid as a text heat table (rows = y bins, columns = x bins).
pub fn grid_table(title: &str, grid: &Grid2d) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:>10}", "y\\x");
    for xi in 0..grid.x.bins {
        let _ = write!(out, "{:>9.0}", grid.x.mid(xi));
    }
    let _ = writeln!(out);
    for (yi, row) in grid.values.iter().enumerate() {
        let _ = write!(out, "{:>10.2}", grid.y.mid(yi));
        for v in row {
            match v {
                Some(v) => {
                    let _ = write!(out, "{v:>9.1}");
                }
                None => {
                    let _ = write!(out, "{:>9}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the Fig. 7 monthly series as an aligned table.
pub fn fig7_table(series: &[MonthlyPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>7} {:>9} {:>12} {:>10}",
        "month", "reports", "median", "med(95%)", "med(90%)", "Pos", "launches", "users", "model"
    );
    for p in series {
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>10} {:>10} {:>10} {:>7} {:>9} {:>12} {:>10.1}",
            p.month.to_string(),
            p.reports,
            fmt_opt(p.median_down),
            fmt_opt(p.median_down_95),
            fmt_opt(p.median_down_90),
            match p.pos_score {
                Some(v) => format!("{v:.2}"),
                None => "-".to_string(),
            },
            p.launches,
            match p.reported_users {
                Some(u) => format!("{:.0}K", u / 1000.0),
                None => "-".to_string(),
            },
            p.model_median,
        );
    }
    out
}

/// Render the Fig. 7 series as CSV.
pub fn fig7_csv(series: &[MonthlyPoint]) -> String {
    let mut out = String::from(
        "month,reports,median_down,median_95,median_90,pos,launches,reported_users,model_median\n",
    );
    for p in series {
        let opt = |v: Option<f64>| v.map(|v| format!("{v:.3}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.3}",
            p.month,
            p.reports,
            opt(p.median_down),
            opt(p.median_down_95),
            opt(p.median_down_90),
            opt(p.pos_score),
            p.launches,
            opt(p.reported_users),
            p.model_median,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytics::binning::{BinSpec, Binner};

    fn curve() -> BinnedCurve {
        let mut b = Binner::new(BinSpec::new(0.0, 100.0, 4).unwrap());
        b.record(10.0, 90.0);
        b.record(60.0, 70.0);
        b.curve_mean(1)
    }

    #[test]
    fn curve_table_renders_values_and_gaps() {
        let t = curve_table("Fig X", "latency", "micon", &curve());
        assert!(t.contains("# Fig X"));
        assert!(t.contains("90.00"));
        assert!(t.contains('-'), "thin bins render as dashes");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = curve();
        let csv = curves_csv("x", &[("a", &c), ("b", &c)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "x,a,b");
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("90.000"));
    }

    #[test]
    fn grid_table_renders() {
        use conference::records::{CallDataset, EngagementMetric};
        // Tiny grid via the public API needs data; fabricate via correlate on
        // an empty dataset is an error, so build the struct directly.
        let grid = Grid2d {
            x: BinSpec::new(0.0, 300.0, 2).unwrap(),
            y: BinSpec::new(0.0, 3.0, 2).unwrap(),
            values: vec![vec![Some(100.0), None], vec![Some(55.5), Some(48.1)]],
            counts: vec![vec![10, 0], vec![5, 4]],
        };
        let t = grid_table("Fig 2", &grid);
        assert!(t.contains("Fig 2"));
        assert!(t.contains("100.0"));
        assert!(t.contains("48.1"));
        let _ = (CallDataset::default(), EngagementMetric::Presence); // imports used
    }

    #[test]
    fn fig7_renderers() {
        use analytics::time::Month;
        let p = MonthlyPoint {
            month: Month::new(2021, 9).unwrap(),
            reports: 70,
            median_down: Some(93.2),
            median_down_95: Some(92.8),
            median_down_90: Some(94.0),
            pos_score: Some(0.71),
            launches: 1,
            reported_users: Some(90_000.0),
            model_median: 92.0,
        };
        let t = fig7_table(std::slice::from_ref(&p));
        assert!(t.contains("Sep'21"));
        assert!(t.contains("93.2"));
        assert!(t.contains("90K"));
        let csv = fig7_csv(&[p]);
        assert!(csv.starts_with("month,"));
        assert!(csv.contains("0.710"));
    }
}
