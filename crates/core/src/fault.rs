//! Deterministic fault injection on a virtual clock.
//!
//! The paper's §5 service is fed by inherently flaky sources — conferencing
//! telemetry exports, forum crawls, OCR'd screenshots. To test how the
//! ingestion pipeline behaves under that flakiness *deterministically*, this
//! module provides:
//!
//! * a [`Clock`] abstraction with a [`VirtualClock`] implementation whose
//!   `sleep_ms` advances an atomic counter instead of blocking, so
//!   backoff/cooldown logic is exercised without a single wall-clock sleep;
//! * a seeded [`FaultPlan`] that decides, purely from `hash(seed, item
//!   index)`, which fault (if any) strikes each item a source yields; and
//! * a [`FaultInjector`] that wraps any [`Source`] and applies the plan.
//!
//! Because every fault is a pure function of `(seed, index)` and faults are
//! decided in the single-threaded producer, an injected run is bit-identical
//! across worker counts — the property `tests/ingest_resilience.rs` pins.

use crate::source::{RawItem, Source, SourceError};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A time source the ingestion pipeline sleeps against. Implementations
/// must be cheap and thread-safe; the pipeline only ever needs monotonic
/// milliseconds.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since an arbitrary epoch.
    fn now_ms(&self) -> u64;
    /// Advance time by `ms`. A real clock blocks; the virtual clock just
    /// bumps its counter.
    fn sleep_ms(&self, ms: u64);
}

/// A virtual clock: `sleep_ms` advances an atomic counter and returns
/// immediately. All retry/backoff/breaker tests run on this — they never
/// touch wall time.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// A clock starting at `ms`.
    pub fn at(ms: u64) -> VirtualClock {
        VirtualClock {
            now: AtomicU64::new(ms),
        }
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

/// A wall clock for production use: `now_ms` reads a process-monotonic
/// instant and `sleep_ms` actually blocks the calling thread.
#[derive(Debug)]
pub struct WallClock {
    start: std::time::Instant,
}

impl WallClock {
    /// A clock anchored at construction time.
    pub fn new() -> WallClock {
        WallClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// The fault chosen for one item index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The item silently never arrives (a lost export, a deleted post).
    Drop,
    /// The item arrives after a delay (slow crawl); the injector advances
    /// the clock, then yields it.
    Delay,
    /// The item arrives mangled — a permanent, non-retryable error carrying
    /// the corrupt payload for the dead-letter queue.
    Corrupt,
    /// The fetch fails transiently a bounded number of times, then succeeds
    /// (a flaky endpoint that recovers under retry).
    Transient,
    /// The item sits inside a hard outage window: every fetch attempt fails
    /// until the caller gives up.
    Burst,
    /// The item is replaced by a poison pill that panics the normaliser.
    Poison,
}

/// A seeded, declarative description of which faults strike a stream.
///
/// Each rate is an independent probability in `[0, 1]` evaluated per item
/// index from `hash(seed, index)` — no RNG state is threaded through the
/// stream, so the decision for item `i` never depends on what happened to
/// items `0..i`. Explicit index-pinned faults (poison pills, the burst
/// window, the disconnect point) take precedence over the sampled rates.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the per-index fault draws.
    pub seed: u64,
    /// Probability an item is silently dropped.
    pub drop_rate: f64,
    /// Probability an item fails transiently before succeeding.
    pub transient_rate: f64,
    /// How many times a transient-faulted item fails before it succeeds.
    pub transient_failures: u32,
    /// Probability an item is delayed by [`FaultPlan::delay_ms`].
    pub delay_rate: f64,
    /// Delay applied to delayed items, in clock milliseconds.
    pub delay_ms: u64,
    /// Probability an item arrives corrupt (permanent error).
    pub corrupt_rate: f64,
    /// Item indices replaced by poison pills.
    pub poison_indices: Vec<usize>,
    /// A hard outage window: every fetch of an item in this index range
    /// fails, on every attempt, until the caller exhausts its retries.
    pub burst: Option<Range<usize>>,
    /// Index at which the stream disconnects mid-flight; everything from
    /// this index on is lost.
    pub disconnect_at: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn healthy() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with the given seed; chain the `with_*` builders to
    /// add faults.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_failures: 1,
            delay_ms: 50,
            ..FaultPlan::default()
        }
    }

    /// Set the silent-drop probability.
    pub fn with_drops(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate;
        self
    }

    /// Set the transient-failure probability and per-item failure count.
    pub fn with_transient(mut self, rate: f64, failures: u32) -> FaultPlan {
        self.transient_rate = rate;
        self.transient_failures = failures;
        self
    }

    /// Set the delay probability and per-item delay.
    pub fn with_delays(mut self, rate: f64, delay_ms: u64) -> FaultPlan {
        self.delay_rate = rate;
        self.delay_ms = delay_ms;
        self
    }

    /// Set the corruption probability.
    pub fn with_corruption(mut self, rate: f64) -> FaultPlan {
        self.corrupt_rate = rate;
        self
    }

    /// Replace the item at `index` with a poison pill.
    pub fn with_poison(mut self, index: usize) -> FaultPlan {
        self.poison_indices.push(index);
        self
    }

    /// Declare a hard outage window over an index range.
    pub fn with_burst(mut self, window: Range<usize>) -> FaultPlan {
        self.burst = Some(window);
        self
    }

    /// Disconnect the stream at `index`.
    pub fn with_disconnect(mut self, index: usize) -> FaultPlan {
        self.disconnect_at = Some(index);
        self
    }

    /// The fault (if any) striking item `index`. Pure in `(self, index)`.
    /// The disconnect point is handled by the injector, not here, because
    /// it ends the stream rather than afflicting one item.
    pub fn fault_for(&self, index: usize) -> Option<Fault> {
        if self.poison_indices.contains(&index) {
            return Some(Fault::Poison);
        }
        if let Some(burst) = &self.burst {
            if burst.contains(&index) {
                return Some(Fault::Burst);
            }
        }
        let i = index as u64;
        if u01(mix(self.seed, i, 0x01)) < self.drop_rate {
            return Some(Fault::Drop);
        }
        if u01(mix(self.seed, i, 0x02)) < self.corrupt_rate {
            return Some(Fault::Corrupt);
        }
        if u01(mix(self.seed, i, 0x03)) < self.transient_rate {
            return Some(Fault::Transient);
        }
        if u01(mix(self.seed, i, 0x04)) < self.delay_rate {
            return Some(Fault::Delay);
        }
        None
    }
}

/// SplitMix64-style avalanche of `(seed, index, salt)` — the whole
/// deterministic-fault story rests on this being a pure function.
pub(crate) fn mix(seed: u64, index: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)`.
pub(crate) fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// An item the injector has faulted and is holding back until its failure
/// budget is spent (or forever, inside a burst window).
struct Held {
    item: RawItem,
    failures_left: u32,
    always_fail: bool,
}

/// A [`Source`] wrapper that applies a [`FaultPlan`] to the stream of an
/// inner source. Delay faults advance the supplied [`Clock`].
pub struct FaultInjector<S> {
    inner: S,
    plan: FaultPlan,
    clock: Arc<dyn Clock>,
    /// Items pulled from the inner source so far — the index the plan's
    /// draws key on.
    index: usize,
    held: Option<Held>,
    dropped: usize,
    disconnected: bool,
}

impl<S: Source> FaultInjector<S> {
    /// Wrap `inner` with `plan`, sleeping delays against `clock`.
    pub fn new(inner: S, plan: FaultPlan, clock: Arc<dyn Clock>) -> FaultInjector<S> {
        FaultInjector {
            inner,
            plan,
            clock,
            index: 0,
            held: None,
            dropped: 0,
            disconnected: false,
        }
    }
}

impl<S: Source> Source for FaultInjector<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<Result<RawItem, SourceError>> {
        if self.disconnected {
            return None;
        }
        // A held item fails until its budget is spent, then succeeds. Burst
        // items never recover — the caller's retry bound is the way out.
        if let Some(held) = &mut self.held {
            if held.always_fail {
                return Some(Err(SourceError::Transient {
                    reason: "burst outage window",
                }));
            }
            if held.failures_left > 0 {
                held.failures_left -= 1;
                return Some(Err(SourceError::Transient {
                    reason: "transient fetch failure",
                }));
            }
            let held = self.held.take().expect("held item present");
            return Some(Ok(held.item));
        }
        loop {
            if self.plan.disconnect_at == Some(self.index) {
                self.disconnected = true;
                return Some(Err(SourceError::Disconnected));
            }
            let item = match self.inner.next_item() {
                None => return None,
                // Faults of an already-faulty inner source pass through.
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(item)) => item,
            };
            let i = self.index;
            self.index += 1;
            match self.plan.fault_for(i) {
                None => return Some(Ok(item)),
                Some(Fault::Drop) => {
                    self.dropped += 1;
                    continue;
                }
                Some(Fault::Delay) => {
                    self.clock.sleep_ms(self.plan.delay_ms);
                    return Some(Ok(item));
                }
                Some(Fault::Poison) => {
                    return Some(Ok(RawItem::Poison("injected poison pill")));
                }
                Some(Fault::Corrupt) => {
                    return Some(Err(SourceError::Permanent {
                        reason: "corrupt payload",
                        item: Some(Box::new(item)),
                    }));
                }
                Some(Fault::Transient) => {
                    // First attempt fails now; `transient_failures - 1`
                    // more fail on subsequent calls, then the item arrives.
                    self.held = Some(Held {
                        item,
                        failures_left: self.plan.transient_failures.saturating_sub(1),
                        always_fail: false,
                    });
                    return Some(Err(SourceError::Transient {
                        reason: "transient fetch failure",
                    }));
                }
                Some(Fault::Burst) => {
                    self.held = Some(Held {
                        item,
                        failures_left: 0,
                        always_fail: true,
                    });
                    return Some(Err(SourceError::Transient {
                        reason: "burst outage window",
                    }));
                }
            }
        }
    }

    fn take_pending(&mut self) -> Option<RawItem> {
        self.held.take().map(|h| h.item)
    }

    fn dropped(&self) -> usize {
        self.dropped
    }

    fn remaining_hint(&self) -> usize {
        self.inner.remaining_hint() + usize::from(self.held.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ItemSource;
    use conference::dataset::{generate, DatasetConfig};

    fn items(n: usize) -> Vec<RawItem> {
        let dataset = generate(&DatasetConfig::small(n.max(8), 9));
        assert!(dataset.len() >= n, "generator yields one session per seat");
        dataset
            .sessions
            .into_iter()
            .take(n)
            .map(|s| RawItem::Session(Box::new(s)))
            .collect()
    }

    #[test]
    fn virtual_clock_advances_without_sleeping() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.sleep_ms(250);
        clock.sleep_ms(50);
        assert_eq!(clock.now_ms(), 300);
    }

    #[test]
    fn fault_draws_are_pure_in_seed_and_index() {
        let plan = FaultPlan::seeded(42)
            .with_drops(0.2)
            .with_transient(0.2, 2)
            .with_corruption(0.1);
        for i in 0..500 {
            assert_eq!(plan.fault_for(i), plan.fault_for(i), "index {i}");
        }
        let other = FaultPlan {
            seed: 43,
            ..plan.clone()
        };
        assert!(
            (0..500).any(|i| plan.fault_for(i) != other.fault_for(i)),
            "different seeds must produce different fault patterns"
        );
    }

    #[test]
    fn healthy_plan_passes_everything_through() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let mut src =
            FaultInjector::new(ItemSource::new("t", items(20)), FaultPlan::healthy(), clock);
        let mut n = 0;
        while let Some(next) = src.next_item() {
            assert!(next.is_ok());
            n += 1;
        }
        assert_eq!(n, 20);
        assert_eq!(src.dropped(), 0);
    }

    #[test]
    fn transient_item_recovers_after_its_failure_budget() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let plan = FaultPlan {
            seed: 7,
            transient_rate: 1.0,
            transient_failures: 3,
            ..FaultPlan::default()
        };
        let mut src = FaultInjector::new(ItemSource::new("t", items(1)), plan, clock);
        for attempt in 0..3 {
            match src.next_item() {
                Some(Err(SourceError::Transient { .. })) => {}
                other => panic!("attempt {attempt}: expected transient, got {other:?}"),
            }
        }
        assert!(matches!(src.next_item(), Some(Ok(_))));
        assert!(src.next_item().is_none());
    }

    #[test]
    fn burst_item_never_recovers_but_can_be_taken() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let plan = FaultPlan::seeded(7).with_burst(0..1);
        let mut src = FaultInjector::new(ItemSource::new("t", items(2)), plan, clock);
        for _ in 0..10 {
            assert!(matches!(
                src.next_item(),
                Some(Err(SourceError::Transient { .. }))
            ));
        }
        assert!(
            src.take_pending().is_some(),
            "burst item is dead-letterable"
        );
        assert!(matches!(src.next_item(), Some(Ok(_))), "stream continues");
        assert!(src.next_item().is_none());
    }

    #[test]
    fn disconnect_truncates_the_stream() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let plan = FaultPlan::seeded(7).with_disconnect(3);
        let mut src = FaultInjector::new(ItemSource::new("t", items(10)), plan, clock);
        for _ in 0..3 {
            assert!(matches!(src.next_item(), Some(Ok(_))));
        }
        assert!(matches!(
            src.next_item(),
            Some(Err(SourceError::Disconnected))
        ));
        assert!(src.next_item().is_none(), "disconnected source stays dead");
    }

    #[test]
    fn delay_advances_the_virtual_clock() {
        let clock = Arc::new(VirtualClock::new());
        let plan = FaultPlan {
            seed: 7,
            delay_rate: 1.0,
            delay_ms: 40,
            ..FaultPlan::default()
        };
        let dyn_clock: Arc<dyn Clock> = clock.clone();
        let mut src = FaultInjector::new(ItemSource::new("t", items(5)), plan, dyn_clock);
        while let Some(next) = src.next_item() {
            assert!(next.is_ok());
        }
        assert_eq!(clock.now_ms(), 5 * 40);
    }
}
