//! The unified user-signal model (§5, Fig. 8).
//!
//! USaaS consumes three families of signals:
//!
//! * **implicit** — in-session user actions from instrumented applications
//!   (the §3 conferencing telemetry);
//! * **explicit** — solicited feedback (the sampled 1–5 ratings / MOS);
//! * **social** — offline posts from public forums (§4), scored for
//!   sentiment at ingest time.
//!
//! Everything is normalised into one [`Signal`] envelope carrying a date, a
//! network hint (which network the signal pertains to), and the typed
//! payload, so the correlation engine can join across families.

use analytics::time::Date;
use conference::records::SessionRecord;
use netsim::access::AccessType;
use sentiment::analyzer::SentimentScores;
use serde::{Deserialize, Serialize};
use social::post::Post;

/// Which network a signal pertains to (the USaaS join key; the paper's
/// example query is "how do Starlink users perceive MS Teams?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkHint {
    /// A terrestrial ISP (any of the non-satellite access types).
    Terrestrial,
    /// The LEO satellite network under study.
    SatelliteLeo,
    /// Unknown / unattributed.
    Unknown,
}

impl NetworkHint {
    /// Derive the hint from a session's access technology.
    pub fn from_access(access: AccessType) -> NetworkHint {
        match access {
            AccessType::SatelliteLeo => NetworkHint::SatelliteLeo,
            _ => NetworkHint::Terrestrial,
        }
    }
}

/// An implicit signal: one conferencing session's actions + conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImplicitSignal {
    /// The full session record.
    pub session: SessionRecord,
}

/// An explicit signal: one solicited rating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplicitSignal {
    /// Star rating, 1–5.
    pub rating: u8,
    /// The session it rates.
    pub call_id: u64,
    /// The user who rated.
    pub user_id: u64,
}

/// A social signal: one post plus its sentiment scores (computed at ingest).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SocialSignal {
    /// Post text (title + body).
    pub text: String,
    /// Upvotes at capture time.
    pub upvotes: u32,
    /// Comments at capture time.
    pub comments: u32,
    /// Author country.
    pub country: &'static str,
    /// Sentiment scores of the text.
    pub sentiment: SentimentScores,
    /// OCR text of an attached screenshot, if any.
    pub screenshot_text: Option<String>,
}

/// The typed payload of a signal.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Payload {
    /// In-session user actions.
    Implicit(Box<ImplicitSignal>),
    /// Solicited feedback.
    Explicit(ExplicitSignal),
    /// Social-media post.
    Social(SocialSignal),
}

/// One normalised signal.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Signal {
    /// Day the signal was produced.
    pub date: Date,
    /// Network attribution.
    pub network: NetworkHint,
    /// Typed payload.
    pub payload: Payload,
}

/// Signal family tags (for counting / filtering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// Implicit user actions.
    Implicit,
    /// Explicit feedback.
    Explicit,
    /// Social posts.
    Social,
}

impl Signal {
    /// The family of this signal.
    pub fn kind(&self) -> SignalKind {
        match self.payload {
            Payload::Implicit(_) => SignalKind::Implicit,
            Payload::Explicit(_) => SignalKind::Explicit,
            Payload::Social(_) => SignalKind::Social,
        }
    }

    /// Normalise a conferencing session into signals: always one implicit
    /// signal, plus an explicit signal when the session carried a rating.
    pub fn from_session(session: &SessionRecord) -> Vec<Signal> {
        let network = NetworkHint::from_access(session.access);
        let mut out = vec![Signal {
            date: session.date,
            network,
            payload: Payload::Implicit(Box::new(ImplicitSignal {
                session: session.clone(),
            })),
        }];
        if let Some(rating) = session.rating {
            out.push(Signal {
                date: session.date,
                network,
                payload: Payload::Explicit(ExplicitSignal {
                    rating,
                    call_id: session.call_id,
                    user_id: session.user_id,
                }),
            });
        }
        out
    }

    /// Normalise a forum post into a social signal, scoring sentiment with
    /// the given analyzer.
    pub fn from_post(post: &Post, analyzer: &sentiment::analyzer::SentimentAnalyzer) -> Signal {
        let text = post.text();
        Signal {
            date: post.date,
            // Posts on the Starlink forum pertain to the LEO network.
            network: NetworkHint::SatelliteLeo,
            payload: Payload::Social(SocialSignal {
                sentiment: analyzer.score(&text),
                text,
                upvotes: post.upvotes,
                comments: post.comments,
                country: post.country,
                screenshot_text: post.screenshot.as_ref().map(|s| s.ocr_text.clone()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};
    use sentiment::analyzer::SentimentAnalyzer;

    #[test]
    fn sessions_become_signals() {
        let ds = generate(&DatasetConfig::small(30, 77));
        let mut implicit = 0;
        let mut explicit = 0;
        for s in &ds.sessions {
            for sig in Signal::from_session(s) {
                match sig.kind() {
                    SignalKind::Implicit => implicit += 1,
                    SignalKind::Explicit => explicit += 1,
                    SignalKind::Social => panic!("no social signals from sessions"),
                }
                assert_eq!(sig.date, s.date);
            }
        }
        assert_eq!(implicit, ds.len());
        assert_eq!(explicit, ds.rated_sessions().count());
    }

    #[test]
    fn network_hint_from_access() {
        assert_eq!(
            NetworkHint::from_access(AccessType::SatelliteLeo),
            NetworkHint::SatelliteLeo
        );
        assert_eq!(
            NetworkHint::from_access(AccessType::Cable),
            NetworkHint::Terrestrial
        );
    }

    #[test]
    fn posts_become_social_signals() {
        use social::generator::{generate as gen_forum, ForumConfig};
        let mut cfg = ForumConfig::default();
        cfg.end = cfg.start.offset(13);
        cfg.authors = 300;
        let forum = gen_forum(&cfg);
        assert!(!forum.is_empty());
        let analyzer = SentimentAnalyzer::default();
        let sig = Signal::from_post(&forum.posts[0], &analyzer);
        assert_eq!(sig.kind(), SignalKind::Social);
        assert_eq!(sig.network, NetworkHint::SatelliteLeo);
        if let Payload::Social(s) = &sig.payload {
            let sum = s.sentiment.positive + s.sentiment.negative + s.sentiment.neutral;
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(!s.text.is_empty());
        } else {
            panic!("expected social payload");
        }
    }
}
