//! Social outage detection (Fig. 6) with ground-truth scoring.
//!
//! The paper's recipe, §4.1: build a keyword dictionary, filter threads
//! containing the keywords, **drop threads whose sentiment is positive or
//! neutral** (to avoid false positives), and plot day-wise keyword
//! occurrences. Spikes mark outages; the two press-covered incidents
//! dominate, and *"numerous shorter peaks … correspond to local transient
//! outages. Most of these outages are not publicly reported."*
//!
//! Because our corpus is simulated against a ground-truth outage timeline,
//! this module additionally *scores* the detector — precision/recall that
//! the paper could not compute on real Reddit data.

use analytics::time::Date;
use analytics::timeseries::{DailySeries, Peak};
use analytics::AnalyticsError;
use sentiment::analyzer::SentimentAnalyzer;
use sentiment::corpus::{CompiledDict, TokenCorpus};
use sentiment::keywords::KeywordDictionary;
use serde::{Deserialize, Serialize};
use social::post::Forum;
use starlink::outages::Outage;

/// Configuration of the outage detector.
#[derive(Debug, Clone)]
pub struct OutageDetector {
    /// Keyword dictionary (defaults to the built-in outage dictionary).
    pub dictionary: KeywordDictionary,
    /// Sentiment analyzer used for the negative filter.
    pub analyzer: SentimentAnalyzer,
    /// Require negative sentiment (the paper's false-positive filter).
    /// Disable for the ablation bench.
    pub negative_filter: bool,
    /// Robust z-score a day must reach to be flagged.
    pub min_peak_score: f64,
    /// Days around a stronger peak that are suppressed.
    pub refractory_days: i32,
}

impl Default for OutageDetector {
    fn default() -> OutageDetector {
        OutageDetector {
            dictionary: KeywordDictionary::outages(),
            analyzer: SentimentAnalyzer::default(),
            negative_filter: true,
            min_peak_score: 6.0,
            refractory_days: 2,
        }
    }
}

/// One detected outage candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectedOutage {
    /// Flagged day.
    pub date: Date,
    /// Keyword occurrences that day.
    pub occurrences: f64,
    /// Robust z-score of the spike.
    pub score: f64,
}

/// Detection quality vs the ground-truth timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionScore {
    /// Detections matching a true outage within ± 1 day.
    pub true_positives: usize,
    /// Detections with no matching outage.
    pub false_positives: usize,
    /// Major outages that went undetected.
    pub missed_major: usize,
    /// Precision in `[0, 1]`.
    pub precision: f64,
    /// Recall over *major* outages in `[0, 1]`.
    pub major_recall: f64,
}

impl OutageDetector {
    /// The Fig. 6 series: day-wise keyword occurrences in negative posts.
    pub fn keyword_series(&self, forum: &Forum) -> Result<DailySeries, AnalyticsError> {
        let (start, end) = forum.date_range().ok_or(AnalyticsError::Empty)?;
        let mut series = DailySeries::zeros(start, end)?;
        for post in &forum.posts {
            let text = post.text();
            let hits = self.dictionary.count_matches(&text);
            if hits == 0 {
                continue;
            }
            if self.negative_filter {
                let scores = self.analyzer.score(&text);
                // "Threads with positive or neutral sentiments have been
                // filtered out."
                if scores.negative <= scores.positive || scores.negative <= scores.neutral {
                    continue;
                }
            }
            series.add(post.date, hits as f64);
        }
        Ok(series)
    }

    /// [`OutageDetector::keyword_series`] over a pre-tokenized corpus
    /// (document `i` = post `i`): the dictionary is compiled to id space
    /// once, matching and the negative-sentiment filter run as integer/
    /// vector-index loops fanned out over up to `workers` threads, and the
    /// per-day sums are accumulated in post order — identical output to the
    /// string path for every worker count (per-day additions are
    /// integer-valued, and the filter decisions are per-post).
    pub fn keyword_series_interned(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        workers: usize,
    ) -> Result<DailySeries, AnalyticsError> {
        // A corpus/forum mismatch used to assert; ingestion feeds this from
        // flaky sources now, so it surfaces as a typed error instead of a
        // panic.
        if corpus.docs() != forum.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: corpus.docs(),
                right: forum.len(),
            });
        }
        let (start, end) = forum.date_range().ok_or(AnalyticsError::Empty)?;
        let mut series = DailySeries::zeros(start, end)?;
        let dict = CompiledDict::compile(&self.dictionary, corpus.vocab());
        let parts = sentiment::corpus::par_map_ranges(corpus.docs(), workers, |range| {
            self.doc_hits_range(&dict, corpus, range)
        });
        let hits_per_post = sentiment::corpus::flatten_chunks(parts);
        for (post, hits) in forum.posts.iter().zip(hits_per_post) {
            if hits > 0 {
                series.add(post.date, hits as f64);
            }
        }
        Ok(series)
    }

    /// Filtered keyword hits for one contiguous document range: dictionary
    /// occurrences, zeroed when the negative-sentiment filter rejects the
    /// post. Per-document and independent of every other document, so the
    /// incremental outage view computes this for appended documents only
    /// and gets counts identical to a full sweep. (Vocabulary growth never
    /// changes old documents' counts: a dictionary entry that newly
    /// compiles maps to ids no old document contains.)
    pub(crate) fn doc_hits_range(
        &self,
        dict: &CompiledDict,
        corpus: &TokenCorpus,
        range: std::ops::Range<usize>,
    ) -> Vec<usize> {
        let vocab = corpus.vocab();
        let mut scratch = Vec::new();
        range
            .map(|doc| {
                let ids = corpus.doc(doc);
                let hits = dict.count_ids_with(ids, &mut scratch);
                if hits == 0 {
                    return 0;
                }
                if self.negative_filter {
                    let scores = self.analyzer.score_ids(ids, vocab);
                    // "Threads with positive or neutral sentiments have
                    // been filtered out."
                    if scores.negative <= scores.positive || scores.negative <= scores.neutral {
                        return 0;
                    }
                }
                hits
            })
            .collect()
    }

    /// Detect outage days: spikes of the keyword series.
    pub fn detect(&self, forum: &Forum) -> Result<Vec<DetectedOutage>, AnalyticsError> {
        let series = self.keyword_series(forum)?;
        Ok(Self::peaks_to_detections(
            series.peaks(self.min_peak_score, self.refractory_days),
        ))
    }

    /// [`OutageDetector::detect`] over a pre-tokenized corpus.
    pub fn detect_interned(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        workers: usize,
    ) -> Result<Vec<DetectedOutage>, AnalyticsError> {
        let series = self.keyword_series_interned(forum, corpus, workers)?;
        Ok(Self::peaks_to_detections(
            series.peaks(self.min_peak_score, self.refractory_days),
        ))
    }

    pub(crate) fn peaks_to_detections(peaks: Vec<Peak>) -> Vec<DetectedOutage> {
        peaks
            .into_iter()
            .map(|Peak { date, value, score }| DetectedOutage {
                date,
                occurrences: value,
                score,
            })
            .collect()
    }

    /// Score detections against ground truth (± 1 day matching window).
    ///
    /// Empty-input conventions (documented so the 0/0 cases are policy,
    /// not accident): with no `detections`, precision is **0.0** — an
    /// empty detector earns no credit rather than a NaN; with no major
    /// outages in `truth`, major recall is **1.0** — there was nothing to
    /// miss. Both branches are guarded below, so neither ratio ever
    /// divides by zero.
    pub fn score_against(&self, detections: &[DetectedOutage], truth: &[Outage]) -> DetectionScore {
        let matches_truth =
            |d: &DetectedOutage| truth.iter().any(|o| (o.date.days_since(d.date)).abs() <= 1);
        let true_positives = detections.iter().filter(|d| matches_truth(d)).count();
        let false_positives = detections.len() - true_positives;
        let majors: Vec<&Outage> = truth.iter().filter(|o| o.is_major()).collect();
        let missed_major = majors
            .iter()
            .filter(|o| {
                !detections
                    .iter()
                    .any(|d| (o.date.days_since(d.date)).abs() <= 1)
            })
            .count();
        let precision = if detections.is_empty() {
            0.0
        } else {
            true_positives as f64 / detections.len() as f64
        };
        let major_recall = if majors.is_empty() {
            1.0
        } else {
            (majors.len() - missed_major) as f64 / majors.len() as f64
        };
        DetectionScore {
            true_positives,
            false_positives,
            missed_major,
            precision,
            major_recall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use social::generator::{generate, ForumConfig};
    use starlink::outages::{outage_timeline, TransientOutageConfig};
    use std::sync::OnceLock;

    fn forum() -> &'static Forum {
        static F: OnceLock<Forum> = OnceLock::new();
        F.get_or_init(|| {
            generate(&ForumConfig {
                authors: 4000,
                ..ForumConfig::default()
            })
        })
    }

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn fig6_largest_spikes_are_the_press_covered_outages() {
        let det = OutageDetector::default();
        let series = det.keyword_series(forum()).unwrap();
        let mut days: Vec<(Date, f64)> = series.iter().collect();
        days.sort_by(|a, b| analytics::desc_nan_last(a.1, b.1));
        let top2: Vec<Date> = days[..2].iter().map(|(d, _)| *d).collect();
        assert!(
            top2.contains(&d(2022, 1, 7)) && top2.contains(&d(2022, 8, 30)),
            "top-2 keyword days {top2:?} (paper: Jan 7 and Aug 30 2022)"
        );
    }

    #[test]
    fn major_outages_all_detected() {
        let det = OutageDetector::default();
        let detections = det.detect(forum()).unwrap();
        let truth = outage_timeline(
            d(2021, 1, 1),
            d(2022, 12, 31),
            &TransientOutageConfig::default(),
        );
        let score = det.score_against(&detections, &truth);
        assert_eq!(
            score.missed_major, 0,
            "all three major outages must be found"
        );
        assert!(score.major_recall == 1.0);
        assert!(score.precision > 0.6, "precision {}", score.precision);
    }

    #[test]
    fn transient_outages_produce_numerous_smaller_peaks() {
        let det = OutageDetector {
            min_peak_score: 2.0,
            ..OutageDetector::default()
        };
        let detections = det.detect(forum()).unwrap();
        let majors = [d(2022, 1, 7), d(2022, 4, 22), d(2022, 8, 30)];
        let minor = detections
            .iter()
            .filter(|det| majors.iter().all(|m| (m.days_since(det.date)).abs() > 2))
            .count();
        assert!(
            minor >= 10,
            "expected many transient-outage peaks, got {minor}"
        );
    }

    #[test]
    fn negative_filter_raises_precision() {
        let with = OutageDetector::default();
        let without = OutageDetector {
            negative_filter: false,
            ..OutageDetector::default()
        };
        let s_with = with.keyword_series(forum()).unwrap();
        let s_without = without.keyword_series(forum()).unwrap();
        // The filter strictly removes mass…
        let sum_with: f64 = s_with.values().iter().sum();
        let sum_without: f64 = s_without.values().iter().sum();
        assert!(sum_with < sum_without, "{sum_with} vs {sum_without}");
        // …and what it removes is mostly non-outage chatter: detection
        // precision does not degrade.
        let truth = outage_timeline(
            d(2021, 1, 1),
            d(2022, 12, 31),
            &TransientOutageConfig::default(),
        );
        let p_with = with
            .score_against(&with.detect(forum()).unwrap(), &truth)
            .precision;
        let p_without = without
            .score_against(&without.detect(forum()).unwrap(), &truth)
            .precision;
        assert!(
            p_with + 1e-9 >= p_without,
            "filtered {p_with} vs unfiltered {p_without}"
        );
    }

    #[test]
    fn empty_forum_errors() {
        let det = OutageDetector::default();
        assert!(det.keyword_series(&Forum::default()).is_err());
    }

    #[test]
    fn score_handles_empty_detections() {
        let det = OutageDetector::default();
        let truth = outage_timeline(
            d(2022, 1, 1),
            d(2022, 12, 31),
            &TransientOutageConfig::default(),
        );
        let s = det.score_against(&[], &truth);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.missed_major, 3);
    }

    /// The empty-input conventions of [`OutageDetector::score_against`]
    /// are policy: no detections ⇒ precision 0.0 (no credit), no major
    /// outages ⇒ recall 1.0 (nothing to miss). Neither path may produce
    /// NaN from a 0/0.
    #[test]
    fn score_against_empty_inputs_are_finite() {
        use starlink::outages::OutageCause;
        let det = OutageDetector::default();
        let truth = vec![Outage {
            date: d(2022, 1, 7),
            severity: 0.9,
            countries: 20,
            duration_hours: 5.0,
            reported_in_press: true,
            cause: OutageCause::GroundSegment,
        }];
        // No detections against real truth: precision is 0.0, not NaN.
        let s = det.score_against(&[], &truth);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.major_recall, 0.0); // the one major outage was missed
        assert_eq!(s.missed_major, 1);
        // Detections against truth with no majors: recall is 1.0, not NaN.
        let minor = vec![Outage {
            severity: 0.1,
            ..truth[0]
        }];
        let dets = vec![DetectedOutage {
            date: d(2022, 1, 7),
            occurrences: 3.0,
            score: 4.0,
        }];
        let s = det.score_against(&dets, &minor);
        assert_eq!(s.major_recall, 1.0);
        assert!(s.precision.is_finite());
        // Both empty: every field finite, nothing panics.
        let s = det.score_against(&[], &[]);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.major_recall, 1.0);
    }
}
