//! Durable snapshot + journal persistence for the USaaS service.
//!
//! The paper's §5 vision is a *long-running* service accumulating user
//! signals over months — which is only real if a restart keeps them. This
//! module gives [`crate::service::UsaasService`] a crash-safe on-disk
//! life:
//!
//! * **Snapshots** (`snapshot-<seq>.snap`): a versioned, checksummed dump
//!   of the full service state — the dataset and forum, the columnar
//!   [`crate::frame::SessionFrame`], the interned
//!   [`sentiment::corpus::TokenCorpus`] (when built), the
//!   [`crate::store::SignalStore`] day by day, the accumulated health
//!   totals, and the dead-letter quarantine. Written with the classic
//!   atomic protocol: encode to `snapshot.tmp`, `fsync`, rename into
//!   place, `fsync` the directory. A reader never observes a
//!   half-written snapshot; a crash mid-write leaves the previous
//!   snapshot untouched.
//! * **Journal** (`journal.log`): an append-only log of committed ingest
//!   batches. Every [`crate::service::UsaasService::ingest_append`] run
//!   writes one framed record — accepted sessions/posts plus the run's
//!   quarantine and health deltas — *before* the in-memory commit, so
//!   recovery is `latest valid snapshot + replay of the journal tail`.
//!
//! Every snapshot and every journal record carries a CRC-32 over its
//! payload. Corruption degrades instead of panicking: a torn or corrupt
//! journal tail is truncated back to the last valid record, a corrupt
//! snapshot falls back to the previous one, and each repair is reported
//! as a warning through `ServiceHealth::recovery_warnings`.
//!
//! The byte-level conventions live in [`serde::bin`] (little-endian fixed
//! width, `f64` as IEEE-754 bits, `u64`-length-prefixed strings), chosen
//! so floats — NaN payloads and signed zeros included — survive the disk
//! **bit-identically**. That is what makes the recovery invariant
//! checkable: a recovered service answers every query byte-for-byte like
//! the service that never crashed (pinned by `tests/persist_recovery.rs`).

use crate::frame::SessionFrame;
use crate::ingest::{QuarantineEntry, QuarantineReason};
use crate::predict::FeatureSet;
use crate::service::SessionChunks;
use crate::signals::{ExplicitSignal, ImplicitSignal, NetworkHint, Payload, Signal, SocialSignal};
use crate::store::SignalStore;
use crate::views::ViewKey;
use analytics::time::Date;
use conference::platform::Platform;
use conference::records::{EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use netsim::sampler::SessionNetworkStats;
use ocr::report::Provider;
use sentiment::analyzer::SentimentScores;
use sentiment::corpus::TokenCorpus;
use serde::bin::{self, Reader, Writer};
use social::post::{Post, PostTopic, Screenshot, SentimentClass};
use starlink::speedtest::SpeedTestResult;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File-name prefix of snapshot files; the number is the journal sequence
/// the snapshot includes (`snapshot-<seq>.snap`).
const SNAPSHOT_PREFIX: &str = "snapshot-";
/// Snapshot file extension.
const SNAPSHOT_SUFFIX: &str = ".snap";
/// Temp name a snapshot is encoded under before the atomic rename.
const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// Journal file name inside a persist directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// Scratch name compaction rewrites the journal under before the atomic
/// rename onto [`JOURNAL_FILE`]. Recovery never reads this name, so a
/// crash mid-compaction leaves at worst a stray tmp next to an intact
/// journal.
const JOURNAL_TMP: &str = "journal.tmp";
/// How many snapshots to keep; older ones are pruned after a checkpoint.
const SNAPSHOTS_KEPT: usize = 2;

/// File-name prefix of differential snapshot files
/// (`diff-<base_seq>-<seq>.snap`): the delta between journal sequence
/// `base_seq` (a **full** snapshot that must exist to apply it) and `seq`.
const DIFF_PREFIX: &str = "diff-";
/// Temp name a differential snapshot is encoded under before the rename.
const DIFF_TMP: &str = "diff.tmp";
/// How many differential snapshots to keep.
const DIFFS_KEPT: usize = 2;

/// Magic leading every snapshot file.
const SNAPSHOT_MAGIC: &[u8; 8] = b"USAASNP\x01";
/// Magic leading every differential snapshot file.
const DIFF_MAGIC: &[u8; 8] = b"USAASDF\x01";
/// Differential snapshot format version. A reader that does not know the
/// version skips the diff and falls back to the full snapshot chain.
const DIFF_VERSION: u32 = 1;
/// Snapshot format version. v2 appends the materialized-view key list
/// ([`crate::views::ViewKey`]) after the signal store; v1 snapshots (no
/// key list) still load, recovering with an empty view set.
const SNAPSHOT_VERSION: u32 = 2;
/// Magic leading every journal record frame ("UJRL", little-endian).
const RECORD_MAGIC: u32 = 0x4C52_4A55;
/// Bytes of a journal record frame header: magic u32 + len u64 + crc u32.
const RECORD_HEADER: u64 = 16;

/// Persistence failure.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file failed structural validation (bad magic/version/checksum or
    /// a corrupt field); names the file and the violation.
    Corrupt {
        /// File that failed to decode.
        file: String,
        /// What was wrong with it.
        detail: String,
    },
    /// No loadable snapshot exists in the directory.
    NoSnapshot,
    /// The service was built without persistence attached.
    NotPersistent,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist I/O error: {e}"),
            PersistError::Corrupt { file, detail } => write!(f, "corrupt {file}: {detail}"),
            PersistError::NoSnapshot => write!(f, "no loadable snapshot in the persist directory"),
            PersistError::NotPersistent => write!(f, "service has no persistence attached"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Enum tags: the stable on-disk numbering of every enum in the format.
// Append-only — never reorder or reuse a tag.
// ---------------------------------------------------------------------------

pub(crate) fn platform_tag(p: Platform) -> u8 {
    match p {
        Platform::WindowsPc => 0,
        Platform::MacPc => 1,
        Platform::AndroidMobile => 2,
        Platform::IosMobile => 3,
    }
}

pub(crate) fn platform_from_tag(tag: u8) -> Result<Platform, bin::Error> {
    Ok(match tag {
        0 => Platform::WindowsPc,
        1 => Platform::MacPc,
        2 => Platform::AndroidMobile,
        3 => Platform::IosMobile,
        _ => return Err(bin::Error::Corrupt("unknown platform tag")),
    })
}

pub(crate) fn access_tag(a: AccessType) -> u8 {
    match a {
        AccessType::Fiber => 0,
        AccessType::Cable => 1,
        AccessType::Dsl => 2,
        AccessType::Wifi => 3,
        AccessType::Lte => 4,
        AccessType::SatelliteLeo => 5,
        AccessType::LongHaul => 6,
    }
}

pub(crate) fn access_from_tag(tag: u8) -> Result<AccessType, bin::Error> {
    Ok(match tag {
        0 => AccessType::Fiber,
        1 => AccessType::Cable,
        2 => AccessType::Dsl,
        3 => AccessType::Wifi,
        4 => AccessType::Lte,
        5 => AccessType::SatelliteLeo,
        6 => AccessType::LongHaul,
        _ => return Err(bin::Error::Corrupt("unknown access tag")),
    })
}

fn net_metric_tag(m: NetworkMetric) -> u8 {
    match m {
        NetworkMetric::LatencyMs => 0,
        NetworkMetric::LossPct => 1,
        NetworkMetric::JitterMs => 2,
        NetworkMetric::BandwidthMbps => 3,
    }
}

fn net_metric_from_tag(tag: u8) -> Result<NetworkMetric, bin::Error> {
    Ok(match tag {
        0 => NetworkMetric::LatencyMs,
        1 => NetworkMetric::LossPct,
        2 => NetworkMetric::JitterMs,
        3 => NetworkMetric::BandwidthMbps,
        _ => return Err(bin::Error::Corrupt("unknown network-metric tag")),
    })
}

fn eng_metric_tag(m: EngagementMetric) -> u8 {
    match m {
        EngagementMetric::Presence => 0,
        EngagementMetric::MicOn => 1,
        EngagementMetric::CamOn => 2,
    }
}

fn eng_metric_from_tag(tag: u8) -> Result<EngagementMetric, bin::Error> {
    Ok(match tag {
        0 => EngagementMetric::Presence,
        1 => EngagementMetric::MicOn,
        2 => EngagementMetric::CamOn,
        _ => return Err(bin::Error::Corrupt("unknown engagement-metric tag")),
    })
}

fn feature_set_tag(f: FeatureSet) -> u8 {
    match f {
        FeatureSet::NetworkOnly => 0,
        FeatureSet::EngagementOnly => 1,
        FeatureSet::Full => 2,
    }
}

fn feature_set_from_tag(tag: u8) -> Result<FeatureSet, bin::Error> {
    Ok(match tag {
        0 => FeatureSet::NetworkOnly,
        1 => FeatureSet::EngagementOnly,
        2 => FeatureSet::Full,
        _ => return Err(bin::Error::Corrupt("unknown feature-set tag")),
    })
}

/// Encode one materialized-view key (snapshot v2). Snapshots persist the
/// *keys* only — a view's accumulator is a deterministic function of
/// (key, corpus), so recovery rebuilds it instead of trusting a serialized
/// copy to match replayed state.
fn put_view_key(w: &mut Writer, key: ViewKey) {
    match key {
        ViewKey::Curve {
            sweep,
            engagement,
            bins,
        } => {
            w.put_u8(1);
            w.put_u8(net_metric_tag(sweep));
            w.put_u8(eng_metric_tag(engagement));
            w.put_u64(bins as u64);
        }
        ViewKey::Grid { engagement, bins } => {
            w.put_u8(2);
            w.put_u8(eng_metric_tag(engagement));
            w.put_u64(bins as u64);
        }
        ViewKey::Platform { sweep, engagement } => {
            w.put_u8(3);
            w.put_u8(net_metric_tag(sweep));
            w.put_u8(eng_metric_tag(engagement));
        }
        ViewKey::Mos => w.put_u8(4),
        ViewKey::Predict { features } => {
            w.put_u8(5);
            w.put_u8(feature_set_tag(features));
        }
        ViewKey::Sentiment => w.put_u8(6),
        ViewKey::Outage => w.put_u8(7),
        ViewKey::Deployment => w.put_u8(8),
        ViewKey::SpeedTrend => w.put_u8(9),
        ViewKey::EmergingTopics => w.put_u8(10),
    }
}

fn get_view_key(r: &mut Reader<'_>) -> Result<ViewKey, bin::Error> {
    Ok(match r.get_u8()? {
        // `bins` is a query parameter, not a collection length, so it is
        // read with `get_usize` — the `get_len` remaining-bytes guard does
        // not apply.
        1 => ViewKey::Curve {
            sweep: net_metric_from_tag(r.get_u8()?)?,
            engagement: eng_metric_from_tag(r.get_u8()?)?,
            bins: r.get_usize()?,
        },
        2 => ViewKey::Grid {
            engagement: eng_metric_from_tag(r.get_u8()?)?,
            bins: r.get_usize()?,
        },
        3 => ViewKey::Platform {
            sweep: net_metric_from_tag(r.get_u8()?)?,
            engagement: eng_metric_from_tag(r.get_u8()?)?,
        },
        4 => ViewKey::Mos,
        5 => ViewKey::Predict {
            features: feature_set_from_tag(r.get_u8()?)?,
        },
        6 => ViewKey::Sentiment,
        7 => ViewKey::Outage,
        8 => ViewKey::Deployment,
        9 => ViewKey::SpeedTrend,
        10 => ViewKey::EmergingTopics,
        _ => return Err(bin::Error::Corrupt("unknown view-key tag")),
    })
}

fn provider_tag(p: Provider) -> u8 {
    match p {
        Provider::Ookla => 0,
        Provider::Fast => 1,
        Provider::StarlinkApp => 2,
        Provider::MLab => 3,
    }
}

fn provider_from_tag(tag: u8) -> Result<Provider, bin::Error> {
    Ok(match tag {
        0 => Provider::Ookla,
        1 => Provider::Fast,
        2 => Provider::StarlinkApp,
        3 => Provider::MLab,
        _ => return Err(bin::Error::Corrupt("unknown provider tag")),
    })
}

fn topic_tag(t: PostTopic) -> u8 {
    match t {
        PostTopic::Experience => 0,
        PostTopic::SpeedShare => 1,
        PostTopic::Outage => 2,
        PostTopic::Availability => 3,
        PostTopic::Delivery => 4,
        PostTopic::Roaming => 5,
        PostTopic::Pricing => 6,
        PostTopic::Constellation => 7,
        PostTopic::Hardware => 8,
        PostTopic::General => 9,
    }
}

fn topic_from_tag(tag: u8) -> Result<PostTopic, bin::Error> {
    Ok(match tag {
        0 => PostTopic::Experience,
        1 => PostTopic::SpeedShare,
        2 => PostTopic::Outage,
        3 => PostTopic::Availability,
        4 => PostTopic::Delivery,
        5 => PostTopic::Roaming,
        6 => PostTopic::Pricing,
        7 => PostTopic::Constellation,
        8 => PostTopic::Hardware,
        9 => PostTopic::General,
        _ => return Err(bin::Error::Corrupt("unknown topic tag")),
    })
}

fn sentiment_class_tag(c: SentimentClass) -> u8 {
    match c {
        SentimentClass::StrongPositive => 0,
        SentimentClass::MildPositive => 1,
        SentimentClass::Neutral => 2,
        SentimentClass::MildNegative => 3,
        SentimentClass::StrongNegative => 4,
    }
}

fn sentiment_class_from_tag(tag: u8) -> Result<SentimentClass, bin::Error> {
    Ok(match tag {
        0 => SentimentClass::StrongPositive,
        1 => SentimentClass::MildPositive,
        2 => SentimentClass::Neutral,
        3 => SentimentClass::MildNegative,
        4 => SentimentClass::StrongNegative,
        _ => return Err(bin::Error::Corrupt("unknown sentiment-class tag")),
    })
}

fn network_hint_tag(h: NetworkHint) -> u8 {
    match h {
        NetworkHint::Terrestrial => 0,
        NetworkHint::SatelliteLeo => 1,
        NetworkHint::Unknown => 2,
    }
}

fn network_hint_from_tag(tag: u8) -> Result<NetworkHint, bin::Error> {
    Ok(match tag {
        0 => NetworkHint::Terrestrial,
        1 => NetworkHint::SatelliteLeo,
        2 => NetworkHint::Unknown,
        _ => return Err(bin::Error::Corrupt("unknown network-hint tag")),
    })
}

/// Resolve a decoded country code back to the `&'static str` the domain
/// types carry: interned against the generator's country list, leaked as
/// a one-off static for codes outside it (bounded by the distinct codes
/// in a snapshot, not by signal count).
fn intern_country(code: &str) -> &'static str {
    social::authors::COUNTRIES
        .iter()
        .find(|c| **c == code)
        .copied()
        .unwrap_or_else(|| Box::leak(code.to_string().into_boxed_str()))
}

// ---------------------------------------------------------------------------
// Domain-type codecs.
// ---------------------------------------------------------------------------

fn put_date(w: &mut Writer, d: Date) {
    w.put_i32(d.days());
}

fn get_date(r: &mut Reader<'_>) -> Result<Date, bin::Error> {
    Ok(Date::from_days(r.get_i32()?))
}

fn put_summary(w: &mut Writer, s: &analytics::Summary) {
    w.put_usize(s.count);
    w.put_f64(s.min);
    w.put_f64(s.mean);
    w.put_f64(s.median);
    w.put_f64(s.p95);
    w.put_f64(s.max);
}

fn get_summary(r: &mut Reader<'_>) -> Result<analytics::Summary, bin::Error> {
    Ok(analytics::Summary {
        count: r.get_usize()?,
        min: r.get_f64()?,
        mean: r.get_f64()?,
        median: r.get_f64()?,
        p95: r.get_f64()?,
        max: r.get_f64()?,
    })
}

fn put_net_stats(w: &mut Writer, n: &SessionNetworkStats) {
    put_summary(w, &n.latency_ms);
    put_summary(w, &n.loss_pct);
    put_summary(w, &n.jitter_ms);
    put_summary(w, &n.bandwidth_mbps);
    w.put_usize(n.ticks);
}

fn get_net_stats(r: &mut Reader<'_>) -> Result<SessionNetworkStats, bin::Error> {
    Ok(SessionNetworkStats {
        latency_ms: get_summary(r)?,
        loss_pct: get_summary(r)?,
        jitter_ms: get_summary(r)?,
        bandwidth_mbps: get_summary(r)?,
        ticks: r.get_usize()?,
    })
}

fn put_option_u8(w: &mut Writer, v: Option<u8>) {
    match v {
        None => w.put_u8(0),
        Some(x) => {
            w.put_u8(1);
            w.put_u8(x);
        }
    }
}

fn get_option_u8(r: &mut Reader<'_>) -> Result<Option<u8>, bin::Error> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_u8()?)),
        _ => Err(bin::Error::Corrupt("option tag not 0/1")),
    }
}

pub(crate) fn put_session(w: &mut Writer, s: &SessionRecord) {
    w.put_u64(s.call_id);
    w.put_u64(s.user_id);
    put_date(w, s.date);
    w.put_u8(s.start_hour);
    w.put_u8(platform_tag(s.platform));
    w.put_u8(access_tag(s.access));
    w.put_u16(s.meeting_size);
    w.put_u32(s.scheduled_ticks);
    w.put_u32(s.attended_ticks);
    put_net_stats(w, &s.net);
    w.put_f64(s.presence_pct);
    w.put_f64(s.mic_on_pct);
    w.put_f64(s.cam_on_pct);
    w.put_bool(s.left_early);
    put_option_u8(w, s.rating);
    w.put_f64(s.latent_quality);
    w.put_bool(s.conditioned);
}

pub(crate) fn get_session(r: &mut Reader<'_>) -> Result<SessionRecord, bin::Error> {
    Ok(SessionRecord {
        call_id: r.get_u64()?,
        user_id: r.get_u64()?,
        date: get_date(r)?,
        start_hour: r.get_u8()?,
        platform: platform_from_tag(r.get_u8()?)?,
        access: access_from_tag(r.get_u8()?)?,
        meeting_size: r.get_u16()?,
        scheduled_ticks: r.get_u32()?,
        attended_ticks: r.get_u32()?,
        net: get_net_stats(r)?,
        presence_pct: r.get_f64()?,
        mic_on_pct: r.get_f64()?,
        cam_on_pct: r.get_f64()?,
        left_early: r.get_bool()?,
        rating: get_option_u8(r)?,
        latent_quality: r.get_f64()?,
        conditioned: r.get_bool()?,
    })
}

fn put_speedtest(w: &mut Writer, t: &SpeedTestResult) {
    put_date(w, t.date);
    w.put_f64(t.downlink_mbps);
    w.put_f64(t.uplink_mbps);
    w.put_f64(t.latency_ms);
}

fn get_speedtest(r: &mut Reader<'_>) -> Result<SpeedTestResult, bin::Error> {
    Ok(SpeedTestResult {
        date: get_date(r)?,
        downlink_mbps: r.get_f64()?,
        uplink_mbps: r.get_f64()?,
        latency_ms: r.get_f64()?,
    })
}

pub(crate) fn put_post(w: &mut Writer, p: &Post) {
    w.put_u64(p.id);
    put_date(w, p.date);
    w.put_u64(p.author_id);
    w.put_str(p.country);
    w.put_str(&p.title);
    w.put_str(&p.body);
    w.put_u32(p.upvotes);
    w.put_u32(p.comments);
    match &p.screenshot {
        None => w.put_u8(0),
        Some(shot) => {
            w.put_u8(1);
            w.put_str(&shot.ocr_text);
            w.put_u8(provider_tag(shot.provider));
            put_speedtest(w, &shot.truth);
        }
    }
    w.put_u8(topic_tag(p.topic));
    w.put_u8(sentiment_class_tag(p.intended));
}

pub(crate) fn get_post(r: &mut Reader<'_>) -> Result<Post, bin::Error> {
    Ok(Post {
        id: r.get_u64()?,
        date: get_date(r)?,
        author_id: r.get_u64()?,
        country: intern_country(r.get_str()?),
        title: r.get_str()?.to_string(),
        body: r.get_str()?.to_string(),
        upvotes: r.get_u32()?,
        comments: r.get_u32()?,
        screenshot: match r.get_u8()? {
            0 => None,
            1 => Some(Screenshot {
                ocr_text: r.get_str()?.to_string(),
                provider: provider_from_tag(r.get_u8()?)?,
                truth: get_speedtest(r)?,
            }),
            _ => return Err(bin::Error::Corrupt("screenshot option tag not 0/1")),
        },
        topic: topic_from_tag(r.get_u8()?)?,
        intended: sentiment_class_from_tag(r.get_u8()?)?,
    })
}

fn put_scores(w: &mut Writer, s: &SentimentScores) {
    w.put_f64(s.positive);
    w.put_f64(s.negative);
    w.put_f64(s.neutral);
}

fn get_scores(r: &mut Reader<'_>) -> Result<SentimentScores, bin::Error> {
    Ok(SentimentScores {
        positive: r.get_f64()?,
        negative: r.get_f64()?,
        neutral: r.get_f64()?,
    })
}

fn put_signal(w: &mut Writer, s: &Signal) {
    put_date(w, s.date);
    w.put_u8(network_hint_tag(s.network));
    match &s.payload {
        Payload::Implicit(i) => {
            w.put_u8(0);
            put_session(w, &i.session);
        }
        Payload::Explicit(e) => {
            w.put_u8(1);
            w.put_u8(e.rating);
            w.put_u64(e.call_id);
            w.put_u64(e.user_id);
        }
        Payload::Social(s) => {
            w.put_u8(2);
            w.put_str(&s.text);
            w.put_u32(s.upvotes);
            w.put_u32(s.comments);
            w.put_str(s.country);
            put_scores(w, &s.sentiment);
            match &s.screenshot_text {
                None => w.put_u8(0),
                Some(t) => {
                    w.put_u8(1);
                    w.put_str(t);
                }
            }
        }
    }
}

fn get_signal(r: &mut Reader<'_>) -> Result<Signal, bin::Error> {
    let date = get_date(r)?;
    let network = network_hint_from_tag(r.get_u8()?)?;
    let payload = match r.get_u8()? {
        0 => Payload::Implicit(Box::new(ImplicitSignal {
            session: get_session(r)?,
        })),
        1 => Payload::Explicit(ExplicitSignal {
            rating: r.get_u8()?,
            call_id: r.get_u64()?,
            user_id: r.get_u64()?,
        }),
        2 => Payload::Social(SocialSignal {
            text: r.get_str()?.to_string(),
            upvotes: r.get_u32()?,
            comments: r.get_u32()?,
            country: intern_country(r.get_str()?),
            sentiment: get_scores(r)?,
            screenshot_text: match r.get_u8()? {
                0 => None,
                1 => Some(r.get_str()?.to_string()),
                _ => return Err(bin::Error::Corrupt("screenshot-text option tag not 0/1")),
            },
        }),
        _ => return Err(bin::Error::Corrupt("unknown payload tag")),
    };
    Ok(Signal {
        date,
        network,
        payload,
    })
}

pub(crate) fn put_quarantine_entry(w: &mut Writer, q: &QuarantineEntry) {
    w.put_usize(q.source_id);
    w.put_str(&q.source);
    w.put_usize(q.seq);
    w.put_u8(q.reason.tag());
    w.put_str(&q.detail);
    w.put_str(&q.item);
}

pub(crate) fn get_quarantine_entry(r: &mut Reader<'_>) -> Result<QuarantineEntry, bin::Error> {
    Ok(QuarantineEntry {
        source_id: r.get_usize()?,
        source: r.get_str()?.to_string(),
        seq: r.get_usize()?,
        reason: QuarantineReason::from_tag(r.get_u8()?)
            .ok_or(bin::Error::Corrupt("unknown quarantine-reason tag"))?,
        detail: r.get_str()?.to_string(),
        item: r.get_str()?.to_string(),
    })
}

pub(crate) fn put_string_list(w: &mut Writer, xs: &[String]) {
    w.put_u64(xs.len() as u64);
    for x in xs {
        w.put_str(x);
    }
}

pub(crate) fn get_string_list(r: &mut Reader<'_>) -> Result<Vec<String>, bin::Error> {
    let n = r.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_str()?.to_string());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Snapshot state + file I/O.
// ---------------------------------------------------------------------------

/// The service's accumulated health as persisted: the counters behind
/// `ServiceHealth` plus the durable dead-letter quarantine.
#[derive(Debug, Default, Clone)]
pub(crate) struct PersistedHealth {
    pub(crate) quarantined: usize,
    pub(crate) unfed: usize,
    pub(crate) breaker_trips: usize,
    pub(crate) open_breakers: Vec<String>,
    pub(crate) dead_letters: Vec<QuarantineEntry>,
}

impl PersistedHealth {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.quarantined);
        w.put_usize(self.unfed);
        w.put_usize(self.breaker_trips);
        put_string_list(w, &self.open_breakers);
        w.put_u64(self.dead_letters.len() as u64);
        for q in &self.dead_letters {
            put_quarantine_entry(w, q);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<PersistedHealth, bin::Error> {
        let quarantined = r.get_usize()?;
        let unfed = r.get_usize()?;
        let breaker_trips = r.get_usize()?;
        let open_breakers = get_string_list(r)?;
        let n = r.get_len()?;
        let mut dead_letters = Vec::with_capacity(n);
        for _ in 0..n {
            dead_letters.push(get_quarantine_entry(r)?);
        }
        Ok(PersistedHealth {
            quarantined,
            unfed,
            breaker_trips,
            open_breakers,
            dead_letters,
        })
    }
}

/// Borrowed view of everything a snapshot freezes — encode-side twin of
/// [`SnapshotState`], so `checkpoint` serialises straight out of the live
/// service without cloning the dataset.
pub(crate) struct SnapshotContents<'a> {
    pub(crate) epoch: u64,
    /// Journal sequence of the last record already folded into this
    /// snapshot; replay skips records with `seq <=` this.
    pub(crate) journal_seq: u64,
    pub(crate) sessions: &'a SessionChunks,
    pub(crate) posts: &'a [Post],
    pub(crate) frame: &'a SessionFrame,
    pub(crate) corpus: Option<&'a TokenCorpus>,
    pub(crate) store: &'a SignalStore,
    pub(crate) health: &'a PersistedHealth,
    /// Keys of the materialized views installed at checkpoint time, in
    /// canonical order; recovery rebuilds them deterministically.
    pub(crate) view_keys: &'a [ViewKey],
}

/// Owned, decoded snapshot — what recovery starts from.
pub(crate) struct SnapshotState {
    pub(crate) epoch: u64,
    pub(crate) journal_seq: u64,
    pub(crate) sessions: Vec<SessionRecord>,
    pub(crate) posts: Vec<Post>,
    pub(crate) frame: SessionFrame,
    pub(crate) corpus: Option<TokenCorpus>,
    pub(crate) store: SignalStore,
    pub(crate) health: PersistedHealth,
    pub(crate) view_keys: Vec<ViewKey>,
}

fn encode_snapshot(c: &SnapshotContents<'_>) -> Vec<u8> {
    let mut w = Writer::with_capacity(1 << 20);
    w.put_u64(c.epoch);
    w.put_u64(c.journal_seq);
    c.health.encode(&mut w);
    w.put_u64(c.sessions.len() as u64);
    for s in c.sessions.iter() {
        put_session(&mut w, s);
    }
    w.put_u64(c.posts.len() as u64);
    for p in c.posts {
        put_post(&mut w, p);
    }
    c.frame.encode_bin(&mut w);
    match c.corpus {
        None => w.put_u8(0),
        Some(corpus) => {
            w.put_u8(1);
            corpus.encode_bin(&mut w);
        }
    }
    w.put_u64(c.store.day_count() as u64);
    c.store.for_each_day(|date, signals| {
        put_date(&mut w, date);
        w.put_u64(signals.len() as u64);
        for s in signals {
            put_signal(&mut w, s);
        }
    });
    // v2 tail: the materialized-view key list. Appended last so the v1
    // prefix of the payload is unchanged.
    w.put_u64(c.view_keys.len() as u64);
    for &key in c.view_keys {
        put_view_key(&mut w, key);
    }
    w.into_bytes()
}

fn decode_snapshot(payload: &[u8], version: u32) -> Result<SnapshotState, bin::Error> {
    let mut r = Reader::new(payload);
    let epoch = r.get_u64()?;
    let journal_seq = r.get_u64()?;
    let health = PersistedHealth::decode(&mut r)?;
    let n_sessions = r.get_len()?;
    let mut sessions = Vec::with_capacity(n_sessions);
    for _ in 0..n_sessions {
        sessions.push(get_session(&mut r)?);
    }
    let n_posts = r.get_len()?;
    let mut posts = Vec::with_capacity(n_posts);
    for _ in 0..n_posts {
        posts.push(get_post(&mut r)?);
    }
    let frame = SessionFrame::decode_bin(&mut r)?;
    if frame.len() != sessions.len() {
        return Err(bin::Error::Corrupt("frame length disagrees with sessions"));
    }
    let corpus = match r.get_u8()? {
        0 => None,
        1 => Some(TokenCorpus::decode_bin(&mut r)?),
        _ => return Err(bin::Error::Corrupt("corpus option tag not 0/1")),
    };
    let store = SignalStore::new();
    let n_days = r.get_len()?;
    for _ in 0..n_days {
        let _date = get_date(&mut r)?;
        let n_signals = r.get_len()?;
        let mut batch = Vec::with_capacity(n_signals);
        for _ in 0..n_signals {
            batch.push(get_signal(&mut r)?);
        }
        store.insert_batch(batch);
    }
    let mut view_keys = Vec::new();
    if version >= 2 {
        let n_keys = r.get_len()?;
        for _ in 0..n_keys {
            view_keys.push(get_view_key(&mut r)?);
        }
    }
    if !r.is_exhausted() {
        return Err(bin::Error::Corrupt("trailing bytes after snapshot"));
    }
    Ok(SnapshotState {
        epoch,
        journal_seq,
        sessions,
        posts,
        frame,
        corpus,
        store,
        health,
        view_keys,
    })
}

/// Path of the snapshot covering journal sequence `seq`.
fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{seq}{SNAPSHOT_SUFFIX}"))
}

/// Journal sequences of every snapshot present, descending (newest first).
pub(crate) fn snapshot_seqs(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mid) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|rest| rest.strip_suffix(SNAPSHOT_SUFFIX))
        {
            if let Ok(seq) = mid.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// Assemble a checksummed snapshot-family file: magic + version + payload
/// length + CRC-32 + payload.
pub(crate) fn frame_file(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut file_bytes = Vec::with_capacity(payload.len() + 24);
    file_bytes.extend_from_slice(magic);
    file_bytes.extend_from_slice(&version.to_le_bytes());
    file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file_bytes.extend_from_slice(&bin::crc32(payload).to_le_bytes());
    file_bytes.extend_from_slice(payload);
    file_bytes
}

/// Write `file_bytes` with the atomic tmp → fsync → rename → fsync-dir
/// protocol.
pub(crate) fn write_atomic(
    dir: &Path,
    tmp_name: &str,
    path: &Path,
    file_bytes: &[u8],
) -> std::io::Result<()> {
    let tmp = dir.join(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(file_bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}

/// Write a snapshot with the atomic tmp → fsync → rename → fsync-dir
/// protocol, then prune snapshots beyond the retention count (and any
/// differential snapshot whose base full snapshot was just pruned — such a
/// diff could never be applied again). Returns the final path.
pub(crate) fn write_snapshot(
    dir: &Path,
    contents: &SnapshotContents<'_>,
) -> Result<PathBuf, PersistError> {
    let payload = encode_snapshot(contents);
    let file_bytes = frame_file(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &payload);
    let path = snapshot_path(dir, contents.journal_seq);
    write_atomic(dir, SNAPSHOT_TMP, &path, &file_bytes)?;

    for stale in snapshot_seqs(dir)?.into_iter().skip(SNAPSHOTS_KEPT) {
        let _ = fs::remove_file(snapshot_path(dir, stale));
    }
    let kept: Vec<u64> = snapshot_seqs(dir)?;
    for (base_seq, seq) in diff_seqs(dir)? {
        if !kept.contains(&base_seq) {
            let _ = fs::remove_file(diff_path(dir, base_seq, seq));
        }
    }
    Ok(path)
}

/// Decode one snapshot file.
fn load_snapshot(path: &Path) -> Result<SnapshotState, PersistError> {
    let corrupt = |detail: String| PersistError::Corrupt {
        file: path.display().to_string(),
        detail,
    };
    let bytes = fs::read(path)?;
    if bytes.len() < 24 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic or truncated header".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    // v1 readable for upgrade-in-place: same payload minus the view-key
    // tail, which decodes to an empty view set.
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(corrupt(format!(
            "payload length {} disagrees with header {len}",
            payload.len()
        )));
    }
    if bin::crc32(payload) != crc {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    decode_snapshot(payload, version).map_err(|e| corrupt(e.to_string()))
}

// ---------------------------------------------------------------------------
// Differential snapshots.
//
// All persisted state grows append-only — sessions, posts, and every frame
// column only ever extend, and the store/health/view-key bits are either
// derivable from the tails or small. So the dirty range since the last
// full snapshot is a *suffix* per column, and a differential checkpoint
// writes exactly that: the session and post tails past the base full
// snapshot's watermarks, plus the (small) full health and view-key list.
// Applying a diff re-derives the rest the same way journal replay does:
// the frame extends from the session tail (bit-identical to a rebuild —
// the frame-extension invariant), the corpus extends from the post tail
// (id-stable), and the store inserts the tails' signals. The journal is
// never truncated by a diff, so a diff that fails to apply — missing or
// corrupt base, unknown version, watermark mismatch — degrades to the
// full-snapshot chain plus journal replay, never to data loss.
// ---------------------------------------------------------------------------

/// Borrowed view of a differential checkpoint — encode-side twin of
/// [`DiffState`]. `sessions`/`posts` are the *full* live collections; the
/// encoder writes only the suffixes past `base_rows`/`base_posts`.
pub(crate) struct DiffContents<'a> {
    pub(crate) epoch: u64,
    /// Journal sequence of the last record folded into this diff.
    pub(crate) journal_seq: u64,
    /// Journal sequence of the full base snapshot this diff extends.
    pub(crate) base_seq: u64,
    /// Session count of the base snapshot (start of the dirty suffix).
    pub(crate) base_rows: usize,
    /// Post count of the base snapshot (start of the dirty suffix).
    pub(crate) base_posts: usize,
    pub(crate) sessions: &'a SessionChunks,
    pub(crate) posts: &'a [Post],
    pub(crate) health: &'a PersistedHealth,
    pub(crate) view_keys: &'a [ViewKey],
}

/// Owned, decoded differential snapshot.
struct DiffState {
    epoch: u64,
    journal_seq: u64,
    base_seq: u64,
    base_rows: usize,
    base_posts: usize,
    sessions_tail: Vec<SessionRecord>,
    posts_tail: Vec<Post>,
    health: PersistedHealth,
    view_keys: Vec<ViewKey>,
}

fn encode_diff(c: &DiffContents<'_>) -> Vec<u8> {
    let mut w = Writer::with_capacity(1 << 16);
    w.put_u64(c.epoch);
    w.put_u64(c.journal_seq);
    w.put_u64(c.base_seq);
    w.put_u64(c.base_rows as u64);
    w.put_u64(c.base_posts as u64);
    c.health.encode(&mut w);
    let tail_rows = c.sessions.len() - c.base_rows;
    w.put_u64(tail_rows as u64);
    for s in c.sessions.iter().skip(c.base_rows) {
        put_session(&mut w, s);
    }
    let posts_tail = &c.posts[c.base_posts..];
    w.put_u64(posts_tail.len() as u64);
    for p in posts_tail {
        put_post(&mut w, p);
    }
    w.put_u64(c.view_keys.len() as u64);
    for &key in c.view_keys {
        put_view_key(&mut w, key);
    }
    w.into_bytes()
}

fn decode_diff(payload: &[u8]) -> Result<DiffState, bin::Error> {
    let mut r = Reader::new(payload);
    let epoch = r.get_u64()?;
    let journal_seq = r.get_u64()?;
    let base_seq = r.get_u64()?;
    let base_rows = r.get_usize()?;
    let base_posts = r.get_usize()?;
    let health = PersistedHealth::decode(&mut r)?;
    let n_sessions = r.get_len()?;
    let mut sessions_tail = Vec::with_capacity(n_sessions);
    for _ in 0..n_sessions {
        sessions_tail.push(get_session(&mut r)?);
    }
    let n_posts = r.get_len()?;
    let mut posts_tail = Vec::with_capacity(n_posts);
    for _ in 0..n_posts {
        posts_tail.push(get_post(&mut r)?);
    }
    let n_keys = r.get_len()?;
    let mut view_keys = Vec::with_capacity(n_keys.min(64));
    for _ in 0..n_keys {
        view_keys.push(get_view_key(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(bin::Error::Corrupt("trailing bytes after diff snapshot"));
    }
    Ok(DiffState {
        epoch,
        journal_seq,
        base_seq,
        base_rows,
        base_posts,
        sessions_tail,
        posts_tail,
        health,
        view_keys,
    })
}

/// Path of the diff extending full snapshot `base_seq` through `seq`.
fn diff_path(dir: &Path, base_seq: u64, seq: u64) -> PathBuf {
    dir.join(format!("{DIFF_PREFIX}{base_seq}-{seq}{SNAPSHOT_SUFFIX}"))
}

/// `(base_seq, seq)` of every differential snapshot present, descending by
/// `seq` (newest first).
pub(crate) fn diff_seqs(dir: &Path) -> std::io::Result<Vec<(u64, u64)>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mid) = name
            .strip_prefix(DIFF_PREFIX)
            .and_then(|rest| rest.strip_suffix(SNAPSHOT_SUFFIX))
        {
            if let Some((base, seq)) = mid.split_once('-') {
                if let (Ok(base), Ok(seq)) = (base.parse::<u64>(), seq.parse::<u64>()) {
                    seqs.push((base, seq));
                }
            }
        }
    }
    seqs.sort_unstable_by_key(|s| std::cmp::Reverse(s.1));
    Ok(seqs)
}

/// Write a differential snapshot atomically, then prune diffs beyond the
/// retention count. Returns the final path.
pub(crate) fn write_diff_snapshot(
    dir: &Path,
    contents: &DiffContents<'_>,
) -> Result<PathBuf, PersistError> {
    let payload = encode_diff(contents);
    let file_bytes = frame_file(DIFF_MAGIC, DIFF_VERSION, &payload);
    let path = diff_path(dir, contents.base_seq, contents.journal_seq);
    write_atomic(dir, DIFF_TMP, &path, &file_bytes)?;

    for (base, seq) in diff_seqs(dir)?.into_iter().skip(DIFFS_KEPT) {
        let _ = fs::remove_file(diff_path(dir, base, seq));
    }
    Ok(path)
}

/// Decode one differential snapshot file.
fn load_diff(path: &Path) -> Result<DiffState, PersistError> {
    let corrupt = |detail: String| PersistError::Corrupt {
        file: path.display().to_string(),
        detail,
    };
    let bytes = fs::read(path)?;
    if bytes.len() < 24 || &bytes[..8] != DIFF_MAGIC {
        return Err(corrupt("bad magic or truncated header".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > DIFF_VERSION {
        return Err(corrupt(format!("unsupported diff version {version}")));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(corrupt(format!(
            "payload length {} disagrees with header {len}",
            payload.len()
        )));
    }
    if bin::crc32(payload) != crc {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    decode_diff(payload).map_err(|e| corrupt(e.to_string()))
}

/// Apply a decoded diff on top of its base full snapshot, re-deriving the
/// frame, corpus, and store exactly as journal replay would: the frame
/// extends from the session tail (bit-identical to a rebuild over the
/// concatenated dataset), the corpus — when the base carried one —
/// extends from the post tail (extension preserves existing token ids),
/// and the store inserts the tails' signals. Errors when the base does not
/// match the watermarks the diff was encoded against.
fn apply_diff(
    mut base: SnapshotState,
    diff: DiffState,
    workers: usize,
) -> Result<SnapshotState, PersistError> {
    let mismatch = |detail: String| PersistError::Corrupt {
        file: format!("diff over base seq {}", diff.base_seq),
        detail,
    };
    if base.journal_seq != diff.base_seq {
        return Err(mismatch(format!(
            "base journal seq {} != expected {}",
            base.journal_seq, diff.base_seq
        )));
    }
    if base.sessions.len() != diff.base_rows || base.posts.len() != diff.base_posts {
        return Err(mismatch(format!(
            "base watermarks ({} sessions, {} posts) != expected ({}, {})",
            base.sessions.len(),
            base.posts.len(),
            diff.base_rows,
            diff.base_posts
        )));
    }

    base.frame
        .extend_from_sessions(&diff.sessions_tail, workers);
    if let Some(corpus) = &mut base.corpus {
        let posts_tail = &diff.posts_tail;
        corpus.extend_with(posts_tail.len(), workers, |i, emit| {
            for part in posts_tail[i].text_parts() {
                emit(part);
            }
        });
    }
    let analyzer = sentiment::analyzer::SentimentAnalyzer::default();
    let mut signals: Vec<Signal> = Vec::new();
    for s in &diff.sessions_tail {
        signals.extend(Signal::from_session(s));
    }
    for p in &diff.posts_tail {
        signals.push(Signal::from_post(p, &analyzer));
    }
    if !signals.is_empty() {
        base.store.insert_batch(signals);
    }
    base.sessions.extend(diff.sessions_tail);
    base.posts.extend(diff.posts_tail);
    base.epoch = diff.epoch;
    base.journal_seq = diff.journal_seq;
    base.health = diff.health;
    base.view_keys = diff.view_keys;
    Ok(base)
}

/// One recoverable on-disk state, newest first: either a full snapshot or
/// a differential one (with the base it needs).
enum StateCandidate {
    Full(u64),
    Diff { base_seq: u64, seq: u64 },
}

/// Load the newest valid persisted state — full or differential —
/// falling back candidate by candidate on corruption, an unknown diff
/// version, a missing diff base, or a watermark mismatch. Every skipped
/// candidate becomes a warning. Errors only when nothing loads at all.
pub(crate) fn load_latest_state(
    dir: &Path,
    workers: usize,
    warnings: &mut Vec<String>,
) -> Result<SnapshotState, PersistError> {
    let mut candidates: Vec<StateCandidate> = snapshot_seqs(dir)?
        .into_iter()
        .map(StateCandidate::Full)
        .chain(
            diff_seqs(dir)?
                .into_iter()
                .map(|(base_seq, seq)| StateCandidate::Diff { base_seq, seq }),
        )
        .collect();
    if candidates.is_empty() {
        return Err(PersistError::NoSnapshot);
    }
    // Newest journal coverage first; on a tie the full snapshot wins (no
    // base dependency).
    candidates.sort_by_key(|c| match *c {
        StateCandidate::Full(seq) => (std::cmp::Reverse(seq), 0),
        StateCandidate::Diff { seq, .. } => (std::cmp::Reverse(seq), 1),
    });
    for candidate in candidates {
        match candidate {
            StateCandidate::Full(seq) => match load_snapshot(&snapshot_path(dir, seq)) {
                Ok(state) => return Ok(state),
                Err(e) => warnings.push(format!(
                    "snapshot seq {seq} unusable, falling back to the previous one: {e}"
                )),
            },
            StateCandidate::Diff { base_seq, seq } => {
                let applied = load_diff(&diff_path(dir, base_seq, seq))
                    .and_then(|diff| {
                        load_snapshot(&snapshot_path(dir, base_seq)).map(|base| (base, diff))
                    })
                    .and_then(|(base, diff)| apply_diff(base, diff, workers));
                match applied {
                    Ok(state) => return Ok(state),
                    Err(e) => warnings.push(format!(
                        "diff seq {seq} (base {base_seq}) unusable, falling back: {e}"
                    )),
                }
            }
        }
    }
    Err(PersistError::NoSnapshot)
}

// ---------------------------------------------------------------------------
// Journal.
// ---------------------------------------------------------------------------

/// One committed ingest run as journaled: what was accepted, what was
/// dead-lettered, and the health deltas to fold in.
#[derive(Debug, Clone, Default)]
pub(crate) struct JournalRecord {
    /// Monotonic sequence, 1-based; independent of the epoch because a
    /// fully-quarantined run journals without committing a generation.
    pub(crate) seq: u64,
    /// Service epoch after applying this record (unchanged when the run
    /// accepted nothing).
    pub(crate) epoch_after: u64,
    pub(crate) sessions: Vec<SessionRecord>,
    pub(crate) posts: Vec<Post>,
    pub(crate) quarantined: Vec<QuarantineEntry>,
    pub(crate) unfed: usize,
    pub(crate) breaker_trips: usize,
    pub(crate) open_breakers: Vec<String>,
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.seq);
        w.put_u64(self.epoch_after);
        w.put_u64(self.sessions.len() as u64);
        for s in &self.sessions {
            put_session(&mut w, s);
        }
        w.put_u64(self.posts.len() as u64);
        for p in &self.posts {
            put_post(&mut w, p);
        }
        w.put_u64(self.quarantined.len() as u64);
        for q in &self.quarantined {
            put_quarantine_entry(&mut w, q);
        }
        w.put_usize(self.unfed);
        w.put_usize(self.breaker_trips);
        put_string_list(&mut w, &self.open_breakers);
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<JournalRecord, bin::Error> {
        let mut r = Reader::new(payload);
        let seq = r.get_u64()?;
        let epoch_after = r.get_u64()?;
        let n_sessions = r.get_len()?;
        let mut sessions = Vec::with_capacity(n_sessions);
        for _ in 0..n_sessions {
            sessions.push(get_session(&mut r)?);
        }
        let n_posts = r.get_len()?;
        let mut posts = Vec::with_capacity(n_posts);
        for _ in 0..n_posts {
            posts.push(get_post(&mut r)?);
        }
        let n_quarantined = r.get_len()?;
        let mut quarantined = Vec::with_capacity(n_quarantined);
        for _ in 0..n_quarantined {
            quarantined.push(get_quarantine_entry(&mut r)?);
        }
        let unfed = r.get_usize()?;
        let breaker_trips = r.get_usize()?;
        let open_breakers = get_string_list(&mut r)?;
        if !r.is_exhausted() {
            return Err(bin::Error::Corrupt("trailing bytes after journal record"));
        }
        Ok(JournalRecord {
            seq,
            epoch_after,
            sessions,
            posts,
            quarantined,
            unfed,
            breaker_trips,
            open_breakers,
        })
    }
}

/// Append handle on the journal file. Each [`Journal::append`] writes one
/// framed record and fsyncs, so a record is either fully durable or —
/// after a crash mid-write — a torn tail the next recovery truncates.
#[derive(Debug)]
pub(crate) struct Journal {
    file: fs::File,
}

impl Journal {
    /// Open (creating if needed) the journal for appending.
    pub(crate) fn open_append(path: &Path) -> std::io::Result<Journal> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal { file })
    }

    /// Append one record durably.
    pub(crate) fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + RECORD_HEADER as usize);
        frame.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&bin::crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_all()
    }
}

/// Read every valid journal record and repair the file: a torn or corrupt
/// tail (truncated frame, bad magic, checksum or decode failure) is cut
/// back to the last valid record boundary with `set_len`, and the repair
/// is reported as a warning. Returns the surviving records in file order.
pub(crate) fn read_and_repair_journal(
    path: &Path,
    warnings: &mut Vec<String>,
) -> Result<Vec<JournalRecord>, PersistError> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let bytes = fs::read(path)?;
    let (records, valid_len, complaint) = scan_journal(&bytes);
    if let Some(complaint) = complaint {
        warnings.push(format!(
            "journal {}: {complaint}; truncated to the last valid record ({} of {} bytes kept)",
            path.display(),
            valid_len,
            bytes.len()
        ));
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(valid_len)?;
        f.sync_all()?;
    }
    Ok(records)
}

/// Walk the journal byte stream, returning `(records, valid_len,
/// complaint)` where `valid_len` is the byte length of the valid prefix
/// and `complaint` describes why the scan stopped early (None when the
/// whole file is valid).
fn scan_journal(bytes: &[u8]) -> (Vec<JournalRecord>, u64, Option<String>) {
    let mut records = Vec::new();
    let mut pos: usize = 0;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return (records, pos as u64, None);
        }
        if remaining < RECORD_HEADER as usize {
            return (records, pos as u64, Some("torn record header".to_string()));
        }
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC {
            return (records, pos as u64, Some("bad record magic".to_string()));
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4 bytes"));
        let body_start = pos + RECORD_HEADER as usize;
        let Some(body_end) = (len as usize)
            .checked_add(body_start)
            .filter(|end| *end <= bytes.len())
        else {
            return (records, pos as u64, Some("torn record payload".to_string()));
        };
        let payload = &bytes[body_start..body_end];
        if bin::crc32(payload) != crc {
            return (
                records,
                pos as u64,
                Some("record checksum mismatch".to_string()),
            );
        }
        match JournalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                return (
                    records,
                    pos as u64,
                    Some(format!("record undecodable: {e}")),
                );
            }
        }
        pos = body_end;
    }
}

/// Byte offsets of the record boundaries in a journal file: `offsets[0] ==
/// 0` and `offsets[k]` is the end of the `k`-th valid record. Exposed so
/// crash-recovery tests (and operators) can cut a journal at exact commit
/// boundaries.
pub fn journal_record_offsets(path: &Path) -> Result<Vec<u64>, PersistError> {
    let bytes = fs::read(path)?;
    let mut offsets = vec![0u64];
    let mut pos: usize = 0;
    loop {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER as usize {
            return Ok(offsets);
        }
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC {
            return Ok(offsets);
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4 bytes"));
        let body_start = pos + RECORD_HEADER as usize;
        let Some(body_end) = (len as usize)
            .checked_add(body_start)
            .filter(|end| *end <= bytes.len())
        else {
            return Ok(offsets);
        };
        if bin::crc32(&bytes[body_start..body_end]) != crc {
            return Ok(offsets);
        }
        offsets.push(body_end as u64);
        pos = body_end;
    }
}

/// Live-journal observability: how much disk the write-ahead log holds
/// and which records are still replayable. Surfaced through
/// `ServiceHealth`/`ClusterHealth` so compaction is testable from the
/// outside ("did `oldest_live_seq` advance? are `bytes` bounded?").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Bytes the journal file currently occupies on disk.
    pub bytes: u64,
    /// Records currently live in the file (replayed on recovery).
    pub records: u64,
    /// Sequence of the oldest record still in the file (0 when empty).
    pub oldest_live_seq: u64,
    /// Sequence of the most recently appended record (0 before the first).
    pub last_seq: u64,
    /// Compaction passes that actually dropped records.
    pub compactions: u64,
    /// Total records dropped across all compaction passes.
    pub records_compacted: u64,
}

impl JournalStats {
    /// Fold another journal's stats into this one (cluster aggregation):
    /// byte/record/compaction counters add, `oldest_live_seq` takes the
    /// minimum non-zero seq, `last_seq` the maximum.
    pub fn merge(&mut self, other: &JournalStats) {
        self.bytes += other.bytes;
        self.records += other.records;
        self.compactions += other.compactions;
        self.records_compacted += other.records_compacted;
        self.last_seq = self.last_seq.max(other.last_seq);
        if other.oldest_live_seq != 0
            && (self.oldest_live_seq == 0 || other.oldest_live_seq < self.oldest_live_seq)
        {
            self.oldest_live_seq = other.oldest_live_seq;
        }
    }
}

/// Outcome of one journal compaction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// The safety bound: records with `seq <= safe_seq` were eligible to
    /// drop because every surviving recovery candidate already covers them.
    pub safe_seq: u64,
    /// Records kept (all with `seq > safe_seq`).
    pub kept_records: u64,
    /// Records dropped by this pass.
    pub dropped_records: u64,
    /// Sequence of the oldest surviving record (0 when none survive).
    pub oldest_live_seq: u64,
    /// Journal bytes before the pass.
    pub bytes_before: u64,
    /// Journal bytes after the pass.
    pub bytes_after: u64,
}

/// Compact the journal in `dir`: drop every record with `seq <=
/// keep_after`, keeping the survivors **byte-verbatim** (raw frames are
/// copied, never re-encoded, so record checksums and kill-point cut
/// offsets stay exactly as the original appends wrote them).
///
/// Crash safety mirrors snapshot writes: survivors are written to
/// [`JOURNAL_TMP`], fsynced, renamed over [`JOURNAL_FILE`], and the
/// directory is fsynced. A crash before the rename leaves the old journal
/// intact (plus a stray tmp recovery ignores); a crash after leaves the
/// fully-formed compacted journal. There is no in-between state.
///
/// The caller must hold the append lock: the rename replaces the inode
/// under any open append handle, so the handle must be reopened before
/// the next append.
pub(crate) fn compact_journal_file(
    dir: &Path,
    keep_after: u64,
) -> Result<CompactionReport, PersistError> {
    let path = dir.join(JOURNAL_FILE);
    let mut report = CompactionReport {
        safe_seq: keep_after,
        ..CompactionReport::default()
    };
    if !path.exists() {
        return Ok(report);
    }
    let bytes = fs::read(&path)?;
    report.bytes_before = bytes.len() as u64;
    // Frame-level scan: validate magic/len/crc and read each record's seq
    // (first payload field) without decoding bodies.
    let mut frames: Vec<(u64, std::ops::Range<usize>)> = Vec::new();
    let mut pos: usize = 0;
    loop {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER as usize {
            break;
        }
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC {
            break;
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4 bytes"));
        let body_start = pos + RECORD_HEADER as usize;
        let Some(body_end) = (len as usize)
            .checked_add(body_start)
            .filter(|end| *end <= bytes.len())
        else {
            break;
        };
        if len < 8 || bin::crc32(&bytes[body_start..body_end]) != crc {
            break;
        }
        let seq = u64::from_le_bytes(bytes[body_start..body_start + 8].try_into().expect("seq"));
        frames.push((seq, pos..body_end));
        pos = body_end;
    }
    let total = frames.len() as u64;
    report.kept_records = frames.iter().filter(|(seq, _)| *seq > keep_after).count() as u64;
    report.dropped_records = total - report.kept_records;
    report.oldest_live_seq = frames
        .iter()
        .find(|(seq, _)| *seq > keep_after)
        .map(|(seq, _)| *seq)
        .unwrap_or(0);
    if report.dropped_records == 0 {
        // Nothing to drop: leave the file untouched (a torn tail, if any,
        // stays for the usual recovery-time repair).
        report.bytes_after = report.bytes_before;
        return Ok(report);
    }
    let mut out = Vec::new();
    for (seq, range) in &frames {
        if *seq > keep_after {
            out.extend_from_slice(&bytes[range.clone()]);
        }
    }
    report.bytes_after = out.len() as u64;
    write_atomic(dir, JOURNAL_TMP, &path, &out)?;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Cluster root snapshots.
//
// The cluster root log re-derives two things on recovery that no partition
// holds: the global order maps (how partition-local rows interleave into
// single-service row order) and the router-side health totals. Compacting
// the root log is therefore only safe once that derived state is checkpointed
// somewhere else — which is exactly what a cluster root snapshot is: the
// order maps, the per-partition committed-batch counts, and the router
// totals as of a covered root-log sequence. Recovery loads the newest
// loadable one, replays only the journal records past its coverage into the
// maps, and uses the batch counts to index roll-forward batches for lagging
// partitions. Retention mirrors the single-service snapshots: the newest
// CLUSTER_SNAPSHOTS_KEPT are kept, and the *oldest retained* one is the
// compaction safety bound, so a corrupt newest snapshot can always fall back
// to an older one whose journal tail is still fully present.
// ---------------------------------------------------------------------------

/// File-name prefix of cluster root snapshots
/// (`cluster-<covered_seq>.snap`), written at the cluster directory root
/// next to `journal.log` and `cluster.meta`.
const CLUSTER_SNAP_PREFIX: &str = "cluster-";
/// Cluster root snapshot extension.
const CLUSTER_SNAP_SUFFIX: &str = ".snap";
/// Temp name a cluster root snapshot is encoded under before the atomic
/// rename. Recovery never reads this name (and the scan requires the
/// `cluster-` prefix, which `cluster.tmp` lacks), so a crash mid-write
/// leaves at worst a stray tmp.
const CLUSTER_SNAP_TMP: &str = "cluster.tmp";
/// Magic leading every cluster root snapshot.
const CLUSTER_SNAP_MAGIC: &[u8; 8] = b"USAASCL\x01";
/// Cluster root snapshot format version.
const CLUSTER_SNAP_VERSION: u32 = 1;
/// How many cluster root snapshots to keep.
const CLUSTER_SNAPSHOTS_KEPT: usize = 2;

/// One cluster root snapshot: the router-derived state as of
/// `covered_seq`, everything cluster recovery would otherwise re-derive by
/// replaying the root log from its base record.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ClusterSnapContents {
    /// Last root-log sequence folded into this snapshot. Journal records
    /// with `seq <= covered_seq` contribute nothing to the maps or totals
    /// on recovery (they are only replayed for partition roll-forward).
    pub(crate) covered_seq: u64,
    /// Cluster epoch at `covered_seq`.
    pub(crate) epoch: u64,
    /// Partition count the maps were built for (must match `cluster.meta`).
    pub(crate) partitions: usize,
    /// Committed non-empty sub-batches per partition through
    /// `covered_seq` — the roll-forward indexing origin.
    pub(crate) batch_counts: Vec<u64>,
    /// Per-partition session order maps (local index → global index).
    pub(crate) session_maps: Vec<Vec<usize>>,
    /// Per-partition post order maps.
    pub(crate) post_maps: Vec<Vec<usize>>,
    /// Global session count the maps cover.
    pub(crate) total_sessions: usize,
    /// Global post count the maps cover.
    pub(crate) total_posts: usize,
    /// Router-side quarantined total.
    pub(crate) quarantined: usize,
    /// Router-side unfed total.
    pub(crate) unfed: usize,
    /// Router-side breaker-trip total.
    pub(crate) breaker_trips: usize,
    /// Breakers the last run before `covered_seq` left open.
    pub(crate) open_breakers: Vec<String>,
    /// The router's bounded dead-letter ring at `covered_seq`.
    pub(crate) dead_letters: Vec<QuarantineEntry>,
    /// Dead letters already evicted from the ring at `covered_seq`.
    pub(crate) dead_letters_dropped: usize,
}

impl ClusterSnapContents {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.covered_seq);
        w.put_u64(self.epoch);
        w.put_usize(self.partitions);
        for c in &self.batch_counts {
            w.put_u64(*c);
        }
        let put_maps = |w: &mut Writer, maps: &[Vec<usize>]| {
            for map in maps {
                w.put_u64(map.len() as u64);
                for &g in map {
                    w.put_usize(g);
                }
            }
        };
        put_maps(&mut w, &self.session_maps);
        put_maps(&mut w, &self.post_maps);
        w.put_usize(self.total_sessions);
        w.put_usize(self.total_posts);
        w.put_usize(self.quarantined);
        w.put_usize(self.unfed);
        w.put_usize(self.breaker_trips);
        put_string_list(&mut w, &self.open_breakers);
        w.put_u64(self.dead_letters.len() as u64);
        for q in &self.dead_letters {
            put_quarantine_entry(&mut w, q);
        }
        w.put_usize(self.dead_letters_dropped);
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<ClusterSnapContents, bin::Error> {
        let mut r = Reader::new(payload);
        let covered_seq = r.get_u64()?;
        let epoch = r.get_u64()?;
        let partitions = r.get_usize()?;
        if partitions == 0 || partitions > 4096 {
            return Err(bin::Error::Corrupt("implausible partition count"));
        }
        let mut batch_counts = Vec::with_capacity(partitions);
        for _ in 0..partitions {
            batch_counts.push(r.get_u64()?);
        }
        let get_maps = |r: &mut Reader<'_>| -> Result<Vec<Vec<usize>>, bin::Error> {
            let mut maps = Vec::with_capacity(partitions);
            for _ in 0..partitions {
                let n = r.get_len()?;
                let mut map = Vec::with_capacity(n);
                for _ in 0..n {
                    map.push(r.get_usize()?);
                }
                maps.push(map);
            }
            Ok(maps)
        };
        let session_maps = get_maps(&mut r)?;
        let post_maps = get_maps(&mut r)?;
        let total_sessions = r.get_usize()?;
        let total_posts = r.get_usize()?;
        if session_maps.iter().map(Vec::len).sum::<usize>() != total_sessions
            || post_maps.iter().map(Vec::len).sum::<usize>() != total_posts
        {
            return Err(bin::Error::Corrupt("order maps disagree with totals"));
        }
        let quarantined = r.get_usize()?;
        let unfed = r.get_usize()?;
        let breaker_trips = r.get_usize()?;
        let open_breakers = get_string_list(&mut r)?;
        let n = r.get_len()?;
        let mut dead_letters = Vec::with_capacity(n);
        for _ in 0..n {
            dead_letters.push(get_quarantine_entry(&mut r)?);
        }
        let dead_letters_dropped = r.get_usize()?;
        if !r.is_exhausted() {
            return Err(bin::Error::Corrupt("trailing bytes after cluster snapshot"));
        }
        Ok(ClusterSnapContents {
            covered_seq,
            epoch,
            partitions,
            batch_counts,
            session_maps,
            post_maps,
            total_sessions,
            total_posts,
            quarantined,
            unfed,
            breaker_trips,
            open_breakers,
            dead_letters,
            dead_letters_dropped,
        })
    }
}

/// Path of the cluster root snapshot covering root-log sequence `seq`.
fn cluster_snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{CLUSTER_SNAP_PREFIX}{seq}{CLUSTER_SNAP_SUFFIX}"))
}

/// Covered sequences of every cluster root snapshot present, descending
/// (newest first).
pub(crate) fn cluster_snapshot_seqs(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mid) = name
            .strip_prefix(CLUSTER_SNAP_PREFIX)
            .and_then(|rest| rest.strip_suffix(CLUSTER_SNAP_SUFFIX))
        {
            if let Ok(seq) = mid.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// Write a cluster root snapshot with the atomic tmp → fsync → rename →
/// fsync-dir protocol, then prune beyond the retention count. Returns the
/// final path.
pub(crate) fn write_cluster_snapshot(
    dir: &Path,
    contents: &ClusterSnapContents,
) -> Result<PathBuf, PersistError> {
    let payload = contents.encode();
    let file_bytes = frame_file(CLUSTER_SNAP_MAGIC, CLUSTER_SNAP_VERSION, &payload);
    let path = cluster_snapshot_path(dir, contents.covered_seq);
    write_atomic(dir, CLUSTER_SNAP_TMP, &path, &file_bytes)?;
    for stale in cluster_snapshot_seqs(dir)?
        .into_iter()
        .skip(CLUSTER_SNAPSHOTS_KEPT)
    {
        let _ = fs::remove_file(cluster_snapshot_path(dir, stale));
    }
    Ok(path)
}

/// Decode one cluster root snapshot file.
fn load_cluster_snapshot(path: &Path) -> Result<ClusterSnapContents, PersistError> {
    let corrupt = |detail: String| PersistError::Corrupt {
        file: path.display().to_string(),
        detail,
    };
    let bytes = fs::read(path)?;
    if bytes.len() < 24 || &bytes[..8] != CLUSTER_SNAP_MAGIC {
        return Err(corrupt("bad magic or truncated header".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CLUSTER_SNAP_VERSION {
        return Err(corrupt(format!(
            "unsupported cluster snapshot version {version}"
        )));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(corrupt(format!(
            "payload length {} disagrees with header {len}",
            payload.len()
        )));
    }
    if bin::crc32(payload) != crc {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    ClusterSnapContents::decode(payload).map_err(|e| corrupt(e.to_string()))
}

/// Load the newest loadable cluster root snapshot, falling back to older
/// ones (with a warning per skip) when the newest is corrupt at rest.
/// `None` when the directory holds no loadable cluster snapshot — the
/// caller then recovers the legacy way, replaying the whole root log.
pub(crate) fn load_latest_cluster_snapshot(
    dir: &Path,
    warnings: &mut Vec<String>,
) -> Option<ClusterSnapContents> {
    let seqs = cluster_snapshot_seqs(dir).ok()?;
    for seq in seqs {
        match load_cluster_snapshot(&cluster_snapshot_path(dir, seq)) {
            Ok(snap) => return Some(snap),
            Err(e) => warnings.push(format!(
                "cluster snapshot covering seq {seq} unusable, falling back: {e}"
            )),
        }
    }
    None
}

/// `fsync` a directory so a completed rename is durable (no-op where the
/// platform won't open directories).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match fs::File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Corrupt-at-rest helper for tests: flip one byte of `path` at `offset`.
#[cfg(test)]
pub(crate) fn flip_byte(path: &Path, offset: u64) -> std::io::Result<()> {
    let mut bytes = fs::read(path)?;
    bytes[offset as usize] ^= 0x40;
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};
    use social::generator::{generate as gen_forum, ForumConfig};

    fn tmp_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("usaas-persist-{}-{test}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_sessions(n: usize) -> Vec<SessionRecord> {
        let mut sessions = generate(&DatasetConfig::small(n.max(4), 7)).sessions;
        assert!(sessions.len() >= n, "generator under-produced");
        sessions.truncate(n);
        sessions
    }

    fn sample_posts() -> Vec<Post> {
        let mut cfg = ForumConfig::default();
        cfg.end = cfg.start.offset(15);
        cfg.authors = 200;
        gen_forum(&cfg).posts
    }

    #[test]
    fn sessions_and_posts_round_trip_bitwise() {
        let sessions = sample_sessions(40);
        let posts = sample_posts();
        assert!(posts.iter().any(|p| p.screenshot.is_some()));
        let mut w = Writer::new();
        for s in &sessions {
            put_session(&mut w, s);
        }
        for p in &posts {
            put_post(&mut w, p);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for s in &sessions {
            let back = get_session(&mut r).unwrap();
            assert_eq!(&back, s);
            assert_eq!(back.presence_pct.to_bits(), s.presence_pct.to_bits());
        }
        for p in &posts {
            let back = get_post(&mut r).unwrap();
            assert_eq!(&back, p);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn signals_round_trip_including_nan_payloads() {
        let analyzer = sentiment::analyzer::SentimentAnalyzer::default();
        let mut signals: Vec<Signal> = Vec::new();
        for s in sample_sessions(10) {
            signals.extend(Signal::from_session(&s));
        }
        for p in sample_posts().iter().take(10) {
            signals.push(Signal::from_post(p, &analyzer));
        }
        // A hand-made signal with a NaN-payload float must survive bitwise.
        let mut weird = signals[0].clone();
        if let Payload::Implicit(i) = &mut weird.payload {
            i.session.latent_quality = f64::from_bits(0x7FF8_0000_0000_BEEF);
        }
        signals.push(weird);
        let mut w = Writer::new();
        for s in &signals {
            put_signal(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for s in &signals {
            let back = get_signal(&mut r).unwrap();
            assert_eq!(format!("{back:?}"), format!("{s:?}"));
        }
        let Payload::Implicit(i) = &signals[signals.len() - 1].payload else {
            panic!("expected implicit");
        };
        assert_eq!(i.session.latent_quality.to_bits(), 0x7FF8_0000_0000_BEEF);
    }

    #[test]
    fn journal_append_scan_and_offsets_agree() {
        let dir = tmp_dir("journal-roundtrip");
        let path = dir.join(JOURNAL_FILE);
        let sessions = sample_sessions(12);
        let mut journal = Journal::open_append(&path).unwrap();
        for (i, chunk) in sessions.chunks(4).enumerate() {
            journal
                .append(&JournalRecord {
                    seq: i as u64 + 1,
                    epoch_after: i as u64 + 1,
                    sessions: chunk.to_vec(),
                    ..JournalRecord::default()
                })
                .unwrap();
        }
        let mut warnings = Vec::new();
        let records = read_and_repair_journal(&path, &mut warnings).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].seq, 3);
        assert_eq!(records[0].sessions, sessions[..4].to_vec());
        let offsets = journal_record_offsets(&path).unwrap();
        assert_eq!(offsets.len(), 4);
        assert_eq!(offsets[0], 0);
        assert_eq!(
            *offsets.last().unwrap(),
            fs::metadata(&path).unwrap().len(),
            "last boundary is the file end"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_covered_records_byte_verbatim() {
        let dir = tmp_dir("journal-compact");
        let path = dir.join(JOURNAL_FILE);
        let sessions = sample_sessions(10);
        let mut journal = Journal::open_append(&path).unwrap();
        for (i, chunk) in sessions.chunks(2).enumerate() {
            journal
                .append(&JournalRecord {
                    seq: i as u64 + 1,
                    epoch_after: i as u64 + 1,
                    sessions: chunk.to_vec(),
                    ..JournalRecord::default()
                })
                .unwrap();
        }
        let before = fs::read(&path).unwrap();
        let offsets = journal_record_offsets(&path).unwrap();
        assert_eq!(offsets.len(), 6);

        let report = compact_journal_file(&dir, 2).unwrap();
        assert_eq!(report.safe_seq, 2);
        assert_eq!(report.dropped_records, 2);
        assert_eq!(report.kept_records, 3);
        assert_eq!(report.oldest_live_seq, 3);
        assert_eq!(report.bytes_before, before.len() as u64);

        // Survivors are the original frames byte-for-byte.
        let after = fs::read(&path).unwrap();
        assert_eq!(after, before[offsets[2] as usize..].to_vec());
        assert_eq!(report.bytes_after, after.len() as u64);
        assert!(!dir.join(JOURNAL_TMP).exists(), "tmp is consumed by rename");

        // The compacted journal reads back clean: records 3..=5, no repair.
        let mut warnings = Vec::new();
        let records = read_and_repair_journal(&path, &mut warnings).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );

        // Same bound again: nothing further to drop, file untouched.
        let again = compact_journal_file(&dir, 2).unwrap();
        assert_eq!(again.dropped_records, 0);
        assert_eq!(again.bytes_after, after.len() as u64);
        assert_eq!(fs::read(&path).unwrap(), after);

        // A reopened append handle extends the compacted file.
        let mut reopened = Journal::open_append(&path).unwrap();
        reopened
            .append(&JournalRecord {
                seq: 6,
                epoch_after: 6,
                ..JournalRecord::default()
            })
            .unwrap();
        let mut warnings = Vec::new();
        let records = read_and_repair_journal(&path, &mut warnings).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(records.last().unwrap().seq, 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_edge_cases_are_noops_or_clean() {
        let dir = tmp_dir("journal-compact-edge");
        // No journal at all: a zeroed report, no file created.
        let report = compact_journal_file(&dir, 7).unwrap();
        assert_eq!(report.dropped_records, 0);
        assert!(!dir.join(JOURNAL_FILE).exists());

        // A torn tail behind a droppable prefix is cut by the rewrite.
        let path = dir.join(JOURNAL_FILE);
        let sessions = sample_sessions(6);
        let mut journal = Journal::open_append(&path).unwrap();
        for (i, chunk) in sessions.chunks(2).enumerate() {
            journal
                .append(&JournalRecord {
                    seq: i as u64 + 1,
                    epoch_after: i as u64 + 1,
                    sessions: chunk.to_vec(),
                    ..JournalRecord::default()
                })
                .unwrap();
        }
        let offsets = journal_record_offsets(&path).unwrap();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len((offsets[2] + offsets[3]) / 2)
            .unwrap();
        let report = compact_journal_file(&dir, 1).unwrap();
        assert_eq!(report.dropped_records, 1);
        assert_eq!(report.kept_records, 1, "torn record 3 does not survive");
        let mut warnings = Vec::new();
        let records = read_and_repair_journal(&path, &mut warnings).unwrap();
        assert!(warnings.is_empty(), "rewrite leaves no torn tail");
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_truncated_with_a_warning() {
        let dir = tmp_dir("journal-torn");
        let path = dir.join(JOURNAL_FILE);
        let sessions = sample_sessions(8);
        let mut journal = Journal::open_append(&path).unwrap();
        for (i, chunk) in sessions.chunks(4).enumerate() {
            journal
                .append(&JournalRecord {
                    seq: i as u64 + 1,
                    epoch_after: i as u64 + 1,
                    sessions: chunk.to_vec(),
                    ..JournalRecord::default()
                })
                .unwrap();
        }
        let offsets = journal_record_offsets(&path).unwrap();
        // Cut mid-way through the second record: a torn write.
        let cut = (offsets[1] + offsets[2]) / 2;
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let mut warnings = Vec::new();
        let records = read_and_repair_journal(&path, &mut warnings).unwrap();
        assert_eq!(records.len(), 1, "only the intact record survives");
        assert_eq!(warnings.len(), 1, "the repair is reported");
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            offsets[1],
            "the file is truncated back to the last valid boundary"
        );
        // A second read is clean: the repair is durable.
        let mut again = Vec::new();
        assert_eq!(read_and_repair_journal(&path, &mut again).unwrap().len(), 1);
        assert!(again.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_journal_byte_truncates_from_the_bad_record() {
        let dir = tmp_dir("journal-flip");
        let path = dir.join(JOURNAL_FILE);
        let sessions = sample_sessions(8);
        let mut journal = Journal::open_append(&path).unwrap();
        for (i, chunk) in sessions.chunks(2).enumerate() {
            journal
                .append(&JournalRecord {
                    seq: i as u64 + 1,
                    epoch_after: i as u64 + 1,
                    sessions: chunk.to_vec(),
                    ..JournalRecord::default()
                })
                .unwrap();
        }
        let offsets = journal_record_offsets(&path).unwrap();
        assert_eq!(offsets.len(), 5);
        // Flip one payload byte inside record 3.
        flip_byte(&path, offsets[2] + RECORD_HEADER + 9).unwrap();
        let mut warnings = Vec::new();
        let records = read_and_repair_journal(&path, &mut warnings).unwrap();
        assert_eq!(records.len(), 2, "records before the flip survive");
        assert!(warnings[0].contains("checksum"), "{warnings:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_round_trips_and_survives_fallback() {
        let dir = tmp_dir("snapshot-roundtrip");
        let sessions = sample_sessions(30);
        let posts = sample_posts();
        let frame = SessionFrame::from_dataset(
            &conference::records::CallDataset {
                sessions: sessions.clone(),
            },
            2,
        );
        let store = SignalStore::new();
        let analyzer = sentiment::analyzer::SentimentAnalyzer::default();
        for s in &sessions {
            store.insert_batch(Signal::from_session(s));
        }
        store.insert_batch(
            posts
                .iter()
                .map(|p| Signal::from_post(p, &analyzer))
                .collect(),
        );
        let health = PersistedHealth {
            quarantined: 2,
            unfed: 1,
            breaker_trips: 3,
            open_breakers: vec!["flaky-feed".to_string()],
            dead_letters: vec![QuarantineEntry {
                source_id: 0,
                source: "flaky-feed".to_string(),
                seq: 17,
                reason: QuarantineReason::PoisonPill,
                detail: "poison pill: boom".to_string(),
                item: "session 17".to_string(),
            }],
        };
        let view_keys = [
            ViewKey::Curve {
                sweep: NetworkMetric::LatencyMs,
                engagement: EngagementMetric::Presence,
                bins: 6,
            },
            ViewKey::Mos,
            ViewKey::Predict {
                features: FeatureSet::Full,
            },
            ViewKey::Outage,
        ];
        let session_chunks = SessionChunks::from_vec(sessions.clone());
        let contents = SnapshotContents {
            epoch: 4,
            journal_seq: 9,
            sessions: &session_chunks,
            posts: &posts,
            frame: &frame,
            corpus: None,
            store: &store,
            health: &health,
            view_keys: &view_keys,
        };
        let path = write_snapshot(&dir, &contents).unwrap();
        assert!(path.ends_with("snapshot-9.snap"));
        let mut warnings = Vec::new();
        let state = load_latest_state(&dir, 4, &mut warnings).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(state.epoch, 4);
        assert_eq!(state.journal_seq, 9);
        assert_eq!(state.sessions, sessions);
        assert_eq!(state.posts, posts);
        assert_eq!(state.frame.len(), frame.len());
        assert_eq!(state.store.len(), store.len());
        assert_eq!(state.health.dead_letters, health.dead_letters);
        assert_eq!(state.health.open_breakers, health.open_breakers);
        assert_eq!(state.view_keys, view_keys);

        // Write a second snapshot, corrupt it, and watch recovery fall
        // back to the first with a warning instead of dying.
        let newer = SnapshotContents {
            epoch: 5,
            journal_seq: 11,
            ..contents
        };
        let newer_path = write_snapshot(&dir, &newer).unwrap();
        flip_byte(&newer_path, 200).unwrap();
        let mut warnings = Vec::new();
        let state = load_latest_state(&dir, 4, &mut warnings).unwrap();
        assert_eq!(state.journal_seq, 9, "fell back to the older snapshot");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("seq 11"), "{warnings:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_retention_keeps_the_last_two() {
        let dir = tmp_dir("snapshot-retention");
        let sessions = sample_sessions(5);
        let frame = SessionFrame::from_dataset(
            &conference::records::CallDataset {
                sessions: sessions.clone(),
            },
            1,
        );
        let store = SignalStore::new();
        let health = PersistedHealth::default();
        let session_chunks = SessionChunks::from_vec(sessions);
        for seq in [1u64, 2, 3, 4] {
            write_snapshot(
                &dir,
                &SnapshotContents {
                    epoch: seq,
                    journal_seq: seq,
                    sessions: &session_chunks,
                    posts: &[],
                    frame: &frame,
                    corpus: None,
                    store: &store,
                    health: &health,
                    view_keys: &[],
                },
            )
            .unwrap();
        }
        assert_eq!(snapshot_seqs(&dir).unwrap(), vec![4, 3]);
        let _ = fs::remove_dir_all(&dir);
    }
}
