//! Sentiment-peak detection and annotation (Fig. 5).
//!
//! The §4.1 pipeline: score every post, count strong-positive and
//! strong-negative posts per day, find the peaks; for each peak build a word
//! cloud from the day's posts, take the top-3 unigrams, and search the news
//! index ("with the search query appended with 'Starlink', for the custom
//! date"). Peaks whose search comes back empty are *unreported* events — the
//! Apr 22 '22 outage being the paper's showcase, corroborated instead by
//! the number of distinct poster countries.

use analytics::kernels::{self, RowMask};
use analytics::time::Date;
use analytics::timeseries::DailySeries;
use analytics::AnalyticsError;
use sentiment::analyzer::{SentimentAnalyzer, SentimentScores};
use sentiment::corpus::TokenCorpus;
use sentiment::news::NewsIndex;
use sentiment::wordcloud::WordCloud;
use serde::Serialize;
use social::post::{Forum, Post};

/// Word-cloud size used when annotating a peak day.
pub(crate) const CLOUD_WORDS: usize = 30;

/// Daily strong-sentiment counts (the two Fig. 5a series).
#[derive(Debug, Clone)]
pub struct SentimentSeries {
    /// Strong-positive posts per day.
    pub strong_positive: DailySeries,
    /// Strong-negative posts per day.
    pub strong_negative: DailySeries,
}

impl SentimentSeries {
    /// Combined (positive + negative) strong-post count per day — the series
    /// whose peaks Fig. 5a annotates.
    pub fn combined(&self) -> DailySeries {
        let values: Vec<f64> = self
            .strong_positive
            .values()
            .iter()
            .zip(self.strong_negative.values())
            .map(|(p, n)| p + n)
            .collect();
        DailySeries::from_values(self.strong_positive.start(), values)
            .expect("series are non-empty by construction")
    }
}

/// One annotated sentiment peak.
#[derive(Debug, Clone, Serialize)]
pub struct AnnotatedPeak {
    /// Peak day.
    pub date: Date,
    /// Strong posts that day (pos + neg).
    pub strong_posts: f64,
    /// True when the peak is dominated by positive posts.
    pub positive_dominated: bool,
    /// Top word-cloud unigrams of the day.
    pub top_words: Vec<String>,
    /// Headlines found for the top words around the date.
    pub headlines: Vec<String>,
    /// Distinct countries posting strong-sentiment posts that day (the
    /// corroboration signal when no news exists).
    pub countries: usize,
}

impl AnnotatedPeak {
    /// True when no news coverage was found — the unreported-event flag.
    pub fn unreported(&self) -> bool {
        self.headlines.is_empty()
    }
}

/// The Fig. 5 annotator.
#[derive(Debug, Clone)]
pub struct PeakAnnotator {
    /// Sentiment analyzer.
    pub analyzer: SentimentAnalyzer,
    /// News index for annotation.
    pub news: NewsIndex,
    /// Word-cloud keywords used for the news query.
    pub query_words: usize,
    /// Days around the peak searched for coverage.
    pub news_window_days: i32,
    /// Robust z-score threshold for peaks.
    pub min_peak_score: f64,
    /// Refractory window between peaks (days).
    pub refractory_days: i32,
}

impl Default for PeakAnnotator {
    fn default() -> PeakAnnotator {
        PeakAnnotator {
            analyzer: SentimentAnalyzer::default(),
            news: NewsIndex::builtin(),
            query_words: 3,
            news_window_days: 3,
            min_peak_score: 5.0,
            refractory_days: 5,
        }
    }
}

impl PeakAnnotator {
    /// Compute the daily strong-sentiment series.
    pub fn sentiment_series(&self, forum: &Forum) -> Result<SentimentSeries, AnalyticsError> {
        let (start, end) = forum.date_range().ok_or(AnalyticsError::Empty)?;
        let mut pos = DailySeries::zeros(start, end)?;
        let mut neg = DailySeries::zeros(start, end)?;
        for post in &forum.posts {
            let scores = self.analyzer.score(&post.text());
            if scores.is_strong_positive() {
                pos.add(post.date, 1.0);
            } else if scores.is_strong_negative() {
                neg.add(post.date, 1.0);
            }
        }
        Ok(SentimentSeries {
            strong_positive: pos,
            strong_negative: neg,
        })
    }

    /// [`PeakAnnotator::sentiment_series`] over a pre-tokenized corpus:
    /// every post is scored once by interned ids (chunk-parallel over
    /// `workers` threads), then binned in post order. Additions are 1.0 per
    /// post, so the series is identical for every worker count.
    pub fn sentiment_series_interned(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        workers: usize,
    ) -> Result<SentimentSeries, AnalyticsError> {
        let scores = self.score_posts(forum, corpus, workers);
        self.series_from_scores(forum, &scores)
    }

    /// Score every post of the forum by interned ids.
    pub(crate) fn score_posts(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        workers: usize,
    ) -> Vec<SentimentScores> {
        assert_eq!(
            corpus.docs(),
            forum.len(),
            "corpus must tokenize exactly this forum"
        );
        self.analyzer.score_corpus(corpus, workers)
    }

    /// Bin precomputed per-post scores into the two daily series through
    /// the branchless [`kernels::masked_slot_counts`] tally: the day offset
    /// is the slot, the strong-sentiment predicates compile to row masks,
    /// and the per-day additions are integer-valued — identical counts to
    /// the retained per-post `DailySeries::add` walk at any scan order.
    pub(crate) fn series_from_scores(
        &self,
        forum: &Forum,
        scores: &[SentimentScores],
    ) -> Result<SentimentSeries, AnalyticsError> {
        let (start, end) = forum.date_range().ok_or(AnalyticsError::Empty)?;
        let days = (end.days_since(start) + 1) as usize;
        let slots: Vec<u32> = forum
            .posts
            .iter()
            .map(|p| p.date.days_since(start) as u32)
            .collect();
        let pos_mask = RowMask::from_fn(slots.len(), |i| scores[i].is_strong_positive());
        // The reference walk's `else if`: a strong-positive post never
        // also counts as strong-negative.
        let neg_mask = RowMask::from_fn(slots.len(), |i| {
            !scores[i].is_strong_positive() && scores[i].is_strong_negative()
        });
        let to_series = |counts: Vec<usize>| {
            DailySeries::from_values(start, counts.into_iter().map(|c| c as f64).collect())
        };
        Ok(SentimentSeries {
            strong_positive: to_series(kernels::masked_slot_counts(&slots, days, &pos_mask))?,
            strong_negative: to_series(kernels::masked_slot_counts(&slots, days, &neg_mask))?,
        })
    }

    /// Word cloud over one day's posts.
    pub fn day_cloud(&self, forum: &Forum, date: Date, max_words: usize) -> WordCloud {
        let texts: Vec<String> = forum.on(date).map(|p| p.text()).collect();
        WordCloud::from_documents(texts.iter().map(String::as_str), max_words)
    }

    /// [`PeakAnnotator::day_cloud`] over a pre-tokenized corpus — counts
    /// the day's unigrams by interned id without re-reading any post text.
    pub fn day_cloud_interned(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        date: Date,
        max_words: usize,
    ) -> WordCloud {
        let docs = forum
            .posts
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.date == date)
            .map(|(i, _)| i);
        WordCloud::from_corpus_docs(corpus, docs, max_words)
    }

    /// The full pipeline: top-`k` annotated peaks, strongest first.
    pub fn annotate(&self, forum: &Forum, k: usize) -> Result<Vec<AnnotatedPeak>, AnalyticsError> {
        let series = self.sentiment_series(forum)?;
        let score_day = |date: Date| -> Vec<(&Post, SentimentScores)> {
            forum
                .on(date)
                .map(|p| (p, self.analyzer.score(&p.text())))
                .collect()
        };
        let cloud_day = |date: Date| self.day_cloud(forum, date, CLOUD_WORDS);
        self.annotate_with(forum, k, series, cloud_day, score_day)
    }

    /// [`PeakAnnotator::annotate`] over a pre-tokenized corpus. Every post
    /// is scored exactly once (`score_corpus`), and that one pass feeds both
    /// the peak series and the per-peak country corroboration; day clouds
    /// count interned ids. Output is identical to the string path.
    pub fn annotate_interned(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        k: usize,
        workers: usize,
    ) -> Result<Vec<AnnotatedPeak>, AnalyticsError> {
        let scores = self.score_posts(forum, corpus, workers);
        let series = self.series_from_scores(forum, &scores)?;
        self.annotate_from_scores(forum, corpus, k, &scores, series)
    }

    /// The annotation tail over precomputed per-post scores and the daily
    /// series — the incremental sentiment view carries both across epochs
    /// and calls this directly, skipping the scoring pass entirely.
    pub(crate) fn annotate_from_scores(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        k: usize,
        scores: &[SentimentScores],
        series: SentimentSeries,
    ) -> Result<Vec<AnnotatedPeak>, AnalyticsError> {
        let score_day = |date: Date| -> Vec<(&Post, SentimentScores)> {
            forum
                .posts
                .iter()
                .zip(scores)
                .filter(|(p, _)| p.date == date)
                .map(|(p, s)| (p, *s))
                .collect()
        };
        let cloud_day = |date: Date| self.day_cloud_interned(forum, corpus, date, CLOUD_WORDS);
        self.annotate_with(forum, k, series, cloud_day, score_day)
    }

    /// Shared annotation tail: peak finding, cloud/news/country assembly.
    /// `cloud_day` and `score_day` abstract over string vs interned access
    /// so both paths run literally the same logic.
    fn annotate_with<'f>(
        &self,
        _forum: &'f Forum,
        k: usize,
        series: SentimentSeries,
        cloud_day: impl Fn(Date) -> WordCloud,
        score_day: impl Fn(Date) -> Vec<(&'f Post, SentimentScores)>,
    ) -> Result<Vec<AnnotatedPeak>, AnalyticsError> {
        let combined = series.combined();
        let peaks = combined.peaks(self.min_peak_score, self.refractory_days);
        let mut out = Vec::new();
        let lexicon = sentiment::lexicon::Lexicon::global();
        for peak in peaks.into_iter().take(k) {
            let cloud = cloud_day(peak.date);
            // Query with *topical* words: sentiment-bearing adjectives
            // ("amazing", "terrible") never make useful search keywords, so
            // the top unigrams are taken after dropping lexicon words.
            let top_words: Vec<String> = cloud
                .words
                .iter()
                .map(|w| w.word.clone())
                .filter(|w| lexicon.valence(w).is_none())
                .take(self.query_words)
                .collect();
            let mut query: Vec<&str> = top_words.iter().map(String::as_str).collect();
            query.push("starlink"); // the paper appends 'Starlink' to every query
            let headlines = self
                .news
                .search(&query, peak.date, self.news_window_days)
                .into_iter()
                .map(|a| a.headline.clone())
                .collect();
            let pos = series.strong_positive.get(peak.date).unwrap_or(0.0);
            let neg = series.strong_negative.get(peak.date).unwrap_or(0.0);
            let countries: std::collections::HashSet<&str> = score_day(peak.date)
                .into_iter()
                .filter(|(_, s)| s.is_strong_positive() || s.is_strong_negative())
                .map(|(p, _)| p.country)
                .collect();
            out.push(AnnotatedPeak {
                date: peak.date,
                strong_posts: peak.value,
                positive_dominated: pos >= neg,
                top_words,
                headlines,
                countries: countries.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use social::generator::{generate, ForumConfig};
    use std::sync::OnceLock;

    fn forum() -> &'static Forum {
        static F: OnceLock<Forum> = OnceLock::new();
        F.get_or_init(|| {
            generate(&ForumConfig {
                authors: 4000,
                ..ForumConfig::default()
            })
        })
    }

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn top_three_peaks_match_paper_dates_and_polarities() {
        let annotator = PeakAnnotator::default();
        let peaks = annotator.annotate(forum(), 3).unwrap();
        assert_eq!(peaks.len(), 3, "expected three annotated peaks");
        let dates: Vec<Date> = peaks.iter().map(|p| p.date).collect();
        assert!(
            dates.contains(&d(2021, 2, 9)),
            "pre-order peak missing: {dates:?}"
        );
        assert!(
            dates.contains(&d(2021, 11, 24)),
            "delay-email peak missing: {dates:?}"
        );
        assert!(
            dates.contains(&d(2022, 4, 22)),
            "Apr 22 outage peak missing: {dates:?}"
        );
        for p in &peaks {
            match (p.date.year(), p.date.month().month) {
                (2021, 2) => assert!(p.positive_dominated, "pre-orders should be positive"),
                (2021, 11) => assert!(!p.positive_dominated, "delay e-mail should be negative"),
                (2022, 4) => assert!(!p.positive_dominated, "outage should be negative"),
                other => panic!("unexpected peak {other:?}"),
            }
        }
        // The Apr 22 peak is the *third* highest (paper: "the third highest
        // peak (22nd Apr'22) is driven by negative sentiment").
        assert_eq!(peaks[2].date, d(2022, 4, 22), "peak order: {dates:?}");
    }

    #[test]
    fn reported_peaks_get_headlines_unreported_peak_does_not() {
        let annotator = PeakAnnotator::default();
        let peaks = annotator.annotate(forum(), 3).unwrap();
        for p in &peaks {
            if p.date == d(2022, 4, 22) {
                assert!(
                    p.unreported(),
                    "Apr 22 must have no coverage: {:?}",
                    p.headlines
                );
                // Corroborated by many countries instead (paper: 14).
                assert!(p.countries >= 6, "Apr 22 countries {}", p.countries);
            } else {
                assert!(!p.unreported(), "{} should have coverage", p.date);
            }
        }
    }

    #[test]
    fn outage_word_ranks_high_in_apr22_cloud() {
        let annotator = PeakAnnotator::default();
        let cloud = annotator.day_cloud(forum(), d(2022, 4, 22), 30);
        let rank = cloud.rank_of("outage").or_else(|| cloud.rank_of("offline"));
        assert!(
            matches!(rank, Some(r) if r < 8),
            "outage-language should rank high in the Apr 22 cloud: {:?}",
            cloud.top_words(8)
        );
    }

    #[test]
    fn sentiment_series_counts_are_plausible() {
        let annotator = PeakAnnotator::default();
        let series = annotator.sentiment_series(forum()).unwrap();
        let total_pos: f64 = series.strong_positive.values().iter().sum();
        let total_neg: f64 = series.strong_negative.values().iter().sum();
        assert!(total_pos > 500.0, "strong positives {total_pos}");
        assert!(total_neg > 500.0, "strong negatives {total_neg}");
        let combined = series.combined();
        assert_eq!(combined.len(), series.strong_positive.len());
    }

    #[test]
    fn empty_forum_errors() {
        let annotator = PeakAnnotator::default();
        assert!(annotator.sentiment_series(&Forum::default()).is_err());
    }
}
