//! Incrementally-maintained materialized views for the hot answer set.
//!
//! Every analytical answer the service serves is a *finishing pass* over an
//! accumulator that grows monotonically with the data: per-bin observation
//! lists for the Fig. 1/2/3 curves and grids, the rated-index list for the
//! MOS analyses and the predictor, per-post sentiment scores and day series
//! for the Fig. 5/6 social answers, latitude-band counts for the §6 planner.
//! A [`View`] carries exactly that accumulator across epochs. When an
//! append commits, [`ViewSet::advanced`] folds the batch into each carried
//! accumulator as an **O(delta)** update — instead of the old
//! epoch-invalidation discipline where every answer recomputed from scratch
//! over the full corpus.
//!
//! The contract, pinned by `tests/views_parity.rs`: advancing a view by any
//! append schedule and then finishing it is **bit-identical** to rebuilding
//! the view cold over the final corpus, for every worker count. The designs
//! below make that hold by construction:
//!
//! - Curve/grid/platform accumulators are compressed per-bin
//!   `(running sum, count)` pairs ([`SumBinner`]) — O(bins) state, O(bins)
//!   clone per epoch. The cold finishing pass computes each bin mean as a
//!   sequential left fold over the bin's observations in row order; the
//!   running sum replays that exact addition sequence, provided rows are
//!   folded **sequentially in row order** — so rebuilds here ignore the
//!   worker count (partial sums from disjoint chunks cannot be merged:
//!   float addition is not associative), which also makes the result
//!   trivially identical across workers. Delta rows continue the same
//!   fold.
//! - The MOS/predictor views carry the rated-index list. Appends only ever
//!   extend it, so every existing row keeps its `k % holdout` train/test
//!   assignment.
//! - Sentiment/outage views carry per-post scores and integer-valued day
//!   series. Posts are scored independently, and vocabulary growth never
//!   changes an old document's token ids, so delta scoring matches a full
//!   rescan; day series are re-embedded into the widened date range
//!   ([`DailySeries::embedded`]) and new posts added — exact integer
//!   arithmetic, so the sums match a cold build.

use crate::annotate::{AnnotatedPeak, PeakAnnotator, SentimentSeries};
use crate::correlate;
use crate::emerging::{EmergingTopic, EmergingTopicMiner, MineState};
use crate::frame::SessionFrame;
use crate::fulcrum::{self, FulcrumAnalysis, MonthlyPoint};
use crate::outage::{DetectedOutage, OutageDetector};
use crate::predict::{self, Evaluation, FeatureSet};
use analytics::binning::{BinSpec, BinnedCurve, SumBinner};
use analytics::kernels;
use analytics::timeseries::DailySeries;
use analytics::AnalyticsError;
use conference::platform::Platform;
use conference::records::{EngagementMetric, NetworkMetric, SessionRecord};
use parking_lot::RwLock;
use sentiment::analyzer::SentimentScores;
use sentiment::corpus::{CompiledDict, TokenCorpus};
use social::post::Forum;
use starlink::constellation::RegionalDemand;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of one materialized view: which answer family it backs, plus
/// the parameters that shape its accumulator. Everything needed to rebuild
/// the view from a generation's corpus is in the key, which is why
/// persistence stores only keys ([`crate::persist`]) — recovery rebuilds
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewKey {
    /// Fig. 1 engagement-vs-network curve.
    Curve {
        /// Swept network metric.
        sweep: NetworkMetric,
        /// Engagement metric reported.
        engagement: EngagementMetric,
        /// Bin count.
        bins: usize,
    },
    /// Fig. 2 latency × loss grid.
    Grid {
        /// Engagement metric aggregated per cell.
        engagement: EngagementMetric,
        /// Per-axis bin count.
        bins: usize,
    },
    /// Fig. 3 per-platform curves.
    Platform {
        /// Swept network metric.
        sweep: NetworkMetric,
        /// Engagement metric reported.
        engagement: EngagementMetric,
    },
    /// Fig. 4 MOS curves + correlation ranking (rated-index list).
    Mos,
    /// §5 MOS predictor for one feature set.
    Predict {
        /// Feature set the predictor trains on.
        features: FeatureSet,
    },
    /// Fig. 5 sentiment day-series and per-post scores.
    Sentiment,
    /// Fig. 6 outage keyword day-series.
    Outage,
    /// §6 latitude-band demand weights.
    Deployment,
    /// Fig. 7 per-post OCR + strong-sentiment memo.
    SpeedTrend,
    /// §4.1 resumable emerging-topic miner state.
    EmergingTopics,
}

/// One committed batch. `sessions` is the delta itself — session-backed
/// views fold the records directly, which is what lets the successor
/// generation skip materialising its column frame at commit time entirely
/// (frame columns mirror the records value-for-value, so record-fed
/// accumulators are bit-identical to column-fed ones). `forum` is the
/// already-extended post collection with `posts_before` marking where its
/// delta starts; `rows_before` is the base generation's session count.
/// `corpus` is the successor's interned corpus when the base generation had
/// built one (`None` otherwise — corpus-backed views are dropped and lazily
/// rebuilt).
pub(crate) struct ViewDelta<'a> {
    pub sessions: &'a [SessionRecord],
    pub rows_before: usize,
    pub forum: &'a Forum,
    pub posts_before: usize,
    pub corpus: Option<&'a TokenCorpus>,
}

/// Fig. 1 view: the compressed per-bin `(sum, count)` accumulator behind
/// one engagement curve.
#[derive(Clone)]
pub struct CurveView {
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    rows_seen: usize,
    binner: SumBinner,
}

impl CurveView {
    /// Cold rebuild over the full frame — the branchless kernel scan
    /// ([`correlate::engagement_sums_frame`]), whose row-order running sums
    /// replay the finishing pass's addition sequence exactly. `workers` is
    /// deliberately unused: the scan is sequential, which also makes the
    /// result identical at every worker count by construction (chunk-merged
    /// partial sums cannot be, float addition being non-associative).
    pub(crate) fn rebuild(
        frame: &SessionFrame,
        sweep: NetworkMetric,
        engagement: EngagementMetric,
        bins: usize,
        _workers: usize,
    ) -> Result<CurveView, AnalyticsError> {
        Ok(CurveView {
            sweep,
            engagement,
            rows_seen: frame.len(),
            binner: correlate::engagement_sums_frame(frame, sweep, engagement, bins)?,
        })
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<CurveView> {
        if self.rows_seen != delta.rows_before {
            return None;
        }
        let mut next = self.clone();
        correlate::record_curve_sums_records(
            delta.sessions,
            self.sweep,
            self.engagement,
            &mut next.binner,
        );
        next.rows_seen = delta.rows_before + delta.sessions.len();
        Some(next)
    }

    /// Finishing pass: mean-per-bin, best bin normalised to 100.
    pub(crate) fn finish(&self, min_count: usize) -> BinnedCurve {
        self.binner.curve_mean(min_count).normalized_to_max(100.0)
    }
}

/// Fig. 2 view: compressed per-cell `(sum, count)` accumulators
/// (flat-indexed `yi * bins + xi`).
#[derive(Clone)]
pub struct GridView {
    engagement: EngagementMetric,
    bins: usize,
    x: BinSpec,
    y: BinSpec,
    rows_seen: usize,
    sums: Vec<f64>,
    counts: Vec<usize>,
}

impl GridView {
    /// Cold rebuild over the full frame — the branchless kernel scan (see
    /// [`CurveView::rebuild`] for why `workers` is unused).
    pub(crate) fn rebuild(
        frame: &SessionFrame,
        engagement: EngagementMetric,
        bins: usize,
        _workers: usize,
    ) -> Result<GridView, AnalyticsError> {
        let (x, y, sums, counts) = correlate::grid_sums_frame(frame, engagement, bins)?;
        Ok(GridView {
            engagement,
            bins,
            x,
            y,
            rows_seen: frame.len(),
            sums,
            counts,
        })
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<GridView> {
        if self.rows_seen != delta.rows_before {
            return None;
        }
        let mut next = self.clone();
        correlate::record_grid_sums_records(
            delta.sessions,
            self.engagement,
            self.x,
            self.y,
            self.bins,
            &mut next.sums,
            &mut next.counts,
        );
        next.rows_seen = delta.rows_before + delta.sessions.len();
        Some(next)
    }

    /// Finishing pass: thin-cell suppression and best-cell normalisation
    /// over the carried sums.
    pub(crate) fn finish(&self, min_count: usize) -> correlate::Grid2d {
        correlate::grid_from_sums(
            self.x,
            self.y,
            self.bins,
            &self.sums,
            &self.counts,
            min_count,
        )
    }
}

/// Fig. 3 view: one compressed accumulator per [`Platform::ALL`] slot.
#[derive(Clone)]
pub struct PlatformView {
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    rows_seen: usize,
    binners: Vec<SumBinner>,
}

impl PlatformView {
    /// Cold rebuild over the full frame — the branchless kernel scan (see
    /// [`CurveView::rebuild`] for why `workers` is unused).
    pub(crate) fn rebuild(
        frame: &SessionFrame,
        sweep: NetworkMetric,
        engagement: EngagementMetric,
        bins: usize,
        _workers: usize,
    ) -> Result<PlatformView, AnalyticsError> {
        Ok(PlatformView {
            sweep,
            engagement,
            rows_seen: frame.len(),
            binners: correlate::platform_sums_frame(frame, sweep, engagement, bins)?,
        })
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<PlatformView> {
        if self.rows_seen != delta.rows_before {
            return None;
        }
        let mut next = self.clone();
        correlate::record_platform_sums_records(
            delta.sessions,
            self.sweep,
            self.engagement,
            &mut next.binners,
        );
        next.rows_seen = delta.rows_before + delta.sessions.len();
        Some(next)
    }

    /// Finishing pass: per-platform mean curves, jointly normalised.
    pub(crate) fn finish(&self, min_count: usize) -> Vec<(Platform, BinnedCurve)> {
        correlate::platform_curves_from_sums(&self.binners, min_count)
    }
}

/// Fig. 4 view: the rated sliver's values — one rating vector plus one
/// engagement vector per metric, all in rated-row order. Carrying the
/// values (not frame indices) means the finishing pass never touches the
/// column frame, so serving `MosCorrelation` after an append does not force
/// the successor generation to materialise its frame. Appends extend the
/// vectors at the end, preserving every existing row's position in the
/// rated enumeration.
#[derive(Clone)]
pub struct MosView {
    rows_seen: usize,
    ratings: Vec<f64>,
    /// `eng[k]` holds `EngagementMetric::ALL[k]`'s values for rated rows.
    eng: Vec<Vec<f64>>,
}

impl MosView {
    /// Cold rebuild over the full frame.
    pub(crate) fn rebuild(frame: &SessionFrame) -> MosView {
        let rated = frame.rated_indices();
        let ratings_col = frame.rating();
        let ratings = rated
            .iter()
            .map(|&i| f64::from(ratings_col[i].expect("rated index carries a rating")))
            .collect();
        let eng = EngagementMetric::ALL
            .iter()
            .map(|&m| analytics::kernels::gather(frame.engagement(m), rated))
            .collect();
        MosView {
            rows_seen: frame.len(),
            ratings,
            eng,
        }
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<MosView> {
        if self.rows_seen != delta.rows_before {
            return None;
        }
        let mut next = self.clone();
        for s in delta.sessions {
            if let Some(r) = s.rating {
                next.ratings.push(f64::from(r));
                for (k, &m) in EngagementMetric::ALL.iter().enumerate() {
                    next.eng[k].push(s.engagement(m));
                }
            }
        }
        next.rows_seen = delta.rows_before + delta.sessions.len();
        Some(next)
    }

    /// Finishing pass: per-metric MOS curves plus the Pearson ranking.
    #[allow(clippy::type_complexity)]
    pub(crate) fn finish(
        &self,
    ) -> Result<
        (
            Vec<(EngagementMetric, BinnedCurve)>,
            Vec<(EngagementMetric, f64)>,
        ),
        AnalyticsError,
    > {
        let mut curves = Vec::new();
        for (k, &m) in EngagementMetric::ALL.iter().enumerate() {
            curves.push((
                m,
                correlate::mos_curve_from_vals(&self.eng[k], &self.ratings, 4, 3)?,
            ));
        }
        Ok((
            curves,
            correlate::mos_correlations_vals(&self.eng, &self.ratings)?,
        ))
    }
}

/// §5 predictor view: the rated rows' feature vectors and ratings for one
/// feature set, in rated-row order. As with [`MosView`], carrying the
/// values keeps the finishing pass off the column frame entirely.
#[derive(Clone)]
pub struct PredictView {
    features: FeatureSet,
    rows_seen: usize,
    feats: Vec<Vec<f64>>,
    ratings: Vec<f64>,
}

impl PredictView {
    /// Cold rebuild over the full frame.
    pub(crate) fn rebuild(frame: &SessionFrame, features: FeatureSet) -> PredictView {
        let rated = frame.rated_indices();
        let (feats, ratings) = predict::rated_features(frame, rated, features);
        PredictView {
            features,
            rows_seen: frame.len(),
            feats,
            ratings,
        }
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<PredictView> {
        if self.rows_seen != delta.rows_before {
            return None;
        }
        let mut next = self.clone();
        for s in delta.sessions {
            if let Some(r) = s.rating {
                next.feats.push(predict::features(s, self.features));
                next.ratings.push(f64::from(r));
            }
        }
        next.rows_seen = delta.rows_before + delta.sessions.len();
        Some(next)
    }

    /// Finishing pass: train on the deterministic holdout split, evaluate.
    pub(crate) fn finish(&self) -> Result<Evaluation, AnalyticsError> {
        let (_, eval) =
            predict::train_and_evaluate_vals(&self.feats, &self.ratings, self.features, 4)?;
        Ok(eval)
    }
}

/// Fig. 5 view: per-post sentiment scores plus the strong-sentiment day
/// series. The carried `series` is a `Result` because an empty forum has no
/// date range ([`AnalyticsError::Empty`]) — exactly what a cold build
/// returns, so error answers stay bit-identical too.
#[derive(Clone)]
pub struct SentimentView {
    docs_seen: usize,
    scores: Vec<SentimentScores>,
    series: Result<SentimentSeries, AnalyticsError>,
}

impl SentimentView {
    /// Cold rebuild over the full forum/corpus.
    pub(crate) fn rebuild(forum: &Forum, corpus: &TokenCorpus, workers: usize) -> SentimentView {
        let annotator = PeakAnnotator::default();
        let scores = annotator.score_posts(forum, corpus, workers);
        let series = annotator.series_from_scores(forum, &scores);
        SentimentView {
            docs_seen: forum.len(),
            scores,
            series,
        }
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<SentimentView> {
        let corpus = delta.corpus?;
        if self.docs_seen != delta.posts_before || corpus.docs() != delta.forum.len() {
            return None;
        }
        let annotator = PeakAnnotator::default();
        let vocab = corpus.vocab();
        let mut scores = self.scores.clone();
        for doc in delta.posts_before..corpus.docs() {
            scores.push(annotator.analyzer.score_ids(corpus.doc(doc), vocab));
        }
        let series = match (&self.series, delta.forum.date_range()) {
            (_, None) => Err(AnalyticsError::Empty),
            // Previously empty forum: everything is delta, build whole.
            (Err(_), Some(_)) => annotator.series_from_scores(delta.forum, &scores),
            (Ok(prior), Some((start, end))) => embed_sentiment(
                prior,
                start,
                end,
                &delta.forum.posts[delta.posts_before..],
                &scores[delta.posts_before..],
            ),
        };
        Some(SentimentView {
            docs_seen: delta.forum.len(),
            scores,
            series,
        })
    }

    /// Finishing pass: the Fig. 5 annotation tail over carried scores.
    pub(crate) fn finish(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
        k: usize,
    ) -> Result<Vec<AnnotatedPeak>, AnalyticsError> {
        let series = self.series.clone()?;
        PeakAnnotator::default().annotate_from_scores(forum, corpus, k, &self.scores, series)
    }
}

/// Re-embed a carried sentiment series into the widened date range and add
/// the delta posts — exact integer arithmetic, so the per-day counts equal
/// a cold build over the full forum.
fn embed_sentiment(
    prior: &SentimentSeries,
    start: analytics::time::Date,
    end: analytics::time::Date,
    new_posts: &[social::post::Post],
    new_scores: &[SentimentScores],
) -> Result<SentimentSeries, AnalyticsError> {
    let mut pos = prior.strong_positive.embedded(start, end)?;
    let mut neg = prior.strong_negative.embedded(start, end)?;
    for (post, s) in new_posts.iter().zip(new_scores) {
        if s.is_strong_positive() {
            pos.add(post.date, 1.0);
        } else if s.is_strong_negative() {
            neg.add(post.date, 1.0);
        }
    }
    Ok(SentimentSeries {
        strong_positive: pos,
        strong_negative: neg,
    })
}

/// Fig. 6 view: the keyword-occurrence day series behind outage detection.
#[derive(Clone)]
pub struct OutageView {
    docs_seen: usize,
    series: Result<DailySeries, AnalyticsError>,
}

impl OutageView {
    /// Cold rebuild over the full forum/corpus.
    pub(crate) fn rebuild(forum: &Forum, corpus: &TokenCorpus, workers: usize) -> OutageView {
        OutageView {
            docs_seen: forum.len(),
            series: OutageDetector::default().keyword_series_interned(forum, corpus, workers),
        }
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<OutageView> {
        let corpus = delta.corpus?;
        if self.docs_seen != delta.posts_before || corpus.docs() != delta.forum.len() {
            return None;
        }
        let detector = OutageDetector::default();
        let series = match (&self.series, delta.forum.date_range()) {
            (_, None) => Err(AnalyticsError::Empty),
            (prior, Some((start, end))) => {
                let embedded = match prior {
                    Ok(s) => s.embedded(start, end),
                    // Previously empty forum: start from zeros, the delta
                    // below covers every post.
                    Err(_) => DailySeries::zeros(start, end),
                };
                embedded.map(|mut series| {
                    let dict = CompiledDict::compile(&detector.dictionary, corpus.vocab());
                    let hits =
                        detector.doc_hits_range(&dict, corpus, delta.posts_before..corpus.docs());
                    for (post, h) in delta.forum.posts[delta.posts_before..].iter().zip(hits) {
                        if h > 0 {
                            series.add(post.date, h as f64);
                        }
                    }
                    series
                })
            }
        };
        Some(OutageView {
            docs_seen: delta.forum.len(),
            series,
        })
    }

    /// Finishing pass: robust-z peaks of the carried series, mapped to
    /// detections with the default detector's thresholds.
    pub(crate) fn finish(&self) -> Result<Vec<DetectedOutage>, AnalyticsError> {
        let series = self.series.as_ref().map_err(Clone::clone)?;
        let detector = OutageDetector::default();
        Ok(OutageDetector::peaks_to_detections(
            series.peaks(detector.min_peak_score, detector.refractory_days),
        ))
    }
}

/// §6 view: strong-negative post counts per 10° latitude band
/// (unnormalised; the finishing pass divides by the total).
#[derive(Clone)]
pub struct DeploymentView {
    docs_seen: usize,
    weights: [f64; 9],
}

impl DeploymentView {
    /// Cold rebuild over the full forum/corpus: one scoring pass, then the
    /// branchless [`kernels::masked_slot_counts`] band tally — integer
    /// counts, so identical to the per-post walk it replaced.
    pub(crate) fn rebuild(forum: &Forum, corpus: &TokenCorpus, workers: usize) -> DeploymentView {
        let analyzer = sentiment::analyzer::SentimentAnalyzer::default();
        let scores = analyzer.score_corpus(corpus, workers);
        let slots: Vec<u32> = forum
            .posts
            .iter()
            .map(|p| crate::service::country_lat_band(p.country) as u32)
            .collect();
        let neg = kernels::RowMask::from_fn(slots.len(), |i| scores[i].is_strong_negative());
        let mut weights = [0.0f64; 9];
        for (w, c) in weights
            .iter_mut()
            .zip(kernels::masked_slot_counts(&slots, 9, &neg))
        {
            *w = c as f64;
        }
        DeploymentView {
            docs_seen: forum.len(),
            weights,
        }
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<DeploymentView> {
        let corpus = delta.corpus?;
        if self.docs_seen != delta.posts_before || corpus.docs() != delta.forum.len() {
            return None;
        }
        let analyzer = sentiment::analyzer::SentimentAnalyzer::default();
        let vocab = corpus.vocab();
        let mut next = self.clone();
        for (doc, post) in
            (delta.posts_before..corpus.docs()).zip(&delta.forum.posts[delta.posts_before..])
        {
            if analyzer
                .score_ids(corpus.doc(doc), vocab)
                .is_strong_negative()
            {
                next.weights[crate::service::country_lat_band(post.country)] += 1.0;
            }
        }
        next.docs_seen = delta.forum.len();
        Some(next)
    }

    /// Finishing pass: normalise band counts into the planner's demand
    /// vector; `None` when no strong-negative signal exists (the service
    /// maps this to its `NoData` answer).
    pub(crate) fn finish(&self) -> Option<RegionalDemand> {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return None;
        }
        let mut weights = self.weights;
        for w in weights.iter_mut() {
            *w /= total;
        }
        Some(RegionalDemand {
            band_weights: weights,
        })
    }
}

/// Fig. 7 view: the memoized per-post work of the speed-trend pipeline —
/// OCR downlink extraction and strong-sentiment classification
/// ([`fulcrum::DocShot`]), indexed by document. The month loop itself
/// (medians, subsample RNG, annotations) is cheap and order-sensitive, so
/// the finishing pass re-runs it over the memo
/// ([`FulcrumAnalysis::analyze_shots`]): the loop structure — including
/// which months advance the subsample RNG — depends only on the shots, so
/// the replay is bit-identical to the cold inline-extraction path.
#[derive(Clone)]
pub struct SpeedTrendView {
    docs_seen: usize,
    shots: Vec<Option<fulcrum::DocShot>>,
}

impl SpeedTrendView {
    /// Cold rebuild: evaluate every post once. The forum's month range
    /// spans every post date, so the cold path evaluates exactly this set.
    pub(crate) fn rebuild(forum: &Forum, corpus: &TokenCorpus) -> SpeedTrendView {
        let analysis = FulcrumAnalysis::default();
        let vocab = corpus.vocab();
        let shots = forum
            .posts
            .iter()
            .enumerate()
            .map(|(i, post)| {
                fulcrum::DocShot::eval(post, || analysis.analyzer.score_ids(corpus.doc(i), vocab))
            })
            .collect();
        SpeedTrendView {
            docs_seen: forum.len(),
            shots,
        }
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<SpeedTrendView> {
        let corpus = delta.corpus?;
        if self.docs_seen != delta.posts_before || corpus.docs() != delta.forum.len() {
            return None;
        }
        let analysis = FulcrumAnalysis::default();
        let vocab = corpus.vocab();
        let mut next = self.clone();
        for (doc, post) in
            (delta.posts_before..corpus.docs()).zip(&delta.forum.posts[delta.posts_before..])
        {
            next.shots.push(fulcrum::DocShot::eval(post, || {
                analysis.analyzer.score_ids(corpus.doc(doc), vocab)
            }));
        }
        next.docs_seen = delta.forum.len();
        Some(next)
    }

    /// Finishing pass: the month loop over memoized shots.
    pub(crate) fn finish(
        &self,
        forum: &Forum,
        start: analytics::time::Month,
        end: analytics::time::Month,
    ) -> Result<Vec<MonthlyPoint>, AnalyticsError> {
        FulcrumAnalysis::default().analyze_shots(forum, start, end, |i, _| self.shots[i])
    }
}

/// §4.1 view: the emerging-topic miner paused at its cursor. The carried
/// [`MineState`] depends only on posts dated at or before `state.end`, so
/// an append whose posts are all strictly later resumes the window loop
/// where it stopped — O(new windows) instead of re-mining from day one. An
/// out-of-order (backdated) post would have changed already-evaluated
/// windows, so it drops the view for a cold relazy rebuild. The carried
/// `Result` mirrors the cold path's empty-forum error, keeping error
/// answers bit-identical too.
#[derive(Clone)]
pub struct EmergingTopicsView {
    docs_seen: usize,
    state: Result<MineState, AnalyticsError>,
}

impl EmergingTopicsView {
    /// Cold rebuild: run the miner to the end of the forum and keep its
    /// state.
    pub(crate) fn rebuild(forum: &Forum, corpus: &TokenCorpus) -> EmergingTopicsView {
        let miner = EmergingTopicMiner::default();
        let state = miner.mine_start(forum, corpus).map(|mut s| {
            miner.mine_run(forum, corpus, &mut s);
            s
        });
        EmergingTopicsView {
            docs_seen: forum.len(),
            state,
        }
    }

    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<EmergingTopicsView> {
        let corpus = delta.corpus?;
        if self.docs_seen != delta.posts_before || corpus.docs() != delta.forum.len() {
            return None;
        }
        let new_posts = &delta.forum.posts[delta.posts_before..];
        let state = match &self.state {
            // Previously empty forum: everything is delta, mine whole.
            Err(_) => return Some(EmergingTopicsView::rebuild(delta.forum, corpus)),
            Ok(prior) => {
                // A post dated at or before the mined range would have
                // changed already-evaluated windows (or the history
                // pre-load): drop and rebuild lazily.
                if new_posts.iter().any(|p| p.date <= prior.end) {
                    return None;
                }
                let mut next = prior.clone();
                if let Some((start, end)) = delta.forum.date_range() {
                    debug_assert_eq!(start, next.start, "later-dated posts keep the range start");
                    next.end = end;
                    EmergingTopicMiner::default().mine_run(delta.forum, corpus, &mut next);
                }
                Ok(next)
            }
        };
        Some(EmergingTopicsView {
            docs_seen: delta.forum.len(),
            state,
        })
    }

    /// Finishing pass: the canonical detection ordering over the carried
    /// state.
    pub(crate) fn finish(&self) -> Result<Vec<EmergingTopic>, AnalyticsError> {
        Ok(self.state.as_ref().map_err(Clone::clone)?.detections())
    }
}

/// One materialized view, tagged by answer family. Construction and
/// finishing are dispatched by the service (which owns the per-query
/// parameters); this enum owns the carry-forward.
#[derive(Clone)]
pub enum View {
    /// Fig. 1 curve accumulator.
    Curve(CurveView),
    /// Fig. 2 grid accumulator.
    Grid(GridView),
    /// Fig. 3 per-platform accumulator.
    Platform(PlatformView),
    /// Fig. 4 rated-index list.
    Mos(MosView),
    /// §5 predictor rated-index list.
    Predict(PredictView),
    /// Fig. 5 scores + day series.
    Sentiment(SentimentView),
    /// Fig. 6 keyword day series.
    Outage(OutageView),
    /// §6 band counts.
    Deployment(DeploymentView),
    /// Fig. 7 per-post memo.
    SpeedTrend(SpeedTrendView),
    /// §4.1 paused miner.
    EmergingTopics(EmergingTopicsView),
}

impl View {
    /// The view advanced by one committed batch, or `None` when it cannot
    /// be carried (corpus-backed view with no corpus built, or a
    /// generation mismatch) — dropping is always safe because a later
    /// query rebuilds the view cold with identical answers.
    fn advanced(&self, delta: &ViewDelta<'_>) -> Option<View> {
        match self {
            View::Curve(v) => v.advanced(delta).map(View::Curve),
            View::Grid(v) => v.advanced(delta).map(View::Grid),
            View::Platform(v) => v.advanced(delta).map(View::Platform),
            View::Mos(v) => v.advanced(delta).map(View::Mos),
            View::Predict(v) => v.advanced(delta).map(View::Predict),
            View::Sentiment(v) => v.advanced(delta).map(View::Sentiment),
            View::Outage(v) => v.advanced(delta).map(View::Outage),
            View::Deployment(v) => v.advanced(delta).map(View::Deployment),
            View::SpeedTrend(v) => v.advanced(delta).map(View::SpeedTrend),
            View::EmergingTopics(v) => v.advanced(delta).map(View::EmergingTopics),
        }
    }
}

/// The set of materialized views one generation carries. Shared-read,
/// install-on-first-use: racing queries may both rebuild the same view, but
/// installation is first-wins and both candidates are pure functions of the
/// generation's immutable corpus, so the outcome is deterministic.
#[derive(Default)]
pub struct ViewSet {
    views: RwLock<HashMap<ViewKey, Arc<View>>>,
}

impl ViewSet {
    /// The installed view for `key`, if any.
    pub(crate) fn get(&self, key: &ViewKey) -> Option<Arc<View>> {
        self.views.read().get(key).cloned()
    }

    /// Install `view` under `key` unless one is already installed
    /// (first-wins), returning the view that ends up installed.
    pub(crate) fn install(&self, key: ViewKey, view: View) -> Arc<View> {
        self.views
            .write()
            .entry(key)
            .or_insert_with(|| Arc::new(view))
            .clone()
    }

    /// Keys of every installed view, in a canonical (sorted) order — the
    /// order persistence snapshots them in.
    pub fn keys(&self) -> Vec<ViewKey> {
        let mut keys: Vec<ViewKey> = self.views.read().keys().copied().collect();
        keys.sort_by_key(|k| format!("{k:?}"));
        keys
    }

    /// Number of installed views.
    pub fn len(&self) -> usize {
        self.views.read().len()
    }

    /// True when no view is installed.
    pub fn is_empty(&self) -> bool {
        self.views.read().is_empty()
    }

    /// The successor generation's view set: every carried view advanced by
    /// the committed batch in O(delta); views that cannot be carried are
    /// dropped (and lazily rebuilt on next use, with identical answers).
    pub(crate) fn advanced(&self, delta: &ViewDelta<'_>) -> ViewSet {
        let views = self.views.read();
        let next: HashMap<ViewKey, Arc<View>> = views
            .iter()
            .filter_map(|(k, v)| v.advanced(delta).map(|nv| (*k, Arc::new(nv))))
            .collect();
        ViewSet {
            views: RwLock::new(next),
        }
    }
}
