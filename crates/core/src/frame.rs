//! Columnar session index — the struct-of-arrays mirror of a
//! [`CallDataset`].
//!
//! Every §3 analysis query used to re-walk `dataset.sessions` as an array
//! of full [`SessionRecord`] structs, paying a `network_mean()` /
//! `engagement()` match and a four-range confounder check per session per
//! query. At the paper's ~200 M-call scale that per-record walk is the
//! dominant cost. The [`SessionFrame`] materialises the hot fields **once**
//! (at service build time) into dense per-metric `Vec<f64>` columns plus a
//! precomputed reference-range bitmask, so the correlation engine streams
//! cache-friendly contiguous memory instead of striding through ~250-byte
//! records — and fans chunks of the columns out across scoped worker
//! threads.
//!
//! Column `i` always describes `dataset.sessions[i]`: the frame is built by
//! contiguous chunks concatenated in order, so frame-based aggregates visit
//! sessions in exactly the per-record order and their floating-point results
//! are bit-identical to the array-of-structs reference implementations
//! (asserted by the `frame_parity` suite).

use analytics::kernels::RowMask;
use analytics::time::Date;
use conference::platform::Platform;
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use std::ops::Range;
use std::sync::OnceLock;

/// Column slot of a network metric.
pub const fn net_index(metric: NetworkMetric) -> usize {
    match metric {
        NetworkMetric::LatencyMs => 0,
        NetworkMetric::LossPct => 1,
        NetworkMetric::JitterMs => 2,
        NetworkMetric::BandwidthMbps => 3,
    }
}

/// Column slot of an engagement metric.
pub const fn eng_index(metric: EngagementMetric) -> usize {
    match metric {
        EngagementMetric::Presence => 0,
        EngagementMetric::MicOn => 1,
        EngagementMetric::CamOn => 2,
    }
}

/// Bitmask with every network metric's reference bit set.
const ALL_IN_REFERENCE: u8 = 0b1111;

/// Lazily-derived columns memoized on the frame. Everything here is a pure
/// function of the row columns, recomputed on first use after any mutation
/// (`push`/`append` replace the whole struct with a fresh one), so a cache
/// can never outlive the rows it was derived from. Cloning a frame clones
/// whatever was already materialised — still valid, same rows.
#[derive(Debug, Clone, Default)]
struct FrameCaches {
    /// Ascending indices of the rated sliver (the MOS/predictor queries'
    /// gather list).
    rated_indices: OnceLock<Vec<usize>>,
    /// Packed per-row §3.2 confounder masks, one per sweep metric — the
    /// filter the branchless kernels consume lane-wise.
    ref_masks: [OnceLock<RowMask>; 4],
    /// Per-row `Platform::ALL` slot, dense for the Fig. 3 slot kernel.
    platform_slots: OnceLock<Vec<u32>>,
}

/// Struct-of-arrays index over a call dataset: one dense column per
/// network-metric mean and P95, per engagement metric, plus the
/// platform/access/rating/date columns the service queries consume.
#[derive(Debug, Clone, Default)]
pub struct SessionFrame {
    len: usize,
    net_mean: [Vec<f64>; 4],
    net_p95: [Vec<f64>; 4],
    engagement: [Vec<f64>; 3],
    platform: Vec<Platform>,
    access: Vec<AccessType>,
    date: Vec<Date>,
    rating: Vec<Option<u8>>,
    /// Bit [`net_index`]`(m)` is set iff the session's mean of `m` lies in
    /// the paper's reference range — the §3.2 confounder filter reduced to
    /// one mask compare per session.
    ref_mask: Vec<u8>,
    /// Memoized derived columns; reset on every mutation.
    caches: FrameCaches,
}

impl SessionFrame {
    /// Materialise the frame from a dataset, building contiguous chunks on
    /// `workers` scoped threads. Column order always matches
    /// `dataset.sessions` order regardless of the worker count.
    pub fn from_dataset(dataset: &CallDataset, workers: usize) -> SessionFrame {
        let mut frame = SessionFrame::default();
        frame.extend_from_sessions(&dataset.sessions, workers);
        frame
    }

    /// Append `sessions` to every column — the incremental-ingest path.
    /// The delta columns are built in contiguous chunks on `workers`
    /// scoped threads and concatenated in order, and the existing columns
    /// are untouched, so extending a frame equals rebuilding it from the
    /// concatenated dataset (asserted by the frame tests) without paying
    /// the full re-materialisation.
    pub fn extend_from_sessions(&mut self, sessions: &[SessionRecord], workers: usize) {
        if sessions.is_empty() {
            return;
        }
        let parts = par_map_ranges(sessions.len(), workers, |range| {
            let mut part = SessionFrame::with_capacity(range.len());
            for s in &sessions[range] {
                part.push(s);
            }
            part
        });
        for part in parts {
            self.append(part);
        }
    }

    /// A new frame holding this frame's rows followed by `sessions` — the
    /// epoch-rollover path. Every column is copied exactly once into
    /// storage sized for the final row count (clone-then-extend would copy
    /// the prefix twice: once in the clone and again when the extend's
    /// realloc moves it), then the delta rows are appended in order, so
    /// the result is bit-identical to rebuilding from the concatenated
    /// dataset (asserted by the frame tests).
    pub fn extended_by(&self, sessions: &[SessionRecord], workers: usize) -> SessionFrame {
        let mut out = SessionFrame::with_capacity(self.len + sessions.len());
        for (dst, src) in out.net_mean.iter_mut().zip(&self.net_mean) {
            dst.extend_from_slice(src);
        }
        for (dst, src) in out.net_p95.iter_mut().zip(&self.net_p95) {
            dst.extend_from_slice(src);
        }
        for (dst, src) in out.engagement.iter_mut().zip(&self.engagement) {
            dst.extend_from_slice(src);
        }
        out.platform.extend_from_slice(&self.platform);
        out.access.extend_from_slice(&self.access);
        out.date.extend_from_slice(&self.date);
        out.rating.extend_from_slice(&self.rating);
        out.ref_mask.extend_from_slice(&self.ref_mask);
        out.len = self.len;
        out.extend_from_sessions(sessions, workers);
        out
    }

    /// Empty frame with per-column capacity reserved.
    pub(crate) fn with_capacity(n: usize) -> SessionFrame {
        SessionFrame {
            len: 0,
            net_mean: std::array::from_fn(|_| Vec::with_capacity(n)),
            net_p95: std::array::from_fn(|_| Vec::with_capacity(n)),
            engagement: std::array::from_fn(|_| Vec::with_capacity(n)),
            platform: Vec::with_capacity(n),
            access: Vec::with_capacity(n),
            date: Vec::with_capacity(n),
            rating: Vec::with_capacity(n),
            ref_mask: Vec::with_capacity(n),
            caches: FrameCaches::default(),
        }
    }

    /// Append one session to every column.
    fn push(&mut self, s: &SessionRecord) {
        let mut mask = 0u8;
        for metric in NetworkMetric::ALL {
            let slot = net_index(metric);
            let mean = s.network_mean(metric);
            self.net_mean[slot].push(mean);
            self.net_p95[slot].push(s.network_p95(metric));
            let (lo, hi) = metric.reference_range();
            if mean >= lo && mean <= hi {
                mask |= 1 << slot;
            }
        }
        for metric in EngagementMetric::ALL {
            self.engagement[eng_index(metric)].push(s.engagement(metric));
        }
        self.platform.push(s.platform);
        self.access.push(s.access);
        self.date.push(s.date);
        self.rating.push(s.rating);
        self.ref_mask.push(mask);
        self.len += 1;
        self.caches = FrameCaches::default();
    }

    /// Concatenate another frame's columns after this one's.
    fn append(&mut self, other: SessionFrame) {
        for (mine, theirs) in self.net_mean.iter_mut().zip(other.net_mean) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.net_p95.iter_mut().zip(other.net_p95) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.engagement.iter_mut().zip(other.engagement) {
            mine.extend(theirs);
        }
        self.platform.extend(other.platform);
        self.access.extend(other.access);
        self.date.extend(other.date);
        self.rating.extend(other.rating);
        self.ref_mask.extend(other.ref_mask);
        self.len += other.len;
        self.caches = FrameCaches::default();
    }

    /// Number of sessions indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no sessions are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Session-mean column of one network metric.
    pub fn net_mean(&self, metric: NetworkMetric) -> &[f64] {
        &self.net_mean[net_index(metric)]
    }

    /// Session-P95 column of one network metric.
    pub fn net_p95(&self, metric: NetworkMetric) -> &[f64] {
        &self.net_p95[net_index(metric)]
    }

    /// Column of one engagement metric.
    pub fn engagement(&self, metric: EngagementMetric) -> &[f64] {
        &self.engagement[eng_index(metric)]
    }

    /// Platform column.
    pub fn platform(&self) -> &[Platform] {
        &self.platform
    }

    /// Access-technology column.
    pub fn access(&self) -> &[AccessType] {
        &self.access
    }

    /// Calendar-day column.
    pub fn date(&self) -> &[Date] {
        &self.date
    }

    /// Explicit-rating column (`None` for the unsampled majority).
    pub fn rating(&self) -> &[Option<u8>] {
        &self.rating
    }

    /// Whether session `i` sits in the reference range for every network
    /// metric except `sweep` — the §3.2 confounder filter as a single mask
    /// compare against the precomputed reference bits.
    #[inline]
    pub fn in_reference_except(&self, i: usize, sweep: NetworkMetric) -> bool {
        self.ref_mask[i] | (1 << net_index(sweep)) == ALL_IN_REFERENCE
    }

    /// Indices of the rated sessions, ascending. Memoized: the MOS and
    /// predictor queries gather against this list on every call, so the
    /// frame materialises it once per generation instead of re-scanning
    /// the rating column per query.
    pub fn rated_indices(&self) -> &[usize] {
        self.caches.rated_indices.get_or_init(|| {
            (0..self.len)
                .filter(|&i| self.rating[i].is_some())
                .collect()
        })
    }

    /// Packed §3.2 confounder bitmask for a sweep metric: bit `i` is set iff
    /// [`SessionFrame::in_reference_except`]`(i, sweep)`. Memoized per sweep
    /// metric; the branchless kernels consume it word-wise instead of
    /// re-evaluating the mask compare per row per query.
    pub fn ref_row_mask(&self, sweep: NetworkMetric) -> &RowMask {
        self.caches.ref_masks[net_index(sweep)]
            .get_or_init(|| RowMask::from_fn(self.len, |i| self.in_reference_except(i, sweep)))
    }

    /// Dense per-row platform slot (position in [`Platform::ALL`]), the
    /// Fig. 3 slot-binned kernel's slot column. Memoized.
    pub fn platform_slots(&self) -> &[u32] {
        self.caches.platform_slots.get_or_init(|| {
            self.platform
                .iter()
                .map(|p| {
                    Platform::ALL
                        .iter()
                        .position(|q| q == p)
                        .expect("Platform::ALL covers every variant") as u32
                })
                .collect()
        })
    }

    /// Serialise every column into `w` (snapshot format). Floats are
    /// written as raw IEEE-754 bits, so a decoded frame is bit-identical —
    /// the property the recovery invariant rests on.
    pub(crate) fn encode_bin(&self, w: &mut serde::bin::Writer) {
        w.put_u64(self.len as u64);
        for col in &self.net_mean {
            for &v in col {
                w.put_f64(v);
            }
        }
        for col in &self.net_p95 {
            for &v in col {
                w.put_f64(v);
            }
        }
        for col in &self.engagement {
            for &v in col {
                w.put_f64(v);
            }
        }
        for &p in &self.platform {
            w.put_u8(crate::persist::platform_tag(p));
        }
        for &a in &self.access {
            w.put_u8(crate::persist::access_tag(a));
        }
        for &d in &self.date {
            w.put_i32(d.days());
        }
        for &rating in &self.rating {
            match rating {
                None => w.put_u8(0xFF),
                Some(x) => w.put_u8(x),
            }
        }
        w.put_bytes(&self.ref_mask);
    }

    /// Decode a frame previously written by [`SessionFrame::encode_bin`],
    /// validating every enum tag and the column lengths.
    pub(crate) fn decode_bin(
        r: &mut serde::bin::Reader<'_>,
    ) -> Result<SessionFrame, serde::bin::Error> {
        let len = r.get_u64()? as usize;
        let mut frame = SessionFrame::with_capacity(len);
        frame.len = len;
        for col in &mut frame.net_mean {
            for _ in 0..len {
                col.push(r.get_f64()?);
            }
        }
        for col in &mut frame.net_p95 {
            for _ in 0..len {
                col.push(r.get_f64()?);
            }
        }
        for col in &mut frame.engagement {
            for _ in 0..len {
                col.push(r.get_f64()?);
            }
        }
        for _ in 0..len {
            frame
                .platform
                .push(crate::persist::platform_from_tag(r.get_u8()?)?);
        }
        for _ in 0..len {
            frame
                .access
                .push(crate::persist::access_from_tag(r.get_u8()?)?);
        }
        for _ in 0..len {
            frame.date.push(Date::from_days(r.get_i32()?));
        }
        for _ in 0..len {
            frame.rating.push(match r.get_u8()? {
                0xFF => None,
                x => Some(x),
            });
        }
        let masks = r.get_bytes()?;
        if masks.len() != len {
            return Err(serde::bin::Error::Corrupt(
                "ref-mask column length disagrees with frame length",
            ));
        }
        if masks.iter().any(|m| *m > ALL_IN_REFERENCE) {
            return Err(serde::bin::Error::Corrupt("ref-mask has unknown bits set"));
        }
        frame.ref_mask = masks.to_vec();
        Ok(frame)
    }
}

/// Split `[0, len)` into up to `workers` contiguous near-equal ranges (always
/// at least one range, possibly empty, so aggregation loops need no special
/// empty-input case).
pub fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let chunks = workers.max(1).min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Fewest elements a chunk must hold before a thread spawn pays for
/// itself; columnar work is tens of nanoseconds per element, so anything
/// smaller loses more to spawn/join than the fan-out wins.
const MIN_CHUNK_ELEMENTS: usize = 4096;

/// Chunks handed to each available core. Every chunk runs on its own
/// scoped thread, so more than one per core only adds scheduler churn.
const CHUNKS_PER_CORE: usize = 1;

/// Cores the OS will actually run us on, probed once.
fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Adaptive work-splitting: the requested `workers` capped to what the
/// machine can run (`cores × CHUNKS_PER_CORE`) and to what the input can
/// feed (`len / MIN_CHUNK_ELEMENTS`), never below one. Because chunks are
/// contiguous and merged in chunk order everywhere, *any* chunk count
/// yields bit-identical results — this only decides how much spawn cost is
/// worth paying.
fn adaptive_chunks(len: usize, workers: usize) -> usize {
    workers
        .min(available_cores() * CHUNKS_PER_CORE)
        .min(len / MIN_CHUNK_ELEMENTS)
        .max(1)
}

/// Map `f` over adaptively-sized chunk ranges of `[0, len)` on scoped
/// worker threads, returning the per-chunk results **in chunk order** (so
/// order-sensitive merges reproduce the sequential visit order). `workers`
/// is an upper bound: the split falls back to fewer chunks — down to a
/// single inline one, paying no spawn cost — when the input is too small
/// to amortise thread spawns or the machine has fewer cores (see
/// [`chunk_ranges`] for the range arithmetic). The chunk-order merge
/// discipline makes any chunk count bit-identical, so the adaptation never
/// changes results.
///
/// # Panics
///
/// Re-raises the original panic of any worker that died.
pub fn par_map_ranges<T, F>(len: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    par_map_on(chunk_ranges(len, adaptive_chunks(len, workers)), f)
}

/// The spawn machinery behind [`par_map_ranges`], over explicit ranges —
/// split out so tests can pin the multi-chunk path regardless of how many
/// cores the test machine has.
fn par_map_on<T, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot, range) in slots.iter_mut().zip(ranges) {
            let f = &f;
            scope.spawn(move |_| {
                *slot = Some(f(range));
            });
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk worker fills its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static CallDataset {
        static DS: OnceLock<CallDataset> = OnceLock::new();
        DS.get_or_init(|| generate(&DatasetConfig::small(400, 77)))
    }

    #[test]
    fn columns_mirror_the_records() {
        let ds = dataset();
        let frame = SessionFrame::from_dataset(ds, 4);
        assert_eq!(frame.len(), ds.len());
        assert!(!frame.is_empty());
        for (i, s) in ds.sessions.iter().enumerate() {
            for m in NetworkMetric::ALL {
                assert_eq!(frame.net_mean(m)[i], s.network_mean(m));
                assert_eq!(frame.net_p95(m)[i], s.network_p95(m));
            }
            for m in EngagementMetric::ALL {
                assert_eq!(frame.engagement(m)[i], s.engagement(m));
            }
            assert_eq!(frame.platform()[i], s.platform);
            assert_eq!(frame.access()[i], s.access);
            assert_eq!(frame.date()[i], s.date);
            assert_eq!(frame.rating()[i], s.rating);
        }
    }

    #[test]
    fn reference_mask_matches_the_filter() {
        let ds = dataset();
        let frame = SessionFrame::from_dataset(ds, 3);
        for (i, s) in ds.sessions.iter().enumerate() {
            for sweep in NetworkMetric::ALL {
                assert_eq!(
                    frame.in_reference_except(i, sweep),
                    crate::correlate::in_reference_except(s, sweep),
                    "session {i} sweep {sweep:?}"
                );
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_columns() {
        let ds = dataset();
        let one = SessionFrame::from_dataset(ds, 1);
        let eight = SessionFrame::from_dataset(ds, 8);
        assert_eq!(one.len(), eight.len());
        for m in NetworkMetric::ALL {
            assert_eq!(one.net_mean(m), eight.net_mean(m));
            assert_eq!(one.net_p95(m), eight.net_p95(m));
        }
        for m in EngagementMetric::ALL {
            assert_eq!(one.engagement(m), eight.engagement(m));
        }
        assert_eq!(one.rated_indices(), eight.rated_indices());
    }

    #[test]
    fn extending_a_frame_equals_rebuilding_it() {
        let ds = dataset();
        let split = ds.len() / 3;
        let mut incremental = SessionFrame::default();
        incremental.extend_from_sessions(&ds.sessions[..split], 4);
        incremental.extend_from_sessions(&ds.sessions[split..], 4);
        incremental.extend_from_sessions(&[], 4);
        let rebuilt = SessionFrame::from_dataset(ds, 4);
        assert_eq!(incremental.len(), rebuilt.len());
        for m in NetworkMetric::ALL {
            assert_eq!(incremental.net_mean(m), rebuilt.net_mean(m));
            assert_eq!(incremental.net_p95(m), rebuilt.net_p95(m));
        }
        for m in EngagementMetric::ALL {
            assert_eq!(incremental.engagement(m), rebuilt.engagement(m));
        }
        assert_eq!(incremental.platform(), rebuilt.platform());
        assert_eq!(incremental.access(), rebuilt.access());
        assert_eq!(incremental.date(), rebuilt.date());
        assert_eq!(incremental.rating(), rebuilt.rating());
        assert_eq!(incremental.rated_indices(), rebuilt.rated_indices());
    }

    #[test]
    fn extended_by_equals_rebuilding() {
        let ds = dataset();
        let split = ds.len() / 4;
        let mut base = SessionFrame::default();
        base.extend_from_sessions(&ds.sessions[..split], 4);
        let extended = base.extended_by(&ds.sessions[split..], 4);
        let rebuilt = SessionFrame::from_dataset(ds, 4);
        assert_eq!(base.len(), split, "the source frame is untouched");
        assert_eq!(extended.len(), rebuilt.len());
        for m in NetworkMetric::ALL {
            assert_eq!(extended.net_mean(m), rebuilt.net_mean(m));
            assert_eq!(extended.net_p95(m), rebuilt.net_p95(m));
        }
        for m in EngagementMetric::ALL {
            assert_eq!(extended.engagement(m), rebuilt.engagement(m));
        }
        assert_eq!(extended.platform(), rebuilt.platform());
        assert_eq!(extended.access(), rebuilt.access());
        assert_eq!(extended.date(), rebuilt.date());
        assert_eq!(extended.rating(), rebuilt.rating());
        assert_eq!(extended.rated_indices(), rebuilt.rated_indices());
        // An empty delta still yields a standalone, equal frame.
        let unchanged = rebuilt.extended_by(&[], 4);
        assert_eq!(unchanged.len(), rebuilt.len());
        assert_eq!(unchanged.rating(), rebuilt.rating());
    }

    #[test]
    fn empty_dataset_yields_empty_frame() {
        let frame = SessionFrame::from_dataset(&CallDataset::default(), 4);
        assert_eq!(frame.len(), 0);
        assert!(frame.is_empty());
        assert!(frame.rated_indices().is_empty());
        assert!(frame.net_mean(NetworkMetric::LatencyMs).is_empty());
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, workers) in [(0, 4), (1, 4), (7, 3), (100, 8), (5, 1), (3, 9)] {
            let ranges = chunk_ranges(len, workers);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= workers.max(1));
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous: {ranges:?}");
            }
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
        }
    }

    #[test]
    fn frame_round_trips_bit_identically() {
        let ds = dataset();
        let frame = SessionFrame::from_dataset(ds, 4);
        let mut w = serde::bin::Writer::new();
        frame.encode_bin(&mut w);
        let bytes = w.into_bytes();
        let mut r = serde::bin::Reader::new(&bytes);
        let back = SessionFrame::decode_bin(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), frame.len());
        for m in NetworkMetric::ALL {
            let (a, b) = (frame.net_mean(m), back.net_mean(m));
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
            let (a, b) = (frame.net_p95(m), back.net_p95(m));
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        for m in EngagementMetric::ALL {
            let (a, b) = (frame.engagement(m), back.engagement(m));
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        assert_eq!(back.platform(), frame.platform());
        assert_eq!(back.access(), frame.access());
        assert_eq!(back.date(), frame.date());
        assert_eq!(back.rating(), frame.rating());
        assert_eq!(back.ref_mask, frame.ref_mask);

        // Corrupt tag bytes must surface as decode errors, not panics.
        let mut broken = bytes.clone();
        let platform_col = 8 + frame.len() * 8 * 11;
        broken[platform_col] = 0x7F;
        assert!(SessionFrame::decode_bin(&mut serde::bin::Reader::new(&broken)).is_err());
    }

    #[test]
    fn empty_frame_round_trips() {
        let frame = SessionFrame::default();
        let mut w = serde::bin::Writer::new();
        frame.encode_bin(&mut w);
        let bytes = w.into_bytes();
        let back = SessionFrame::decode_bin(&mut serde::bin::Reader::new(&bytes)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn par_map_preserves_chunk_order() {
        let parts = par_map_ranges(100, 7, |r| r.clone());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
        // The spawned multi-chunk path keeps the same order, regardless of
        // how many cores this machine has.
        let parts = par_map_on(chunk_ranges(100, 7), |r| r.clone());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map_on(chunk_ranges(10, 4), |r| {
                if r.start == 0 {
                    panic!("chunk worker exploded");
                }
                r.len()
            })
        });
        let payload = result.expect_err("worker panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk worker exploded");
    }

    #[test]
    fn adaptive_split_falls_back_to_sequential_on_small_inputs() {
        // Below the per-chunk floor the whole input runs as one inline
        // chunk, whatever was requested.
        assert_eq!(adaptive_chunks(0, 8), 1);
        assert_eq!(adaptive_chunks(MIN_CHUNK_ELEMENTS - 1, 8), 1);
        assert_eq!(adaptive_chunks(MIN_CHUNK_ELEMENTS * 2, 1), 1);
        // Large inputs split, but never beyond the requested workers or
        // what the machine can run.
        let cap = available_cores() * CHUNKS_PER_CORE;
        let big = MIN_CHUNK_ELEMENTS * 64;
        assert_eq!(adaptive_chunks(big, 4), 4.min(cap));
        assert!(adaptive_chunks(big, 1024) <= cap);
        // The element floor bounds the chunk count even for huge worker
        // requests.
        assert!(adaptive_chunks(MIN_CHUNK_ELEMENTS * 3, 1024) <= 3);
    }

    #[test]
    fn adaptive_split_is_bit_identical_to_forced_chunks() {
        // The policy only changes how many chunks run, never what they
        // compute: frame columns built through the adaptive path equal a
        // forced multi-chunk build element-for-element.
        let ds = dataset();
        let adaptive = SessionFrame::from_dataset(ds, 4);
        let mut forced = SessionFrame::default();
        let parts = par_map_on(chunk_ranges(ds.len(), 4), |range| {
            let mut part = SessionFrame::with_capacity(range.len());
            for s in &ds.sessions[range] {
                part.push(s);
            }
            part
        });
        for part in parts {
            forced.append(part);
        }
        assert_eq!(adaptive.len(), forced.len());
        for m in NetworkMetric::ALL {
            assert_eq!(adaptive.net_mean(m), forced.net_mean(m));
            assert_eq!(adaptive.net_p95(m), forced.net_p95(m));
        }
        for m in EngagementMetric::ALL {
            assert_eq!(adaptive.engagement(m), forced.engagement(m));
        }
        assert_eq!(adaptive.rating(), forced.rating());
        assert_eq!(adaptive.ref_mask, forced.ref_mask);
    }
}
