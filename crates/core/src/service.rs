//! The USaaS facade: one service, typed queries, typed answers (§5, Fig. 8).
//!
//! *"USaaS collects such user feedback, both online and offline, finds
//! correlations, and shares useful user-centric insights back. The queries
//! could take as input the network/service under consideration, network
//! performance metrics and possible user actions of interest, application
//! QoE metrics, etc."*
//!
//! [`UsaasService::build`] ingests a conferencing dataset and a forum corpus
//! (through the parallel [`crate::ingest`] pipeline into the
//! [`crate::store::SignalStore`]) and then answers [`Query`] values — each
//! one a figure/analysis from the paper, plus the §5 flagship cross-network
//! query ("how do Starlink users perceive the conferencing service?") and
//! the §6 deployment-advice loop.

use crate::annotate::{AnnotatedPeak, PeakAnnotator};
use crate::cache::MemoCache;
use crate::correlate;
use crate::emerging::{EmergingTopic, EmergingTopicMiner};
use crate::frame::SessionFrame;
use crate::fulcrum::{FulcrumAnalysis, MonthlyPoint};
use crate::ingest::{self, IngestConfig, IngestReport, QuarantineEntry};
use crate::outage::{DetectedOutage, OutageDetector};
use crate::persist::{
    self, CompactionReport, Journal, JournalRecord, JournalStats, PersistError, PersistedHealth,
    SnapshotContents, JOURNAL_FILE,
};
use crate::predict::{self, Evaluation, FeatureSet};
use crate::signals::{Signal, SignalKind};
use crate::source::{ItemSource, RawItem, Source};
use crate::store::SignalStore;
use crate::views::{
    CurveView, DeploymentView, EmergingTopicsView, GridView, MosView, OutageView, PlatformView,
    PredictView, SentimentView, SpeedTrendView, View, ViewDelta, ViewKey, ViewSet,
};
use analytics::binning::BinnedCurve;
use analytics::{kernels, AnalyticsError};
use conference::platform::Platform;
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use netsim::access::AccessType;
use parking_lot::{Mutex, RwLock};
use sentiment::corpus::TokenCorpus;
use serde::Serialize;
use social::post::{Forum, Post};
use starlink::constellation::{DeploymentPlanner, Recommendation, RegionalDemand};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Errors from the service layer.
#[derive(Debug, Clone)]
pub enum UsaasError {
    /// An underlying analytics step failed.
    Analytics(AnalyticsError),
    /// The query needs data the service does not hold.
    NoData(&'static str),
}

impl std::fmt::Display for UsaasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UsaasError::Analytics(e) => write!(f, "analytics error: {e}"),
            UsaasError::NoData(what) => write!(f, "no data: {what}"),
        }
    }
}

impl std::error::Error for UsaasError {}

impl From<AnalyticsError> for UsaasError {
    fn from(e: AnalyticsError) -> UsaasError {
        UsaasError::Analytics(e)
    }
}

/// Typed queries — each maps to a paper artefact.
#[derive(Debug, Clone)]
pub enum Query {
    /// Fig. 1: engagement vs a swept network metric.
    EngagementCurve {
        /// Metric being swept.
        sweep: NetworkMetric,
        /// Engagement metric reported.
        engagement: EngagementMetric,
        /// Number of bins.
        bins: usize,
    },
    /// Fig. 2: the latency × loss compounding grid.
    CompoundingGrid {
        /// Engagement metric (the paper uses Presence).
        engagement: EngagementMetric,
        /// Grid resolution per axis.
        bins: usize,
    },
    /// Fig. 3: per-platform sensitivity curves.
    PlatformSensitivity {
        /// Metric being swept.
        sweep: NetworkMetric,
        /// Engagement metric reported.
        engagement: EngagementMetric,
    },
    /// Fig. 4: engagement↔MOS curves and correlation ranking.
    MosCorrelation,
    /// §5: train and evaluate the MOS predictor.
    PredictMos {
        /// Feature set.
        features: FeatureSet,
    },
    /// Fig. 6: social outage detection.
    OutageTimeline,
    /// Fig. 5: annotated sentiment peaks.
    SentimentPeaks {
        /// How many peaks to annotate.
        k: usize,
    },
    /// Fig. 7: speeds, users, launches, and the Pos score.
    SpeedTrend,
    /// §4.1: emerging topics (the roaming detector).
    EmergingTopics,
    /// §5 flagship: how users of one access network experience the
    /// conferencing service, with social corroboration.
    CrossNetwork {
        /// Access network of interest.
        access: AccessType,
    },
    /// §6: which LEO shell to deploy next given regional sentiment.
    DeploymentAdvice,
}

/// §5 cross-network answer: implicit/explicit signals of the target
/// network's users, compared against everyone else, with the social-outage
/// join.
#[derive(Debug, Clone, Serialize)]
pub struct CrossNetworkReport {
    /// Sessions on the target access network.
    pub sessions: usize,
    /// Mean Presence of target-network users.
    pub mean_presence: f64,
    /// Mean Presence of all other users.
    pub others_presence: f64,
    /// Mean Mic On of target-network users.
    pub mean_mic_on: f64,
    /// Mean Cam On of target-network users.
    pub mean_cam_on: f64,
    /// MOS of the target network's rated sessions, if any were sampled.
    pub mos: Option<f64>,
    /// Mean Presence of target users on socially-detected outage days.
    pub outage_day_presence: Option<f64>,
    /// Number of detected outage days inside the telemetry window.
    pub outage_days_joined: usize,
}

/// Typed answers.
#[derive(Debug, Clone)]
pub enum Answer {
    /// A binned curve.
    Curve(BinnedCurve),
    /// Per-platform curves.
    PlatformCurves(Vec<(Platform, BinnedCurve)>),
    /// A 2-D grid.
    Grid(correlate::Grid2d),
    /// MOS curves per engagement metric plus the correlation ranking.
    Mos {
        /// Curve per engagement metric.
        curves: Vec<(EngagementMetric, BinnedCurve)>,
        /// Pearson ranking, strongest first.
        ranking: Vec<(EngagementMetric, f64)>,
    },
    /// Predictor evaluation.
    Prediction(Evaluation),
    /// Detected outages.
    Outages(Vec<DetectedOutage>),
    /// Annotated sentiment peaks.
    Peaks(Vec<AnnotatedPeak>),
    /// Fig. 7 monthly series.
    Speeds(Vec<MonthlyPoint>),
    /// Emerging topics.
    Topics(Vec<EmergingTopic>),
    /// Cross-network report.
    CrossNetwork(CrossNetworkReport),
    /// Deployment recommendations (ranked).
    Deployment(Vec<Recommendation>),
}

/// Memoization key of a [`Query`]: same variants, but `Eq + Hash` (the
/// parameter types all hash; `FeatureSet` is folded to its variant tag).
/// Crate-private on purpose — callers keep the ergonomic `Query` surface
/// and the cache keying stays an implementation detail shared by the
/// single-service and cluster answer caches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum QueryKey {
    EngagementCurve {
        sweep: NetworkMetric,
        engagement: EngagementMetric,
        bins: usize,
    },
    CompoundingGrid {
        engagement: EngagementMetric,
        bins: usize,
    },
    PlatformSensitivity {
        sweep: NetworkMetric,
        engagement: EngagementMetric,
    },
    MosCorrelation,
    PredictMos {
        features: u8,
    },
    OutageTimeline,
    SentimentPeaks {
        k: usize,
    },
    SpeedTrend,
    EmergingTopics,
    CrossNetwork {
        access: AccessType,
    },
    DeploymentAdvice,
}

impl QueryKey {
    pub(crate) fn of(query: &Query) -> QueryKey {
        match *query {
            Query::EngagementCurve {
                sweep,
                engagement,
                bins,
            } => QueryKey::EngagementCurve {
                sweep,
                engagement,
                bins,
            },
            Query::CompoundingGrid { engagement, bins } => {
                QueryKey::CompoundingGrid { engagement, bins }
            }
            Query::PlatformSensitivity { sweep, engagement } => {
                QueryKey::PlatformSensitivity { sweep, engagement }
            }
            Query::MosCorrelation => QueryKey::MosCorrelation,
            Query::PredictMos { features } => QueryKey::PredictMos {
                features: match features {
                    FeatureSet::NetworkOnly => 0,
                    FeatureSet::EngagementOnly => 1,
                    FeatureSet::Full => 2,
                },
            },
            Query::OutageTimeline => QueryKey::OutageTimeline,
            Query::SentimentPeaks { k } => QueryKey::SentimentPeaks { k },
            Query::SpeedTrend => QueryKey::SpeedTrend,
            Query::EmergingTopics => QueryKey::EmergingTopics,
            Query::CrossNetwork { access } => QueryKey::CrossNetwork { access },
            Query::DeploymentAdvice => QueryKey::DeploymentAdvice,
        }
    }
}

/// Which materialized view (if any) backs a query. `OutageTimeline` and
/// `CrossNetwork` return `None` here but still share the
/// [`ViewKey::Outage`] view through [`Generation::outage_detections`].
fn view_key_of(query: &Query) -> Option<ViewKey> {
    match *query {
        Query::EngagementCurve {
            sweep,
            engagement,
            bins,
        } => Some(ViewKey::Curve {
            sweep,
            engagement,
            bins,
        }),
        Query::CompoundingGrid { engagement, bins } => Some(ViewKey::Grid { engagement, bins }),
        Query::PlatformSensitivity { sweep, engagement } => {
            Some(ViewKey::Platform { sweep, engagement })
        }
        Query::MosCorrelation => Some(ViewKey::Mos),
        Query::PredictMos { features } => Some(ViewKey::Predict { features }),
        Query::SentimentPeaks { .. } => Some(ViewKey::Sentiment),
        Query::DeploymentAdvice => Some(ViewKey::Deployment),
        Query::SpeedTrend => Some(ViewKey::SpeedTrend),
        Query::EmergingTopics => Some(ViewKey::EmergingTopics),
        Query::OutageTimeline | Query::CrossNetwork { .. } => None,
    }
}

/// Structurally-shared session storage: an immutable chain of `Arc`'d
/// chunks — the build-time corpus plus one chunk per committed append.
/// Epoch rollover clones only the chunk *list* (one `Arc` per past
/// append), never the records themselves, so carrying a 100k-session
/// corpus into the next generation costs O(appends) instead of an
/// O(corpus) record copy. Iteration order is chunk order, which is
/// exactly the append order the columnar frame mirrors.
#[derive(Clone, Default)]
pub struct SessionChunks {
    chunks: Vec<Arc<Vec<SessionRecord>>>,
    len: usize,
}

impl SessionChunks {
    /// Wrap an initial session corpus as the first chunk.
    pub fn from_vec(sessions: Vec<SessionRecord>) -> SessionChunks {
        let len = sessions.len();
        SessionChunks {
            chunks: vec![Arc::new(sessions)],
            len,
        }
    }

    /// A new chain sharing every existing chunk, with `delta` appended as
    /// one new chunk (skipped when empty).
    fn extended(&self, delta: Vec<SessionRecord>) -> SessionChunks {
        let mut next = self.clone();
        if !delta.is_empty() {
            next.len += delta.len();
            next.chunks.push(Arc::new(delta));
        }
        next
    }

    /// Total sessions across all chunks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no sessions are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate every session in append order.
    pub fn iter(&self) -> impl Iterator<Item = &SessionRecord> {
        self.chunks.iter().flat_map(|chunk| chunk.iter())
    }
}

/// One immutable epoch of the service's materialised state: the session
/// corpus and forum as of the last committed append, the columnar frame
/// and interned corpus mirroring them, and the answer cache for exactly
/// this epoch.
///
/// Queries pin an `Arc<Generation>` via [`UsaasService::snapshot`] and
/// compute against it, so an append committing mid-query swaps the
/// service's current generation without disturbing anything the in-flight
/// query reads. Each new generation starts with a fresh [`MemoCache`] —
/// epoch-based cache invalidation — so post-append queries recompute over
/// the extended data while pre-append answers die with their generation.
pub struct Generation {
    /// 0 for the build-time generation; +1 per committed append.
    epoch: u64,
    /// Structurally-shared session records: appends push one chunk instead
    /// of copying the corpus.
    sessions: SessionChunks,
    forum: Forum,
    /// Columnar mirror of the session chunks, materialised lazily on the
    /// first query that actually scans columns. Commits never build it:
    /// view-backed answers finish carried accumulators fed straight from
    /// the delta records, so the steady-state append+hot-query path stays
    /// O(delta) instead of paying an O(corpus) column copy per epoch. The
    /// build-time and recovered generations pre-fill the cell (their frame
    /// already exists), so cold full-scan queries there pay nothing extra.
    frame: OnceLock<SessionFrame>,
    /// Worker-thread budget; frame aggregation and corpus builds reuse it.
    workers: usize,
    /// Tokenize-once interned mirror of the forum, built lazily on the
    /// first §4 text query (chunk-parallel over `workers`) and shared by
    /// every sentiment/keyword/n-gram consumer. Appends grow it
    /// incrementally (existing ids never move) when it was already built.
    social_corpus: OnceLock<TokenCorpus>,
    /// Default-detector outage run, computed once and shared by the
    /// `OutageTimeline` and `CrossNetwork` queries (both need the same
    /// detection pass; the corpus is immutable within a generation).
    outage_cache: OnceLock<Result<Vec<DetectedOutage>, AnalyticsError>>,
    /// Memoized answers: every aggregate is a pure function of this
    /// generation's immutable corpus, so each distinct query computes once
    /// per epoch and repeats are cloned from the cache.
    answers: MemoCache<QueryKey, Result<Answer, UsaasError>>,
    /// Materialized views carried forward from the previous generation
    /// (advanced by O(delta) at commit) or installed on first use. Routed
    /// ahead of `answer_uncached`: a view-backed answer is a cheap
    /// finishing pass over the carried accumulator instead of a full
    /// recompute over the corpus.
    views: ViewSet,
}

impl Generation {
    fn new(
        epoch: u64,
        sessions: SessionChunks,
        forum: Forum,
        frame: OnceLock<SessionFrame>,
        workers: usize,
        social_corpus: OnceLock<TokenCorpus>,
        views: ViewSet,
    ) -> Generation {
        Generation {
            epoch,
            sessions,
            forum,
            frame,
            workers,
            social_corpus,
            outage_cache: OnceLock::new(),
            answers: MemoCache::default(),
            views,
        }
    }

    /// Epoch number: 0 at build time, incremented by every committed
    /// append.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The columnar session frame, materialised from the session chunks on
    /// first use. Chunks are appended in commit order and
    /// `extend_from_sessions` preserves record order, so the lazy build is
    /// bit-identical to materialising eagerly at every commit (asserted by
    /// the service tests and the parity suite).
    pub fn frame(&self) -> &SessionFrame {
        self.frame.get_or_init(|| {
            let mut frame = SessionFrame::with_capacity(self.sessions.len());
            for chunk in &self.sessions.chunks {
                frame.extend_from_sessions(chunk, self.workers);
            }
            frame
        })
    }

    /// The raw per-record sessions the frame mirrors (read access for
    /// analyses that need full [`conference::records::SessionRecord`]s).
    pub fn sessions(&self) -> &SessionChunks {
        &self.sessions
    }

    /// The forum corpus of this generation (read access for custom
    /// analyses and parity checks).
    pub fn forum(&self) -> &Forum {
        &self.forum
    }

    /// The forum's interned token corpus, built once per generation on
    /// first use. Identical for every worker count, so lazily building it
    /// never perturbs query results.
    pub fn social_corpus(&self) -> &TokenCorpus {
        self.social_corpus
            .get_or_init(|| self.forum.token_corpus(self.workers))
    }

    /// The shared default-detector outage detections, computed on first use
    /// as the finishing pass of the [`ViewKey::Outage`] view (installed
    /// here when absent, so appends carry the keyword series forward
    /// instead of re-scanning the corpus).
    fn outage_detections(&self) -> Result<&[DetectedOutage], UsaasError> {
        match self.outage_cache.get_or_init(|| {
            let view = match self.views.get(&ViewKey::Outage) {
                Some(view) => view,
                None => self.views.install(
                    ViewKey::Outage,
                    View::Outage(OutageView::rebuild(
                        &self.forum,
                        self.social_corpus(),
                        self.workers,
                    )),
                ),
            };
            if let View::Outage(v) = &*view {
                v.finish()
            } else {
                OutageDetector::default().detect_interned(
                    &self.forum,
                    self.social_corpus(),
                    self.workers,
                )
            }
        }) {
            Ok(d) => Ok(d),
            Err(e) => Err(UsaasError::Analytics(e.clone())),
        }
    }

    /// The materialized views installed on this generation (read access —
    /// `keys()` is what persistence snapshots).
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// Answer-cache lookups that found an existing entry (this epoch).
    pub fn cache_hits(&self) -> usize {
        self.answers.hits()
    }

    /// Answer-cache lookups that had to compute (this epoch).
    pub fn cache_misses(&self) -> usize {
        self.answers.misses()
    }

    /// Answer one query against this generation. Answers are memoized by
    /// the query's parameters: the first occurrence computes, repeats —
    /// sequential or racing inside a [`UsaasService::query_batch`] — clone
    /// the cached answer.
    pub fn query(&self, query: &Query) -> Result<Answer, UsaasError> {
        self.answers
            .get_or_compute(QueryKey::of(query), || self.answer_routed(query))
    }

    /// Route one query: view-backed families finish their materialized
    /// accumulator (rebuilding and installing the view first if this
    /// generation does not carry it); everything else takes the full
    /// compute path. Routing sits *under* the [`MemoCache`], so repeats of
    /// the same query never re-run even the finishing pass.
    fn answer_routed(&self, query: &Query) -> Result<Answer, UsaasError> {
        match view_key_of(query) {
            Some(key) => self.answer_view_backed(query, key),
            None => self.answer_uncached(query),
        }
    }

    /// The installed view for `key`, rebuilding and installing it when this
    /// generation does not carry one.
    fn view(&self, key: ViewKey) -> Result<Arc<View>, UsaasError> {
        if let Some(view) = self.views.get(&key) {
            return Ok(view);
        }
        let built = self.materialize_view(key)?;
        Ok(self.views.install(key, built))
    }

    /// Cold-rebuild one view from this generation's corpus. The
    /// construction parameters (bin counts, min-count thresholds) match
    /// [`Generation::answer_fresh`] exactly, and errors (e.g. a zero bin
    /// count) surface as the same [`AnalyticsError`] the full compute
    /// raises, so routing through views never changes an answer — only the
    /// cost of producing it.
    fn materialize_view(&self, key: ViewKey) -> Result<View, UsaasError> {
        Ok(match key {
            ViewKey::Curve {
                sweep,
                engagement,
                bins,
            } => View::Curve(CurveView::rebuild(
                self.frame(),
                sweep,
                engagement,
                bins,
                self.workers,
            )?),
            ViewKey::Grid { engagement, bins } => View::Grid(GridView::rebuild(
                self.frame(),
                engagement,
                bins,
                self.workers,
            )?),
            ViewKey::Platform { sweep, engagement } => View::Platform(PlatformView::rebuild(
                self.frame(),
                sweep,
                engagement,
                4,
                self.workers,
            )?),
            ViewKey::Mos => View::Mos(MosView::rebuild(self.frame())),
            ViewKey::Predict { features } => {
                View::Predict(PredictView::rebuild(self.frame(), features))
            }
            ViewKey::Sentiment => View::Sentiment(SentimentView::rebuild(
                &self.forum,
                self.social_corpus(),
                self.workers,
            )),
            ViewKey::Outage => View::Outage(OutageView::rebuild(
                &self.forum,
                self.social_corpus(),
                self.workers,
            )),
            ViewKey::Deployment => View::Deployment(DeploymentView::rebuild(
                &self.forum,
                self.social_corpus(),
                self.workers,
            )),
            ViewKey::SpeedTrend => {
                View::SpeedTrend(SpeedTrendView::rebuild(&self.forum, self.social_corpus()))
            }
            ViewKey::EmergingTopics => View::EmergingTopics(EmergingTopicsView::rebuild(
                &self.forum,
                self.social_corpus(),
            )),
        })
    }

    /// Answer a view-backed query family by finishing its view. The
    /// wildcard arm is unreachable for a well-formed `view_key_of` mapping
    /// but falls back to the full compute rather than panicking.
    fn answer_view_backed(&self, query: &Query, key: ViewKey) -> Result<Answer, UsaasError> {
        let view = self.view(key)?;
        match (&*view, query) {
            (View::Curve(v), Query::EngagementCurve { .. }) => Ok(Answer::Curve(v.finish(8))),
            (View::Grid(v), Query::CompoundingGrid { .. }) => Ok(Answer::Grid(v.finish(5))),
            (View::Platform(v), Query::PlatformSensitivity { .. }) => {
                Ok(Answer::PlatformCurves(v.finish(5)))
            }
            (View::Mos(v), Query::MosCorrelation) => {
                let (curves, ranking) = v.finish()?;
                Ok(Answer::Mos { curves, ranking })
            }
            (View::Predict(v), Query::PredictMos { .. }) => Ok(Answer::Prediction(v.finish()?)),
            (View::Sentiment(v), Query::SentimentPeaks { k }) => Ok(Answer::Peaks(v.finish(
                &self.forum,
                self.social_corpus(),
                *k,
            )?)),
            (View::Deployment(v), Query::DeploymentAdvice) => {
                let demand = v
                    .finish()
                    .ok_or(UsaasError::NoData("no strong-negative social signals"))?;
                Ok(Answer::Deployment(DeploymentPlanner::gen1().rank(&demand)))
            }
            (View::SpeedTrend(v), Query::SpeedTrend) => {
                // Same month-range derivation (and empty-forum error) as
                // the full compute path.
                let (first, last) = self
                    .forum
                    .date_range()
                    .map(|(a, b)| (a.month(), b.month()))
                    .ok_or(UsaasError::NoData("empty forum"))?;
                Ok(Answer::Speeds(v.finish(&self.forum, first, last)?))
            }
            (View::EmergingTopics(v), Query::EmergingTopics) => Ok(Answer::Topics(v.finish()?)),
            _ => self.answer_uncached(query),
        }
    }

    /// The full-recompute reference path: answer `query` from the raw
    /// corpus, bypassing both the answer cache and the materialized views.
    /// This is what the views are asserted bit-identical against (parity
    /// suite) and benchmarked against (`views_incremental`).
    pub fn answer_fresh(&self, query: &Query) -> Result<Answer, UsaasError> {
        self.answer_uncached(query)
    }

    /// The actual per-query compute, bypassing the answer cache.
    fn answer_uncached(&self, query: &Query) -> Result<Answer, UsaasError> {
        match query {
            Query::EngagementCurve {
                sweep,
                engagement,
                bins,
            } => Ok(Answer::Curve(correlate::engagement_curve_frame(
                self.frame(),
                *sweep,
                *engagement,
                *bins,
                8,
                self.workers,
            )?)),
            Query::CompoundingGrid { engagement, bins } => {
                Ok(Answer::Grid(correlate::compounding_grid_frame(
                    self.frame(),
                    *engagement,
                    *bins,
                    5,
                    self.workers,
                )?))
            }
            Query::PlatformSensitivity { sweep, engagement } => {
                Ok(Answer::PlatformCurves(correlate::platform_curves_frame(
                    self.frame(),
                    *sweep,
                    *engagement,
                    4,
                    5,
                    self.workers,
                )?))
            }
            Query::MosCorrelation => {
                let mut curves = Vec::new();
                for m in EngagementMetric::ALL {
                    curves.push((
                        m,
                        correlate::mos_by_engagement_frame(self.frame(), m, 4, 3)?,
                    ));
                }
                Ok(Answer::Mos {
                    curves,
                    ranking: correlate::mos_correlations_frame(self.frame())?,
                })
            }
            Query::PredictMos { features } => {
                let (_, eval) = predict::train_and_evaluate_frame(self.frame(), *features, 4)?;
                Ok(Answer::Prediction(eval))
            }
            Query::OutageTimeline => Ok(Answer::Outages(self.outage_detections()?.to_vec())),
            Query::SentimentPeaks { k } => {
                Ok(Answer::Peaks(PeakAnnotator::default().annotate_interned(
                    &self.forum,
                    self.social_corpus(),
                    *k,
                    self.workers,
                )?))
            }
            Query::SpeedTrend => {
                // The corpus window is min/max over posts — `posts` carries
                // no ordering guarantee, so first()/last() would hand a
                // shuffled forum an inverted (or truncated) month range.
                let (first, last) = self
                    .forum
                    .date_range()
                    .map(|(a, b)| (a.month(), b.month()))
                    .ok_or(UsaasError::NoData("empty forum"))?;
                Ok(Answer::Speeds(
                    FulcrumAnalysis::default().analyze_interned(
                        &self.forum,
                        self.social_corpus(),
                        first,
                        last,
                    )?,
                ))
            }
            Query::EmergingTopics => Ok(Answer::Topics(
                EmergingTopicMiner::default().mine_interned(&self.forum, self.social_corpus())?,
            )),
            Query::CrossNetwork { access } => self.cross_network(*access).map(Answer::CrossNetwork),
            Query::DeploymentAdvice => {
                let demand = self.sentiment_demand()?;
                Ok(Answer::Deployment(DeploymentPlanner::gen1().rank(&demand)))
            }
        }
    }

    /// §5 flagship query implementation, aggregated over frame columns:
    /// the access column compiles to a packed row mask, and the per-column
    /// means run branchless over it (`kernels::masked_mean` is bit-identical
    /// to gathering the selected rows in session order and folding — see the
    /// `analytics::kernels` module docs), so the report matches the
    /// per-record walk it replaced to the bit.
    fn cross_network(&self, access: AccessType) -> Result<CrossNetworkReport, UsaasError> {
        let frame = self.frame();
        let target_mask = kernels::RowMask::from_fn(frame.len(), |i| frame.access()[i] == access);
        if target_mask.count() == 0 {
            return Err(UsaasError::NoData("no sessions on the requested network"));
        }
        let others_mask = kernels::RowMask::from_fn(frame.len(), |i| frame.access()[i] != access);
        let target: Vec<usize> = (0..frame.len()).filter(|&i| target_mask.get(i)).collect();
        let presence_col = frame.engagement(EngagementMetric::Presence);
        let mic_col = frame.engagement(EngagementMetric::MicOn);
        let cam_col = frame.engagement(EngagementMetric::CamOn);
        let ratings: Vec<f64> = target
            .iter()
            .filter_map(|&i| frame.rating()[i])
            .map(f64::from)
            .collect();

        // Join: socially-detected outage days vs the telemetry. Only strong
        // spikes (major outages) are joined — transient local outages do not
        // degrade the whole satellite population. The detection pass itself
        // is shared with `OutageTimeline` through the service cache.
        let detections: Vec<DetectedOutage> = self
            .outage_detections()?
            .iter()
            .filter(|d| d.score >= 10.0)
            .copied()
            .collect();
        let dates = frame.date();
        let outage_presence: Vec<f64> = target
            .iter()
            .filter(|&&i| detections.iter().any(|d| d.date == dates[i]))
            .map(|&i| presence_col[i])
            .collect();
        let outage_days_joined = detections
            .iter()
            .filter(|d| target.iter().any(|&i| dates[i] == d.date))
            .count();

        let masked_mean = |col: &[f64], mask: &kernels::RowMask| {
            kernels::masked_mean(col, mask).ok_or(AnalyticsError::Empty)
        };
        Ok(CrossNetworkReport {
            sessions: target.len(),
            mean_presence: masked_mean(presence_col, &target_mask)?,
            others_presence: masked_mean(presence_col, &others_mask).unwrap_or(f64::NAN),
            mean_mic_on: masked_mean(mic_col, &target_mask)?,
            mean_cam_on: masked_mean(cam_col, &target_mask)?,
            mos: analytics::mean(&ratings).ok(),
            outage_day_presence: analytics::mean(&outage_presence).ok(),
            outage_days_joined,
        })
    }

    /// Convert per-country strong-negative social volume into the planner's
    /// latitude-band demand signal (§6). Scores every post once over the
    /// interned corpus (chunk-parallel), then tallies country bands through
    /// the branchless [`kernels::masked_slot_counts`] scatter — band
    /// weights are integer counts, so the demand vector is identical to
    /// the per-post string walk it replaced.
    fn sentiment_demand(&self) -> Result<RegionalDemand, UsaasError> {
        let analyzer = sentiment::analyzer::SentimentAnalyzer::default();
        let scores = analyzer.score_corpus(self.social_corpus(), self.workers);
        let slots: Vec<u32> = self
            .forum
            .posts
            .iter()
            .map(|p| country_lat_band(p.country) as u32)
            .collect();
        let neg = kernels::RowMask::from_fn(slots.len(), |i| scores[i].is_strong_negative());
        let counts = kernels::masked_slot_counts(&slots, 9, &neg);
        let mut weights = [0.0f64; 9];
        for (w, c) in weights.iter_mut().zip(counts) {
            *w = c as f64;
        }
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            return Err(UsaasError::NoData("no strong-negative social signals"));
        }
        for w in weights.iter_mut() {
            *w /= total;
        }
        Ok(RegionalDemand {
            band_weights: weights,
        })
    }
}

/// Most recent dead-letter entries a service keeps in memory; older ones
/// are evicted (the totals keep counting). Sized so a long-running daemon
/// under a lossy source cannot grow without bound while an operator still
/// sees a useful tail of what was dropped.
pub const DEAD_LETTER_CAP: usize = 1024;

/// Most recent recovery warnings kept in memory (same eviction story).
pub const RECOVERY_WARNING_CAP: usize = 256;

/// A bounded ring of the most recent entries plus a count of how many
/// older entries were evicted. Backs the dead-letter queue and the
/// recovery-warning log so a long-running daemon holds O(cap) memory while
/// the running totals stay exact.
#[derive(Debug, Clone)]
pub(crate) struct BoundedLog<T> {
    items: VecDeque<T>,
    cap: usize,
    dropped: usize,
}

impl<T: Clone> BoundedLog<T> {
    pub(crate) fn new(cap: usize) -> BoundedLog<T> {
        BoundedLog {
            items: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, item: T) {
        if self.items.len() == self.cap {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(item);
    }

    pub(crate) fn extend(&mut self, items: impl IntoIterator<Item = T>) {
        for item in items {
            self.push(item);
        }
    }

    /// Replace the contents wholesale (recovery installs its warning list
    /// this way); overflow beyond the cap counts as evictions.
    pub(crate) fn replace(&mut self, items: Vec<T>) {
        self.items.clear();
        self.dropped = items.len().saturating_sub(self.cap);
        self.items.extend(items.into_iter().skip(self.dropped));
    }

    pub(crate) fn to_vec(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> usize {
        self.dropped
    }

    pub(crate) fn set_dropped(&mut self, dropped: usize) {
        self.dropped = dropped;
    }
}

/// Running health totals accumulated across ingestion runs.
#[derive(Debug)]
struct HealthTotals {
    quarantined: usize,
    unfed: usize,
    breaker_trips: usize,
    /// Sources whose breaker ended the *most recent* run open.
    open_breakers: Vec<String>,
    /// The most recent quarantined items — the dead-letter queue,
    /// journaled and snapshotted so it survives restarts. Bounded:
    /// `quarantined` keeps the exact total while entries beyond
    /// [`DEAD_LETTER_CAP`] are evicted oldest-first.
    dead_letters: BoundedLog<QuarantineEntry>,
    /// What recovery had to repair or skip (truncated journal tail,
    /// corrupt snapshot fallback, journal-write failures). Empty on a
    /// clean open; bounded by [`RECOVERY_WARNING_CAP`].
    recovery_warnings: BoundedLog<String>,
}

impl Default for HealthTotals {
    fn default() -> HealthTotals {
        HealthTotals {
            quarantined: 0,
            unfed: 0,
            breaker_trips: 0,
            open_breakers: Vec::new(),
            dead_letters: BoundedLog::new(DEAD_LETTER_CAP),
            recovery_warnings: BoundedLog::new(RECOVERY_WARNING_CAP),
        }
    }
}

/// The service's health/staleness annotation, returned alongside answers
/// so operators can tell a fresh answer from one served while a source is
/// down.
#[derive(Debug, Clone)]
pub struct ServiceHealth {
    /// Epoch of the generation currently serving queries.
    pub epoch: u64,
    /// Sources whose circuit breaker ended the last ingestion run open —
    /// their items are missing until the source recovers.
    pub open_breakers: Vec<String>,
    /// Items dead-lettered across all ingestion runs.
    pub quarantined_total: usize,
    /// Items that never reached the worker pool across all runs.
    pub unfed_total: usize,
    /// Breaker trips across all ingestion runs.
    pub breaker_trips_total: usize,
    /// What persistence had to repair or could not do: journal tails
    /// truncated after a torn write, snapshot fallbacks after a checksum
    /// mismatch, journal appends that failed. Empty for a service that
    /// opened clean (or was never persisted). Bounded to the most recent
    /// [`RECOVERY_WARNING_CAP`] entries; see `recovery_warnings_dropped`.
    pub recovery_warnings: Vec<String>,
    /// Dead-letter entries evicted from the bounded in-memory ring. The
    /// evicted items still count in `quarantined_total`.
    pub dead_letters_dropped: usize,
    /// Recovery warnings evicted from the bounded in-memory ring.
    pub recovery_warnings_dropped: usize,
    /// Write-ahead-journal observability on a persisted service (bytes on
    /// disk, live record count, oldest live seq, compaction counters);
    /// `None` for an in-memory service.
    pub journal: Option<JournalStats>,
}

impl ServiceHealth {
    /// True when answers may be stale: an open breaker means a source is
    /// failing and its items have not been ingested, so queries are served
    /// from already-ingested signals only.
    pub fn is_stale(&self) -> bool {
        !self.open_breakers.is_empty()
    }

    /// True when anything has degraded ingestion or durability: open
    /// breakers, quarantined items, unfed items, or a recovery that had to
    /// repair corruption.
    pub fn is_degraded(&self) -> bool {
        self.is_stale()
            || self.quarantined_total > 0
            || self.unfed_total > 0
            || !self.recovery_warnings.is_empty()
    }
}

/// Watermarks of the newest full snapshot this process wrote — what a
/// differential checkpoint encodes its dirty suffixes against.
#[derive(Debug, Clone, Copy)]
struct DiffBase {
    /// Journal sequence the full snapshot covers.
    seq: u64,
    /// Session count at that snapshot.
    rows: usize,
    /// Post count at that snapshot.
    posts: usize,
}

/// Mutable persistence state: where the service lives on disk, the open
/// journal handle, and the last journal sequence durably written.
struct PersistState {
    dir: PathBuf,
    journal: Journal,
    /// Sequence of the newest record in the journal (0 before the first
    /// append). Monotonic and independent of the epoch: a run that
    /// quarantined everything journals without committing a generation.
    last_seq: u64,
    /// Base of the next differential checkpoint: set whenever this process
    /// writes a full snapshot, `None` before the first one (a reopened
    /// service starts with a full checkpoint rather than trusting a base
    /// it did not write).
    diff_base: Option<DiffBase>,
    /// Records currently live in the journal file (appends increment,
    /// compaction resets to the survivor count).
    live_records: u64,
    /// Seq of the oldest record still in the journal file (0 when empty).
    oldest_live_seq: u64,
    /// Compaction passes that actually dropped records.
    compactions: u64,
    /// Total records dropped across all compaction passes.
    records_compacted: u64,
}

/// The service: a shared append-only [`SignalStore`] plus a swappable
/// current [`Generation`]. Queries serve from a snapshot; committed
/// appends bump the epoch.
pub struct UsaasService {
    /// Append-only signal ledger, shared by every generation — ingestion
    /// writes here while queries keep serving.
    store: Arc<SignalStore>,
    /// The generation queries snapshot. Swapped atomically by commits.
    current: RwLock<Arc<Generation>>,
    /// Worker-thread budget the service was built with.
    workers: usize,
    /// Serialises appends; queries never take this.
    append_lock: Mutex<()>,
    health: Mutex<HealthTotals>,
    /// On-disk durability, attached by [`UsaasService::build_persistent`]
    /// or [`UsaasService::open_or_recover`]; `None` for a purely
    /// in-memory service.
    persist: Option<Mutex<PersistState>>,
}

impl UsaasService {
    /// Build the service: ingest both sources into the signal store and
    /// materialise the columnar session frame, both on `workers` threads.
    pub fn build(dataset: CallDataset, forum: Forum, workers: usize) -> UsaasService {
        let store = SignalStore::new();
        crate::ingest::ingest_all(&store, &dataset, &forum, workers);
        // The build-time frame is materialised eagerly (it is needed by the
        // first cold query anyway) and pre-fills the lazy cell.
        let frame_cell = OnceLock::new();
        let _ = frame_cell.set(SessionFrame::from_dataset(&dataset, workers));
        let generation = Generation::new(
            0,
            SessionChunks::from_vec(dataset.sessions),
            forum,
            frame_cell,
            workers,
            OnceLock::new(),
            ViewSet::default(),
        );
        UsaasService {
            store: Arc::new(store),
            current: RwLock::new(Arc::new(generation)),
            workers,
            append_lock: Mutex::new(()),
            health: Mutex::new(HealthTotals::default()),
            persist: None,
        }
    }

    /// Build a *durable* service in `dir`: ingest exactly as
    /// [`UsaasService::build`], then write the epoch-0 snapshot and open
    /// the journal, so every subsequent committed append survives a crash.
    /// Refuses a directory that already holds a persisted service — that
    /// is what [`UsaasService::open_or_recover`] is for.
    pub fn build_persistent(
        dataset: CallDataset,
        forum: Forum,
        workers: usize,
        dir: &Path,
    ) -> Result<UsaasService, PersistError> {
        std::fs::create_dir_all(dir)?;
        if dir.join(JOURNAL_FILE).exists() || !persist::snapshot_seqs(dir)?.is_empty() {
            return Err(PersistError::Corrupt {
                file: dir.display().to_string(),
                detail: "directory already holds a persisted service; open_or_recover it instead"
                    .to_string(),
            });
        }
        let mut svc = UsaasService::build(dataset, forum, workers);
        let journal = Journal::open_append(&dir.join(JOURNAL_FILE))?;
        svc.persist = Some(Mutex::new(PersistState {
            dir: dir.to_path_buf(),
            journal,
            last_seq: 0,
            diff_base: None,
            live_records: 0,
            oldest_live_seq: 0,
            compactions: 0,
            records_compacted: 0,
        }));
        svc.checkpoint()?;
        Ok(svc)
    }

    /// Reopen a persisted service: load the newest valid persisted state —
    /// a differential snapshot applied over its full base, or a full
    /// snapshot — replay the journal tail, and resume appending. Every
    /// repair along the way — a corrupt snapshot or diff skipped, a torn
    /// journal tail truncated — lands in
    /// `ServiceHealth::recovery_warnings` instead of failing the open; the
    /// open only errors when no snapshot loads at all.
    ///
    /// The recovery invariant (pinned by `tests/persist_recovery.rs`): the
    /// recovered service answers every query **bit-identically** to a
    /// service that lived through the same appends without crashing, for
    /// any worker count.
    pub fn open_or_recover(dir: &Path, workers: usize) -> Result<UsaasService, PersistError> {
        let mut warnings = Vec::new();
        let state = persist::load_latest_state(dir, workers, &mut warnings)?;
        let records = persist::read_and_repair_journal(&dir.join(JOURNAL_FILE), &mut warnings)?;
        // Journal stats before the replay loop consumes the records.
        let live_records = records.len() as u64;
        let oldest_live_seq = records.first().map(|r| r.seq).unwrap_or(0);

        let forum = Forum { posts: state.posts };
        let corpus_cell = OnceLock::new();
        if let Some(corpus) = state.corpus {
            let _ = corpus_cell.set(corpus);
        }
        // The snapshot carries the frame; pre-fill the lazy cell so queries
        // on the recovered generation never re-materialise it.
        let frame_cell = OnceLock::new();
        let _ = frame_cell.set(state.frame);
        let generation = Generation::new(
            state.epoch,
            SessionChunks::from_vec(state.sessions),
            forum,
            frame_cell,
            workers,
            corpus_cell,
            ViewSet::default(),
        );
        let svc = UsaasService {
            store: Arc::new(state.store),
            current: RwLock::new(Arc::new(generation)),
            workers,
            append_lock: Mutex::new(()),
            health: Mutex::new({
                let mut totals = HealthTotals {
                    quarantined: state.health.quarantined,
                    unfed: state.health.unfed,
                    breaker_trips: state.health.breaker_trips,
                    open_breakers: state.health.open_breakers,
                    ..HealthTotals::default()
                };
                let persisted = state.health.dead_letters.len();
                totals.dead_letters.extend(state.health.dead_letters);
                // Every quarantined item was once pushed into the ring, so
                // the pre-crash eviction count is derivable: total minus
                // what the snapshot still carried.
                totals
                    .dead_letters
                    .set_dropped(state.health.quarantined.saturating_sub(persisted));
                totals
            }),
            persist: None,
        };

        // Replay the tail: every journaled batch newer than the snapshot,
        // re-normalised and committed exactly as the original append was.
        let mut last_seq = state.journal_seq;
        let analyzer = sentiment::analyzer::SentimentAnalyzer::default();
        for record in records {
            if record.seq <= state.journal_seq {
                continue;
            }
            if record.seq != last_seq + 1 {
                warnings.push(format!(
                    "journal gap: expected seq {}, found {}",
                    last_seq + 1,
                    record.seq
                ));
            }
            let mut signals: Vec<Signal> = Vec::new();
            for s in &record.sessions {
                signals.extend(Signal::from_session(s));
            }
            for p in &record.posts {
                signals.push(Signal::from_post(p, &analyzer));
            }
            if !signals.is_empty() {
                svc.store.insert_batch(signals);
            }
            if !record.sessions.is_empty() || !record.posts.is_empty() {
                let _appending = svc.append_lock.lock();
                svc.commit_locked(record.sessions, record.posts);
            }
            let epoch_now = svc.snapshot().epoch;
            if epoch_now != record.epoch_after {
                warnings.push(format!(
                    "replayed seq {} landed on epoch {epoch_now}, journal recorded {}",
                    record.seq, record.epoch_after
                ));
            }
            {
                let mut totals = svc.health.lock();
                totals.quarantined += record.quarantined.len();
                totals.unfed += record.unfed;
                totals.breaker_trips += record.breaker_trips;
                totals.open_breakers = record.open_breakers;
                totals.dead_letters.extend(record.quarantined);
            }
            last_seq = record.seq;
        }

        // The recovered state carries its views: every key the snapshot
        // recorded is rebuilt deterministically on the post-replay
        // generation. (Replay re-extends the corpus, so a cold rebuild —
        // not a deserialized accumulator that could drift from replayed
        // state — is the correct recovery; the parity suite asserts the
        // rebuilt views answer bit-identically to an uncrashed service.)
        {
            let generation = svc.snapshot();
            for key in state.view_keys.iter().copied() {
                if generation.views.get(&key).is_none() {
                    match generation.materialize_view(key) {
                        Ok(view) => {
                            generation.views.install(key, view);
                        }
                        Err(e) => warnings
                            .push(format!("persisted view {key:?} could not be rebuilt: {e}")),
                    }
                }
            }
        }

        let journal = Journal::open_append(&dir.join(JOURNAL_FILE))?;
        svc.health.lock().recovery_warnings.replace(warnings);
        let mut svc = svc;
        svc.persist = Some(Mutex::new(PersistState {
            dir: dir.to_path_buf(),
            journal,
            last_seq,
            diff_base: None,
            live_records,
            oldest_live_seq,
            compactions: 0,
            records_compacted: 0,
        }));
        Ok(svc)
    }

    /// Durably checkpoint the current state, choosing the cheapest safe
    /// form: a **differential** snapshot — only the session/post suffixes
    /// dirtied since the last full snapshot this process wrote — when such
    /// a base exists and the dirty suffix is still smaller than the base;
    /// a **full** snapshot otherwise ([`UsaasService::checkpoint_full`]).
    /// Returns the written file's path. Errors with
    /// [`PersistError::NotPersistent`] on an in-memory service.
    ///
    /// The journal is deliberately **not** truncated here: recovery may
    /// still fall back to an older snapshot (or from a diff to its base
    /// plus replay) if this file is later damaged, and that fallback needs
    /// the older journal tail intact.
    pub fn checkpoint(&self) -> Result<PathBuf, PersistError> {
        let Some(persist) = &self.persist else {
            return Err(PersistError::NotPersistent);
        };
        // Holding the append lock freezes epoch/journal-seq/store together.
        let _appending = self.append_lock.lock();
        let generation = self.snapshot();
        let health = self.persisted_health();
        let view_keys = generation.views.keys();
        let mut state = persist.lock();
        if let Some(base) = state.diff_base {
            let rows = generation.sessions.len();
            let posts = generation.forum.len();
            // Diff while the dirty suffix stays smaller than the base; a
            // tail that has outgrown it means a full snapshot is no more
            // expensive to write and makes recovery one file again.
            let small =
                rows - base.rows <= base.rows.max(1) && posts - base.posts <= base.posts.max(1);
            if small {
                return persist::write_diff_snapshot(
                    &state.dir,
                    &persist::DiffContents {
                        epoch: generation.epoch,
                        journal_seq: state.last_seq,
                        base_seq: base.seq,
                        base_rows: base.rows,
                        base_posts: base.posts,
                        sessions: &generation.sessions,
                        posts: &generation.forum.posts,
                        health: &health,
                        view_keys: &view_keys,
                    },
                );
            }
        }
        Self::write_full_locked(&mut state, &generation, &self.store, &health, &view_keys)
    }

    /// Write a full snapshot unconditionally (atomic tmp → fsync →
    /// rename), prune old snapshots to the retention count, and make this
    /// snapshot the base for subsequent differential checkpoints. Returns
    /// the snapshot's path.
    pub fn checkpoint_full(&self) -> Result<PathBuf, PersistError> {
        let Some(persist) = &self.persist else {
            return Err(PersistError::NotPersistent);
        };
        let _appending = self.append_lock.lock();
        let generation = self.snapshot();
        let health = self.persisted_health();
        let view_keys = generation.views.keys();
        let mut state = persist.lock();
        Self::write_full_locked(&mut state, &generation, &self.store, &health, &view_keys)
    }

    /// Shared full-snapshot write: records the new diff base on success.
    fn write_full_locked(
        state: &mut PersistState,
        generation: &Generation,
        store: &SignalStore,
        health: &PersistedHealth,
        view_keys: &[ViewKey],
    ) -> Result<PathBuf, PersistError> {
        let path = persist::write_snapshot(
            &state.dir,
            &SnapshotContents {
                epoch: generation.epoch,
                journal_seq: state.last_seq,
                sessions: &generation.sessions,
                posts: &generation.forum.posts,
                frame: generation.frame(),
                corpus: generation.social_corpus.get(),
                store,
                health,
                view_keys,
            },
        )?;
        state.diff_base = Some(DiffBase {
            seq: state.last_seq,
            rows: generation.sessions.len(),
            posts: generation.forum.len(),
        });
        Ok(path)
    }

    /// The current health totals in their persisted form.
    fn persisted_health(&self) -> PersistedHealth {
        let totals = self.health.lock();
        PersistedHealth {
            quarantined: totals.quarantined,
            unfed: totals.unfed,
            breaker_trips: totals.breaker_trips,
            open_breakers: totals.open_breakers.clone(),
            dead_letters: totals.dead_letters.to_vec(),
        }
    }

    /// The dead-letter queue: the most recent quarantined items (bounded
    /// ring; `ServiceHealth::quarantined_total` keeps the exact count),
    /// surviving restarts on a persisted service.
    pub fn dead_letters(&self) -> Vec<QuarantineEntry> {
        self.health.lock().dead_letters.to_vec()
    }

    /// Pin the current generation — a cheap `Arc` clone. Hold it to read a
    /// consistent dataset/forum/frame/corpus view across concurrent
    /// appends.
    pub fn snapshot(&self) -> Arc<Generation> {
        self.current.read().clone()
    }

    /// Epoch of the generation currently serving queries.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Signal counts by family `(implicit, explicit, social)` — the paper's
    /// point in one tuple: implicit signals dwarf explicit ones.
    pub fn signal_counts(&self) -> (usize, usize, usize) {
        (
            self.store.count_kind(SignalKind::Implicit),
            self.store.count_kind(SignalKind::Explicit),
            self.store.count_kind(SignalKind::Social),
        )
    }

    /// The underlying store (read access for custom analyses).
    pub fn store(&self) -> &SignalStore {
        &self.store
    }

    /// Answer-cache hits of the current generation.
    pub fn cache_hits(&self) -> usize {
        self.snapshot().cache_hits()
    }

    /// Answer-cache misses of the current generation (distinct queries
    /// seen this epoch).
    pub fn cache_misses(&self) -> usize {
        self.snapshot().cache_misses()
    }

    /// Answer one query against the current generation. An append
    /// committing mid-query does not disturb the computation — the query
    /// holds its generation snapshot; the *next* query sees the new epoch.
    pub fn query(&self, query: &Query) -> Result<Answer, UsaasError> {
        self.snapshot().query(query)
    }

    /// Answer one query and annotate it with the service's health — the
    /// degraded-serving contract: while a source's breaker is open the
    /// answer is still served (from already-ingested signals), and the
    /// annotation says it may be stale.
    pub fn query_with_health(&self, query: &Query) -> (Result<Answer, UsaasError>, ServiceHealth) {
        (self.query(query), self.health())
    }

    /// Current health/staleness annotation.
    pub fn health(&self) -> ServiceHealth {
        // Journal stats take the persist lock; grab them (and release)
        // before the health lock. `ingest_append` holds persist while
        // pushing a journal-failure warning into health, so taking them in
        // the other order here could deadlock.
        let journal = self.journal_stats();
        let epoch = self.epoch();
        let totals = self.health.lock();
        ServiceHealth {
            epoch,
            open_breakers: totals.open_breakers.clone(),
            quarantined_total: totals.quarantined,
            unfed_total: totals.unfed,
            breaker_trips_total: totals.breaker_trips,
            recovery_warnings: totals.recovery_warnings.to_vec(),
            dead_letters_dropped: totals.dead_letters.dropped(),
            recovery_warnings_dropped: totals.recovery_warnings.dropped(),
            journal,
        }
    }

    /// True when the service is backed by a snapshot + journal directory.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Write-ahead-journal observability: bytes on disk, live record
    /// count, oldest live seq, and compaction counters. `None` on an
    /// in-memory service.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        let persist = self.persist.as_ref()?;
        let state = persist.lock();
        let bytes = std::fs::metadata(state.dir.join(JOURNAL_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        Some(JournalStats {
            bytes,
            records: state.live_records,
            oldest_live_seq: state.oldest_live_seq,
            last_seq: state.last_seq,
            compactions: state.compactions,
            records_compacted: state.records_compacted,
        })
    }

    /// Compact the write-ahead journal: drop every record already covered
    /// by the **oldest retained full snapshot** and rewrite the survivors
    /// byte-verbatim (atomic tmp → fsync → rename). Recovery stays exactly
    /// as safe as before the pass — every snapshot/diff candidate that can
    /// still be loaded replays only records newer than its own coverage,
    /// and the oldest retained full is the floor of that set, so nothing a
    /// fallback could ever need is dropped. A no-op report when there is no
    /// snapshot yet or nothing qualifies.
    ///
    /// Holds the append lock for the duration (same order as
    /// [`UsaasService::checkpoint`]): the rewrite replaces the journal
    /// inode, so the append handle is reopened before the lock is
    /// released — a concurrent append can never write into the unlinked
    /// file.
    pub fn compact_journal(&self) -> Result<CompactionReport, PersistError> {
        let Some(persist) = &self.persist else {
            return Err(PersistError::NotPersistent);
        };
        let _appending = self.append_lock.lock();
        let mut state = persist.lock();
        let seqs = persist::snapshot_seqs(&state.dir)?;
        // `snapshot_seqs` is descending: the last entry is the oldest
        // retained full snapshot — the compaction safety bound.
        let Some(&safe_seq) = seqs.last() else {
            return Ok(CompactionReport::default());
        };
        let report = persist::compact_journal_file(&state.dir, safe_seq)?;
        if report.dropped_records > 0 {
            // The old handle points at the replaced (unlinked) inode;
            // reopen on the compacted file before any further append.
            state.journal = Journal::open_append(&state.dir.join(JOURNAL_FILE))?;
            state.live_records = report.kept_records;
            state.oldest_live_seq = report.oldest_live_seq;
            state.compactions += 1;
            state.records_compacted += report.dropped_records;
        }
        Ok(report)
    }

    /// Answer a batch of queries concurrently, one scoped worker per query;
    /// results come back in input order.
    ///
    /// The whole batch pins **one** generation snapshot, so its answers are
    /// mutually consistent even if an append commits mid-batch, and the
    /// workers share that generation's caches — a batch containing both
    /// `OutageTimeline` and `CrossNetwork` runs the outage detector once,
    /// not twice. A panic inside a worker is re-raised here with its
    /// original payload.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<Answer, UsaasError>> {
        let generation = self.snapshot();
        let mut results: Vec<Option<Result<Answer, UsaasError>>> = Vec::new();
        results.resize_with(queries.len(), || None);
        crossbeam::thread::scope(|scope| {
            for (slot, query) in results.iter_mut().zip(queries) {
                let generation = &generation;
                scope.spawn(move |_| {
                    *slot = Some(generation.query(query));
                });
            }
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        results
            .into_iter()
            .map(|slot| slot.expect("every spawned worker fills its slot"))
            .collect()
    }

    /// Ingest `sources` through the resilient streaming engine
    /// (retry/backoff, circuit breakers, quarantine) and commit every
    /// accepted item as a new generation — append-while-serving.
    ///
    /// Signals stream into the shared store as workers process them;
    /// queries racing the append keep serving their pinned snapshot. Once
    /// the run finishes, accepted items are folded into a successor
    /// generation (frame extended with delta columns, corpus grown
    /// incrementally when already built) whose fresh answer cache makes
    /// subsequent queries see the appended data. Quarantined or unfed
    /// items and open breakers are accumulated into [`UsaasService::health`].
    /// On a persisted service, the run is journaled **before** the
    /// in-memory commit — one durable record carrying the accepted items,
    /// the quarantined dead-letters, and the health deltas — so a crash at
    /// any later point replays the batch on the next open. A journal-write
    /// failure **aborts the commit**: the prior generation (with its
    /// answer cache and materialized views) keeps serving, memory and disk
    /// stay consistent, and the failure is reported through
    /// `ServiceHealth::recovery_warnings` so the caller can retry the
    /// batch once the journal is writable again.
    pub fn ingest_append(
        &self,
        sources: Vec<Box<dyn Source + '_>>,
        cfg: &IngestConfig,
    ) -> IngestReport {
        // Appends are serialised end-to-end so the journal order equals
        // the commit order. Queries never take this lock.
        let _appending = self.append_lock.lock();
        let (report, accepted) = ingest::ingest_stream_collect(&self.store, sources, cfg);
        let mut sessions: Vec<SessionRecord> = Vec::new();
        let mut posts: Vec<Post> = Vec::new();
        for item in accepted {
            match item {
                RawItem::Session(s) => sessions.push(*s),
                RawItem::Post(p) => posts.push(*p),
                // Poison pills are quarantined by the engine, never
                // accepted.
                RawItem::Poison(_) => {}
            }
        }
        let mut will_commit = !sessions.is_empty() || !posts.is_empty();
        if let Some(persist) = &self.persist {
            let mut state = persist.lock();
            let record = JournalRecord {
                seq: state.last_seq + 1,
                epoch_after: self.snapshot().epoch + u64::from(will_commit),
                sessions,
                posts,
                quarantined: report.quarantined.clone(),
                unfed: report.unfed,
                breaker_trips: report.breaker_trips,
                open_breakers: report.open_breakers(),
            };
            match state.journal.append(&record) {
                Ok(()) => {
                    state.last_seq = record.seq;
                    state.live_records += 1;
                    if state.oldest_live_seq == 0 {
                        state.oldest_live_seq = record.seq;
                    }
                }
                Err(e) => {
                    // No durable record → no in-memory commit. Committing
                    // anyway would serve answers from state a restart
                    // cannot reproduce; aborting keeps the prior epoch's
                    // generation — views, answer cache and all — live and
                    // consistent with disk.
                    will_commit = false;
                    self.health.lock().recovery_warnings.push(format!(
                        "journal append for seq {} failed; batch not committed so memory matches \
                         disk — retry after the journal recovers: {e}",
                        record.seq
                    ));
                }
            }
            sessions = record.sessions;
            posts = record.posts;
        }
        if will_commit {
            self.commit_locked(sessions, posts);
        }
        self.note_report(&report);
        report
    }

    /// Append trusted in-memory batches — the convenience path over
    /// [`UsaasService::ingest_append`] with default resilience settings.
    pub fn append_batch(&self, sessions: Vec<SessionRecord>, posts: Vec<Post>) -> IngestReport {
        let cfg = IngestConfig::with_workers(self.workers);
        let mut sources: Vec<Box<dyn Source>> = Vec::new();
        if !sessions.is_empty() {
            let items: Vec<RawItem> = sessions
                .into_iter()
                .map(|s| RawItem::Session(Box::new(s)))
                .collect();
            sources.push(Box::new(ItemSource::new("append-sessions", items)));
        }
        if !posts.is_empty() {
            let items: Vec<RawItem> = posts
                .into_iter()
                .map(|p| RawItem::Post(Box::new(p)))
                .collect();
            sources.push(Box::new(ItemSource::new("append-posts", items)));
        }
        self.ingest_append(sources, &cfg)
    }

    /// Fold accepted items into a successor generation and swap it in.
    /// The caller must hold `append_lock`: serialised appends mean two
    /// racing commits cannot both clone the same base generation and lose
    /// one delta, and the journal order matches the commit order.
    fn commit_locked(&self, sessions: Vec<SessionRecord>, posts: Vec<Post>) {
        let base = self.snapshot();
        // Re-materialise the corpus only if this generation ever built
        // one; extension preserves existing ids, so it is bit-identical to
        // rebuilding over the grown forum.
        let corpus_cell = OnceLock::new();
        if let Some(existing) = base.social_corpus.get() {
            let mut corpus = existing.clone();
            corpus.extend_with(posts.len(), self.workers, |i, emit| {
                for part in posts[i].text_parts() {
                    emit(part);
                }
            });
            let _ = corpus_cell.set(corpus);
        }
        let mut forum = base.forum.clone();
        forum.posts.extend(posts);
        // Carry the base generation's materialized views forward, advanced
        // by exactly this batch — an O(delta) fold per view instead of the
        // full-corpus recompute a fresh generation would otherwise pay on
        // first query. Views are fed the raw delta records, so the commit
        // never touches the columnar frame: the successor's frame cell
        // starts empty and materialises from the shared chunks only if a
        // full-scan query actually needs it.
        let views = base.views.advanced(&ViewDelta {
            sessions: &sessions,
            rows_before: base.sessions.len(),
            forum: &forum,
            posts_before: base.forum.len(),
            corpus: corpus_cell.get(),
        });
        // Structural sharing: the session records themselves are never
        // copied — the new generation holds the same Arc'd chunks plus one
        // chunk for this batch.
        let session_chunks = base.sessions.extended(sessions);
        let next = Generation::new(
            base.epoch + 1,
            session_chunks,
            forum,
            OnceLock::new(),
            self.workers,
            corpus_cell,
            views,
        );
        *self.current.write() = Arc::new(next);
    }

    /// Accumulate one run's degradation into the health totals.
    fn note_report(&self, report: &IngestReport) {
        let mut totals = self.health.lock();
        totals.quarantined += report.quarantined.len();
        totals.unfed += report.unfed;
        totals.breaker_trips += report.breaker_trips;
        totals.open_breakers = report.open_breakers();
        totals
            .dead_letters
            .extend(report.quarantined.iter().cloned());
    }
}

/// A single service behind the daemon: one persist unit (its own
/// snapshot + journal), no separate root log.
impl crate::daemon::ServeTarget for UsaasService {
    type Health = ServiceHealth;

    fn ingest_append<'a>(
        &self,
        sources: Vec<Box<dyn Source + 'a>>,
        cfg: &IngestConfig,
    ) -> IngestReport {
        UsaasService::ingest_append(self, sources, cfg)
    }

    fn epoch(&self) -> u64 {
        UsaasService::epoch(self)
    }

    fn is_persistent(&self) -> bool {
        UsaasService::is_persistent(self)
    }

    fn health(&self) -> ServiceHealth {
        UsaasService::health(self)
    }

    fn journal_stats(&self) -> Option<JournalStats> {
        UsaasService::journal_stats(self)
    }

    fn persist_units(&self) -> usize {
        1
    }

    fn checkpoint_unit(&self, _unit: usize) -> Result<PathBuf, PersistError> {
        self.checkpoint()
    }

    fn compact_unit(&self, _unit: usize) -> Result<CompactionReport, PersistError> {
        self.compact_journal()
    }

    fn compact_root(&self) -> Option<Result<CompactionReport, PersistError>> {
        None
    }
}

/// Rough 10°-latitude band of a country's population centre.
pub fn country_lat_band(country: &str) -> usize {
    match country {
        "MX" | "BR" => 2,
        "US" | "AU" | "CL" | "JP" => 3,
        "NZ" | "FR" | "IT" | "ES" | "PT" | "CH" | "AT" => 4,
        "CA" | "UK" | "DE" | "NL" | "BE" | "IE" | "PL" | "DK" => 5,
        "SE" | "NO" | "FI" => 6,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytics::time::Date;
    use conference::dataset::{generate, DatasetConfig};
    use social::generator::{generate as gen_forum, ForumConfig};
    use std::sync::OnceLock;

    fn service() -> &'static UsaasService {
        static S: OnceLock<UsaasService> = OnceLock::new();
        S.get_or_init(|| {
            let mut cfg = DatasetConfig::small(2500, 33);
            // Feed the ground-truth major outages into the telemetry window.
            cfg.leo_outage_calendar = starlink::outages::major_outages()
                .into_iter()
                .map(|o| (o.date, o.severity))
                .collect();
            let dataset = generate(&cfg);
            let forum = gen_forum(&ForumConfig {
                authors: 3000,
                ..ForumConfig::default()
            });
            UsaasService::build(dataset, forum, 4)
        })
    }

    #[test]
    fn signal_counts_show_the_sampling_gap() {
        let (implicit, explicit, social) = service().signal_counts();
        assert!(implicit > 1000);
        assert!(social > 10_000);
        assert!(explicit > 0);
        // The paper's motivation: explicit feedback is orders of magnitude
        // scarcer than implicit signals.
        assert!(
            implicit > 50 * explicit,
            "implicit {implicit} vs explicit {explicit}"
        );
    }

    #[test]
    fn every_query_answers() {
        let s = service();
        let queries = [
            Query::EngagementCurve {
                sweep: NetworkMetric::LatencyMs,
                engagement: EngagementMetric::MicOn,
                bins: 6,
            },
            Query::CompoundingGrid {
                engagement: EngagementMetric::Presence,
                bins: 4,
            },
            Query::PlatformSensitivity {
                sweep: NetworkMetric::LossPct,
                engagement: EngagementMetric::Presence,
            },
            Query::MosCorrelation,
            Query::OutageTimeline,
            Query::SentimentPeaks { k: 3 },
            Query::SpeedTrend,
            Query::EmergingTopics,
            Query::CrossNetwork {
                access: AccessType::SatelliteLeo,
            },
            Query::DeploymentAdvice,
        ];
        for q in &queries {
            let answer = s.query(q);
            assert!(
                answer.is_ok(),
                "query {q:?} failed: {:?}",
                answer.err().map(|e| e.to_string())
            );
        }
    }

    #[test]
    fn cross_network_join_corroborates_outages() {
        let s = service();
        let Answer::CrossNetwork(report) = s
            .query(&Query::CrossNetwork {
                access: AccessType::SatelliteLeo,
            })
            .unwrap()
        else {
            panic!("wrong answer type");
        };
        assert!(report.sessions > 50, "LEO sessions {}", report.sessions);
        assert!(report.mean_presence > 0.0);
        // On socially-detected outage days, LEO users' presence collapses —
        // the implicit signal corroborates the social one.
        if let Some(outage_presence) = report.outage_day_presence {
            assert!(
                outage_presence < report.mean_presence - 5.0,
                "outage-day presence {outage_presence} vs overall {}",
                report.mean_presence
            );
        } else {
            panic!("expected outage days inside the telemetry window");
        }
        assert!(report.outage_days_joined >= 1);
    }

    #[test]
    fn deployment_advice_is_ranked_and_complete() {
        let s = service();
        let Answer::Deployment(recs) = s.query(&Query::DeploymentAdvice).unwrap() else {
            panic!("wrong answer type");
        };
        assert_eq!(recs.len(), 5);
        assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn cross_network_requires_data() {
        // A dataset with zero satellite users cannot answer the query.
        let dataset = conference::records::CallDataset::default();
        let forum = gen_forum(&ForumConfig {
            authors: 200,
            end: Date::from_ymd(2021, 1, 20).unwrap(),
            ..ForumConfig::default()
        });
        let svc = UsaasService::build(dataset, forum, 2);
        assert!(svc
            .query(&Query::CrossNetwork {
                access: AccessType::SatelliteLeo
            })
            .is_err());
    }

    #[test]
    fn country_bands_cover_the_author_list() {
        for c in social::authors::COUNTRIES {
            assert!(country_lat_band(c) < 9);
        }
    }

    #[test]
    fn speed_trend_survives_a_shuffled_forum() {
        // Regression: the month window used to come from
        // `posts.first()/last()`, which on a shuffled corpus yields an
        // arbitrary (possibly inverted) range — the query then errored or
        // silently dropped months. The window must be order-independent.
        use rand::seq::SliceRandom;
        use rand::{rngs::StdRng, SeedableRng};
        let cfg = ForumConfig {
            authors: 1500,
            ..ForumConfig::default()
        };
        let sorted = gen_forum(&cfg);
        let mut shuffled = sorted.clone();
        shuffled.posts.shuffle(&mut StdRng::seed_from_u64(0xD1CE));
        assert_ne!(
            sorted.posts, shuffled.posts,
            "shuffle must change the order"
        );

        let dataset = generate(&DatasetConfig::small(300, 21));
        let a = UsaasService::build(dataset.clone(), sorted, 2);
        let b = UsaasService::build(dataset, shuffled, 2);
        let Answer::Speeds(sa) = a.query(&Query::SpeedTrend).unwrap() else {
            panic!("wrong answer type");
        };
        let Answer::Speeds(sb) = b.query(&Query::SpeedTrend).unwrap() else {
            panic!("wrong answer type");
        };
        assert_eq!(sa.len(), sb.len(), "same month coverage either way");
        assert!(!sa.is_empty());
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!(x.month, y.month);
            assert_eq!(x.reports, y.reports);
        }
    }

    #[test]
    fn query_batch_matches_sequential_answers() {
        let s = service();
        let queries = vec![
            Query::EngagementCurve {
                sweep: NetworkMetric::JitterMs,
                engagement: EngagementMetric::CamOn,
                bins: 5,
            },
            Query::CompoundingGrid {
                engagement: EngagementMetric::Presence,
                bins: 4,
            },
            Query::MosCorrelation,
            Query::OutageTimeline,
            Query::SentimentPeaks { k: 3 },
            Query::SpeedTrend,
            Query::CrossNetwork {
                access: AccessType::SatelliteLeo,
            },
            Query::DeploymentAdvice,
        ];
        let batch = s.query_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, parallel) in queries.iter().zip(&batch) {
            let sequential = s.query(q);
            assert_eq!(
                format!("{parallel:?}"),
                format!("{sequential:?}"),
                "batch answer for {q:?} must match the sequential one"
            );
        }
    }

    #[test]
    fn query_batch_of_nothing_is_empty() {
        assert!(service().query_batch(&[]).is_empty());
    }

    /// A small service built fresh, so cache counters start at zero.
    fn fresh_service() -> UsaasService {
        let dataset = generate(&DatasetConfig::small(600, 11));
        let forum = gen_forum(&ForumConfig {
            authors: 400,
            ..ForumConfig::default()
        });
        UsaasService::build(dataset, forum, 2)
    }

    #[test]
    fn repeated_queries_in_a_batch_hit_the_cache() {
        let s = fresh_service();
        let q = Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 6,
        };
        let batch = s.query_batch(&[q.clone(), q.clone()]);
        assert_eq!(batch.len(), 2);
        assert_eq!(
            s.cache_misses(),
            1,
            "two identical queries must compute once"
        );
        assert_eq!(s.cache_hits(), 1, "the repeat must be served from cache");
        let (Ok(Answer::Curve(a)), Ok(Answer::Curve(b))) = (&batch[0], &batch[1]) else {
            panic!("wrong answer types");
        };
        assert_eq!(a, b, "cached repeat must equal the computed answer");
        // A third, sequential repeat also hits.
        let _ = s.query(&q).unwrap();
        assert_eq!(s.cache_misses(), 1);
        assert_eq!(s.cache_hits(), 2);
    }

    #[test]
    fn differing_parameters_do_not_false_share() {
        let s = fresh_service();
        let coarse = Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 4,
        };
        let fine = Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 8,
        };
        let swept = Query::EngagementCurve {
            sweep: NetworkMetric::LossPct,
            engagement: EngagementMetric::Presence,
            bins: 4,
        };
        let Answer::Curve(a) = s.query(&coarse).unwrap() else {
            panic!("wrong answer type");
        };
        let Answer::Curve(b) = s.query(&fine).unwrap() else {
            panic!("wrong answer type");
        };
        let Answer::Curve(c) = s.query(&swept).unwrap() else {
            panic!("wrong answer type");
        };
        assert_eq!(s.cache_misses(), 3, "three distinct keys, three computes");
        assert_eq!(s.cache_hits(), 0);
        assert_ne!(a.xs.len(), b.xs.len(), "bin counts must differ");
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "different sweeps must not share an answer"
        );
    }

    #[test]
    fn errors_are_cached_like_answers() {
        // Zero sessions → CrossNetwork errors; the error itself is memoized
        // so the repeat does not recompute.
        let svc = UsaasService::build(
            conference::records::CallDataset::default(),
            gen_forum(&ForumConfig {
                authors: 150,
                end: Date::from_ymd(2021, 1, 15).unwrap(),
                ..ForumConfig::default()
            }),
            2,
        );
        let q = Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        };
        assert!(svc.query(&q).is_err());
        assert!(svc.query(&q).is_err());
        assert_eq!(svc.cache_misses(), 1);
        assert_eq!(svc.cache_hits(), 1);
    }

    #[test]
    fn outage_detections_are_cached_once() {
        let s = service();
        let generation = s.snapshot();
        let first = generation.outage_detections().unwrap().as_ptr();
        let _ = s.query(&Query::OutageTimeline).unwrap();
        let _ = s
            .query(&Query::CrossNetwork {
                access: AccessType::SatelliteLeo,
            })
            .unwrap();
        let second = generation.outage_detections().unwrap().as_ptr();
        assert_eq!(
            first, second,
            "repeat queries must reuse the cached detection pass"
        );
    }

    #[test]
    fn append_bumps_the_epoch_and_serves_new_data() {
        let s = fresh_service();
        let baseline_sessions = s.snapshot().sessions().len();
        let q = Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            bins: 6,
        };
        let before = s.query(&q).unwrap();
        assert_eq!(s.epoch(), 0);
        let delta = generate(&DatasetConfig::small(150, 77));
        let added = delta.len();
        let report = s.append_batch(delta.sessions, Vec::new());
        assert_eq!(report.fed, added);
        assert!(!report.is_degraded());
        assert_eq!(s.epoch(), 1, "a committed append bumps the epoch");
        let generation = s.snapshot();
        assert_eq!(generation.sessions().len(), baseline_sessions + added);
        assert_eq!(generation.frame().len(), baseline_sessions + added);
        let after = s.query(&q).unwrap();
        assert_ne!(
            format!("{before:?}"),
            format!("{after:?}"),
            "the appended sessions must change the answer"
        );
        assert!(!s.health().is_degraded());
    }

    #[test]
    fn bounded_log_evicts_oldest_and_counts_drops() {
        let mut log: BoundedLog<usize> = BoundedLog::new(3);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.to_vec(), vec![2, 3, 4], "oldest entries evicted");
        assert_eq!(log.dropped(), 2);
        log.extend(vec![5, 6]);
        assert_eq!(log.to_vec(), vec![4, 5, 6]);
        assert_eq!(log.dropped(), 4);
        // replace() keeps the tail and counts the overflow as drops.
        log.replace((0..10).collect());
        assert_eq!(log.to_vec(), vec![7, 8, 9]);
        assert_eq!(log.dropped(), 7);
        log.set_dropped(42);
        assert_eq!(log.dropped(), 42);
    }

    #[test]
    fn dead_letter_ring_is_bounded_while_totals_stay_exact() {
        let s = fresh_service();
        let pills = DEAD_LETTER_CAP + 137;
        let items: Vec<RawItem> = (0..pills).map(|_| RawItem::Poison("pill")).collect();
        let report = s.ingest_append(
            vec![Box::new(ItemSource::new("pill-feed", items))],
            &IngestConfig::with_workers(2),
        );
        assert_eq!(report.quarantined.len(), pills);
        let health = s.health();
        assert_eq!(
            health.quarantined_total, pills,
            "the total keeps exact count past the ring cap"
        );
        assert_eq!(
            s.dead_letters().len(),
            DEAD_LETTER_CAP,
            "the retained ring is capped"
        );
        assert_eq!(health.dead_letters_dropped, pills - DEAD_LETTER_CAP);
    }
}
