//! Early quality indication from partial sessions (§3.3).
//!
//! *"While MOS scores are sampled and delayed, these correlations show that
//! user engagement could be considered as early and more readily available
//! indication of call quality."*
//!
//! This module operationalises "early": from only the first `k` ticks of a
//! session's action timeline it computes an early engagement score and shows
//! how its correlation with the session's final latent quality grows with
//! the horizon — while even a few minutes of signal already carries real
//! information. An operator could use this to re-route or re-provision
//! *during* a call rather than after the survey.

use analytics::AnalyticsError;
use conference::call::DetailedSession;
use serde::{Deserialize, Serialize};

/// Weights of the early engagement score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyScoreWeights {
    /// Weight of still being in the call at the horizon.
    pub presence: f64,
    /// Weight of the partial Mic On fraction.
    pub mic: f64,
    /// Weight of the partial Cam On fraction.
    pub cam: f64,
}

impl Default for EarlyScoreWeights {
    fn default() -> EarlyScoreWeights {
        // Presence dominates, mirroring the Fig. 4 correlation ranking.
        EarlyScoreWeights {
            presence: 0.6,
            mic: 0.25,
            cam: 0.15,
        }
    }
}

/// The early-quality monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct EarlyQualityMonitor {
    /// Score weights.
    pub weights: EarlyScoreWeights,
}

/// Correlation of the early score with final quality at one horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HorizonSkill {
    /// Horizon in 5-second ticks.
    pub horizon_ticks: u32,
    /// Pearson correlation with the final latent quality.
    pub correlation: f64,
    /// Sessions that contributed.
    pub sessions: usize,
}

impl EarlyQualityMonitor {
    /// The early engagement score of one session at a horizon, in `[0, 1]`;
    /// `None` when the timeline is empty or the horizon is zero.
    pub fn score(&self, session: &DetailedSession, horizon: u32) -> Option<f64> {
        let snap = session.timeline.snapshot_at(horizon)?;
        let w = self.weights;
        let total = w.presence + w.mic + w.cam;
        if total <= 0.0 {
            return None;
        }
        let presence = if snap.still_present { 1.0 } else { 0.0 };
        Some(
            (w.presence * presence + w.mic * snap.mic_on_fraction + w.cam * snap.cam_on_fraction)
                / total,
        )
    }

    /// Correlation of the early score with final latent quality across
    /// sessions, for each horizon.
    pub fn skill_by_horizon(
        &self,
        sessions: &[DetailedSession],
        horizons: &[u32],
    ) -> Result<Vec<HorizonSkill>, AnalyticsError> {
        if sessions.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        let mut out = Vec::with_capacity(horizons.len());
        for &h in horizons {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for s in sessions {
                if let Some(score) = self.score(s, h) {
                    xs.push(score);
                    ys.push(s.record.latent_quality);
                }
            }
            if xs.len() < 2 {
                continue;
            }
            out.push(HorizonSkill {
                horizon_ticks: h,
                correlation: analytics::pearson(&xs, &ys)?,
                sessions: xs.len(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::call::{CallConfig, CallSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    /// Detailed sessions over a wide mix of conditions.
    fn sessions() -> &'static Vec<DetailedSession> {
        static S: OnceLock<Vec<DetailedSession>> = OnceLock::new();
        S.get_or_init(|| {
            let sim = CallSimulator::default();
            let mut rng = StdRng::seed_from_u64(0xEA71);
            let mut uid = 0;
            let mut out = Vec::new();
            for call_id in 0..800 {
                let config = CallConfig {
                    call_id,
                    date: analytics::time::Date::from_ymd(2022, 2, 15).unwrap(),
                    start_hour: 10,
                    participants: 5,
                    scheduled_ticks: 240, // 20 minutes
                };
                out.extend(sim.simulate_detailed(&mut rng, &config, &mut uid));
            }
            out
        })
    }

    #[test]
    fn timelines_are_recorded() {
        let s = sessions();
        assert!(s.len() > 2000);
        assert!(s.iter().all(|d| !d.timeline.is_empty()));
        // Sessions that left early carry a Left event at the right tick.
        let leavers = s.iter().filter(|d| d.record.left_early).count();
        assert!(leavers > 20, "need some leavers: {leavers}");
        for d in s.iter().filter(|d| d.record.left_early) {
            assert_eq!(d.timeline.left_at(), Some(d.record.attended_ticks));
        }
    }

    #[test]
    fn early_score_predicts_final_quality() {
        let monitor = EarlyQualityMonitor::default();
        let skills = monitor
            .skill_by_horizon(sessions(), &[12, 36, 120, 240])
            .unwrap();
        assert_eq!(skills.len(), 4);
        // Even one minute of signal carries information…
        assert!(
            skills[0].correlation > 0.05,
            "1-minute horizon should already correlate: {skills:?}"
        );
        // …and the full-session horizon is solidly predictive.
        let last = skills.last().unwrap();
        assert!(last.correlation > 0.3, "{skills:?}");
        // Skill should broadly grow with the horizon.
        assert!(
            last.correlation > skills[0].correlation,
            "longer horizons must know more: {skills:?}"
        );
    }

    #[test]
    fn score_bounds_and_degenerate_weights() {
        let monitor = EarlyQualityMonitor::default();
        for d in sessions().iter().take(200) {
            if let Some(score) = monitor.score(d, 36) {
                assert!((0.0..=1.0).contains(&score), "score {score}");
            }
        }
        let zero = EarlyQualityMonitor {
            weights: EarlyScoreWeights {
                presence: 0.0,
                mic: 0.0,
                cam: 0.0,
            },
        };
        assert_eq!(zero.score(&sessions()[0], 36), None);
    }

    #[test]
    fn empty_inputs_error() {
        let monitor = EarlyQualityMonitor::default();
        assert!(monitor.skill_by_horizon(&[], &[10]).is_err());
    }
}
