//! Partitioned scatter-gather serving: a consistent-hash sharded
//! [`UsaasService`] cluster behind a merging query router (§5 at scale).
//!
//! [`PartitionedService`] consistent-hashes sessions (by `user_id`) and
//! posts (by `author_id`) across N independent [`UsaasService`] partitions,
//! fans each query out to every partition in parallel, and merges the
//! partial answers at the router into answers **bit-identical** to the
//! single-partition service over the same data — at every partition and
//! worker count (pinned by `tests/cluster_parity.rs`).
//!
//! The merge discipline that makes bit-identity possible: partitions never
//! ship partially-reduced floats. Each partition returns *rows* (per-session
//! or per-post values, tagged by local index), the router reassembles the
//! global-order columns through the order maps recorded at split time, and
//! then replays the exact sequential kernels and finishing passes the
//! single service runs ([`kernels::masked_binned_sum_count`],
//! [`correlate::grid_from_sums`], [`correlate::mos_correlations_vals`], …).
//! Cross-partition map merges (§4 text scans) are additive only where the
//! addends are integer-valued (engagement weights, day counts, keyword
//! hits), where f64 addition is exact and therefore order-free.

use crate::annotate::{AnnotatedPeak, PeakAnnotator, SentimentSeries, CLOUD_WORDS};
use crate::cache::MemoCache;
use crate::correlate;
use crate::emerging::{sort_detections, EmergingTopic, EmergingTopicMiner};
use crate::fulcrum::{DocShot, FulcrumAnalysis};
use crate::ingest::{self, IngestConfig, IngestReport, QuarantineEntry};
use crate::outage::{DetectedOutage, OutageDetector};
use crate::persist::{
    cluster_snapshot_seqs, compact_journal_file, load_latest_cluster_snapshot,
    read_and_repair_journal, snapshot_seqs, write_cluster_snapshot, ClusterSnapContents,
    CompactionReport, Journal, JournalRecord, JournalStats, PersistError, JOURNAL_FILE,
};
use crate::predict;
use crate::service::{
    country_lat_band, Answer, BoundedLog, CrossNetworkReport, Generation, Query, QueryKey,
    ServiceHealth, UsaasError, UsaasService, DEAD_LETTER_CAP, RECOVERY_WARNING_CAP,
};
use crate::source::{ItemSource, RawItem, Source};
use crate::store::SignalStore;
use analytics::binning::{BinSpec, SumBinner};
use analytics::time::Date;
use analytics::timeseries::DailySeries;
use analytics::{kernels, AnalyticsError};
use conference::records::{CallDataset, EngagementMetric, SessionRecord};
use netsim::access::AccessType;
use parking_lot::{Mutex, RwLock};
use sentiment::analyzer::SentimentAnalyzer;
use sentiment::corpus::{CompiledDict, IdNgramCounts};
use social::post::{Forum, Post};
use starlink::constellation::{DeploymentPlanner, RegionalDemand};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Virtual nodes per partition on the hash ring — enough that the keyspace
/// split stays within a few percent of even at 2–8 partitions.
const VNODES: usize = 64;

/// Cluster metadata file (partition count), sibling of the cluster journal.
/// Cluster metadata file name inside a cluster persist directory — its
/// presence is how callers (and the `usaas serve` CLI) distinguish a
/// cluster directory from a single-service one.
pub const CLUSTER_META: &str = "cluster.meta";

/// `"USCL"` little-endian: the metadata file magic.
const META_MAGIC: u32 = 0x4C43_5355;

/// SplitMix64 — the ring's stateless mixer. A bijection on `u64`, so
/// distinct vnode seeds can never collide on the ring.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over `partitions` shards, `VNODES` points each.
/// The ring is a pure function of the partition count, so every router
/// instance (including one reopened after a crash) routes identically.
#[derive(Debug, Clone)]
struct HashRing {
    /// Sorted `(ring point, partition)` pairs.
    points: Vec<(u64, u32)>,
    partitions: usize,
}

impl HashRing {
    fn new(partitions: usize) -> HashRing {
        let partitions = partitions.max(1);
        let mut points: Vec<(u64, u32)> = (0..partitions)
            .flat_map(|p| {
                (0..VNODES).map(move |v| (splitmix64(((p as u64) << 16) | v as u64), p as u32))
            })
            .collect();
        points.sort_unstable();
        HashRing { points, partitions }
    }

    fn partitions(&self) -> usize {
        self.partitions
    }

    /// The partition owning `id`: first ring point at or after the id's
    /// hash, wrapping.
    fn partition_of(&self, id: u64) -> usize {
        let h = splitmix64(id);
        let i = self.points.partition_point(|&(point, _)| point < h);
        self.points[i % self.points.len()].1 as usize
    }

    /// Route a batch to per-partition sub-batches, recording each item's
    /// global arrival index in `maps` so the router can later reassemble
    /// global-order columns from partition-local rows. Items keep their
    /// relative order inside each partition (stable single pass), which is
    /// what makes the order maps strictly increasing per partition.
    fn split(
        &self,
        sessions: Vec<SessionRecord>,
        posts: Vec<Post>,
        maps: &mut OrderMaps,
    ) -> Vec<PartitionBatch> {
        let mut out: Vec<PartitionBatch> = (0..self.partitions)
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for s in sessions {
            let p = self.partition_of(s.user_id);
            maps.sessions[p].push(maps.total_sessions);
            maps.total_sessions += 1;
            out[p].0.push(s);
        }
        for post in posts {
            let p = self.partition_of(post.author_id);
            maps.posts[p].push(maps.total_posts);
            maps.total_posts += 1;
            out[p].1.push(post);
        }
        out
    }
}

/// One partition's slice of an ingest batch.
type PartitionBatch = (Vec<SessionRecord>, Vec<Post>);

/// Per-partition local-index → global-arrival-index maps, maintained by
/// [`HashRing::split`] across the build and every committed append.
/// `maps.sessions[p][i]` is the global position of partition `p`'s session
/// row `i`; likewise for posts. These are what let the router replay the
/// single service's exact row order without materialising a merged frame.
#[derive(Debug, Clone)]
struct OrderMaps {
    sessions: Vec<Vec<usize>>,
    posts: Vec<Vec<usize>>,
    total_sessions: usize,
    total_posts: usize,
}

impl OrderMaps {
    fn new(partitions: usize) -> OrderMaps {
        OrderMaps {
            sessions: vec![Vec::new(); partitions],
            posts: vec![Vec::new(); partitions],
            total_sessions: 0,
            total_posts: 0,
        }
    }
}

/// Reassemble one global-order column from per-partition rows: partition
/// `p`'s row `i` lands at global index `maps[p][i]`. Rows a lagging
/// partition has not produced yet (shorter `parts[p]` than its map) are
/// simply absent — the surviving rows keep their global relative order, so
/// a degraded cluster still answers deterministically.
fn merged<T>(maps: &[Vec<usize>], parts: Vec<Vec<T>>) -> Vec<T> {
    let total = maps.iter().map(Vec::len).sum();
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(total, || None);
    for (map, vals) in maps.iter().zip(parts) {
        for (&g, v) in map.iter().zip(vals) {
            out[g] = Some(v);
        }
    }
    out.into_iter().flatten().collect()
}

/// [`merged`] for sparse per-partition rows tagged with their local index
/// (e.g. rated sessions only): partition `p`'s `(local, value)` pairs land
/// at `maps[p][local]`, and the flattened result is the values in ascending
/// global order — the single frame's `rated_indices()` enumeration order.
fn merged_sparse<T>(maps: &[Vec<usize>], parts: Vec<(Vec<usize>, Vec<T>)>) -> Vec<T> {
    let total = maps.iter().map(Vec::len).sum();
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(total, || None);
    for (map, (locals, vals)) in maps.iter().zip(parts) {
        for (local, v) in locals.into_iter().zip(vals) {
            if let Some(&g) = map.get(local) {
                out[g] = Some(v);
            }
        }
    }
    out.into_iter().flatten().collect()
}

/// Merge per-partition date ranges into the global `(min, max)` — the same
/// min/max fold [`Forum::date_range`] runs over the merged forum.
fn merged_range(ranges: impl IntoIterator<Item = Option<(Date, Date)>>) -> Option<(Date, Date)> {
    ranges
        .into_iter()
        .flatten()
        .reduce(|(lo, hi), (a, b)| (lo.min(a), hi.max(b)))
}

/// Scatter a closure across every partition's pinned generation, one scoped
/// thread per partition; results come back in partition order. A panic in
/// any worker is re-raised with its original payload.
fn scatter<T, F>(parts: &[Arc<Generation>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &Generation) -> T + Sync,
{
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(parts.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (p, (slot, generation)) in results.iter_mut().zip(parts).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                *slot = Some(f(p, generation));
            });
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    results
        .into_iter()
        .map(|slot| slot.expect("every spawned worker fills its slot"))
        .collect()
}

/// One session row for the Fig. 1/3 sweeps: `(sweep value, engagement,
/// in-reference)`.
type CurveRow = (f64, f64, bool);
/// One session row for the Fig. 2 grid: `(latency, loss, engagement)`.
type GridRow = (f64, f64, f64);
/// One rated-session row for Fig. 4 / §5: per-metric engagement values (in
/// `EngagementMetric::ALL` order) plus the rating.
type MosRow = (Vec<f64>, f64);
/// One post row for Fig. 7: date plus the screenshot extraction (downlink,
/// sentiment class) when the post carries one.
type ShotRow = (Date, Option<(Option<f64>, i8)>);
/// One session row for the §5 cross-network join.
type CnRow = (AccessType, f64, f64, f64, Date, Option<u8>);
/// One partition's rated sliver: local rated indices plus each rated
/// session's feature row and rating.
type RatedPartial = (Vec<usize>, Vec<(Vec<f64>, f64)>);
/// One partition's outage partial: its forum date range plus the local
/// indices and `(date, hits)` adds of keyword-bearing posts.
type OutagePartial = (Option<(Date, Date)>, Vec<usize>, Vec<(Date, f64)>);

/// An immutable cluster epoch: the pinned partition generations, the order
/// maps that describe how their rows interleave globally, and this epoch's
/// merged-answer cache. Queries pin one of these, so an append committing
/// mid-query never disturbs a running merge.
struct ClusterSnapshot {
    epoch: u64,
    parts: Vec<Arc<Generation>>,
    order: Arc<OrderMaps>,
    workers: usize,
    answers: MemoCache<QueryKey, Result<Answer, UsaasError>>,
    /// Outage detections shared by `OutageTimeline` and `CrossNetwork` —
    /// the router-side analogue of the generation's shared detection pass.
    outages: OnceLock<Result<Vec<DetectedOutage>, UsaasError>>,
}

impl ClusterSnapshot {
    fn new(
        epoch: u64,
        parts: Vec<Arc<Generation>>,
        order: Arc<OrderMaps>,
        workers: usize,
    ) -> ClusterSnapshot {
        ClusterSnapshot {
            epoch,
            parts,
            order,
            workers,
            answers: MemoCache::default(),
            outages: OnceLock::new(),
        }
    }

    fn query(&self, query: &Query) -> Result<Answer, UsaasError> {
        self.answers
            .get_or_compute(QueryKey::of(query), || self.answer_merged(query))
    }

    /// Scatter `query` to every partition and merge the partials — the
    /// uncached path behind [`ClusterSnapshot::query`].
    fn answer_merged(&self, query: &Query) -> Result<Answer, UsaasError> {
        match query {
            Query::EngagementCurve {
                sweep,
                engagement,
                bins,
            } => {
                let rows: Vec<Vec<CurveRow>> = scatter(&self.parts, |_, g| {
                    let frame = g.frame();
                    let xs = frame.net_mean(*sweep);
                    let ys = frame.engagement(*engagement);
                    let mask = frame.ref_row_mask(*sweep);
                    (0..frame.len())
                        .map(|i| (xs[i], ys[i], mask.get(i)))
                        .collect()
                });
                let rows = merged(&self.order.sessions, rows);
                let (lo, hi) = sweep.sweep_range();
                let spec = BinSpec::new(lo, hi, *bins)?;
                let xs: Vec<f64> = rows.iter().map(|r| r.0).collect();
                let ys: Vec<f64> = rows.iter().map(|r| r.1).collect();
                let mask = kernels::RowMask::from_fn(rows.len(), |i| rows[i].2);
                let acc = kernels::masked_binned_sum_count(&xs, &ys, &mask, spec);
                let binner = SumBinner::from_parts(spec, acc.sums, acc.counts, acc.dropped);
                Ok(Answer::Curve(binner.curve_mean(8).normalized_to_max(100.0)))
            }
            Query::CompoundingGrid { engagement, bins } => {
                let rows: Vec<Vec<GridRow>> = scatter(&self.parts, |_, g| {
                    let frame = g.frame();
                    let xs = frame.net_mean(conference::records::NetworkMetric::LatencyMs);
                    let ys = frame.net_mean(conference::records::NetworkMetric::LossPct);
                    let vs = frame.engagement(*engagement);
                    (0..frame.len()).map(|i| (xs[i], ys[i], vs[i])).collect()
                });
                let rows = merged(&self.order.sessions, rows);
                let (x, y) = correlate::grid_specs(*bins)?;
                let xs: Vec<f64> = rows.iter().map(|r| r.0).collect();
                let ys: Vec<f64> = rows.iter().map(|r| r.1).collect();
                let vs: Vec<f64> = rows.iter().map(|r| r.2).collect();
                let (sums, counts) = kernels::grid_sum_count(&xs, &ys, &vs, x, y);
                Ok(Answer::Grid(correlate::grid_from_sums(
                    x, y, *bins, &sums, &counts, 5,
                )))
            }
            Query::PlatformSensitivity { sweep, engagement } => {
                let bins = 4usize;
                let rows: Vec<Vec<(f64, f64, u32, bool)>> = scatter(&self.parts, |_, g| {
                    let frame = g.frame();
                    let xs = frame.net_mean(*sweep);
                    let ys = frame.engagement(*engagement);
                    let slots = frame.platform_slots();
                    let mask = frame.ref_row_mask(*sweep);
                    (0..frame.len())
                        .map(|i| (xs[i], ys[i], slots[i], mask.get(i)))
                        .collect()
                });
                let rows = merged(&self.order.sessions, rows);
                let (lo, hi) = sweep.sweep_range();
                let spec = BinSpec::new(lo, hi, bins)?;
                let xs: Vec<f64> = rows.iter().map(|r| r.0).collect();
                let ys: Vec<f64> = rows.iter().map(|r| r.1).collect();
                let slots: Vec<u32> = rows.iter().map(|r| r.2).collect();
                let mask = kernels::RowMask::from_fn(rows.len(), |i| rows[i].3);
                let slot_count = conference::platform::Platform::ALL.len();
                let (sums, counts, dropped) = kernels::masked_slot_binned_sum_count(
                    &xs, &ys, &slots, slot_count, &mask, spec,
                );
                let binners: Vec<SumBinner> = (0..slot_count)
                    .map(|s| {
                        SumBinner::from_parts(
                            spec,
                            sums[s * bins..(s + 1) * bins].to_vec(),
                            counts[s * bins..(s + 1) * bins].to_vec(),
                            dropped[s],
                        )
                    })
                    .collect();
                Ok(Answer::PlatformCurves(
                    correlate::platform_curves_from_sums(&binners, 5),
                ))
            }
            Query::MosCorrelation => {
                let rated = self.merged_mos_rows();
                let metrics = EngagementMetric::ALL.len();
                let ratings: Vec<f64> = rated.iter().map(|r| r.1).collect();
                let eng: Vec<Vec<f64>> = (0..metrics)
                    .map(|k| rated.iter().map(|r| r.0[k]).collect())
                    .collect();
                let mut curves = Vec::new();
                for (k, m) in EngagementMetric::ALL.iter().enumerate() {
                    curves.push((*m, correlate::mos_curve_from_vals(&eng[k], &ratings, 4, 3)?));
                }
                Ok(Answer::Mos {
                    curves,
                    ranking: correlate::mos_correlations_vals(&eng, &ratings)?,
                })
            }
            Query::PredictMos { features } => {
                let rows: Vec<RatedPartial> = scatter(&self.parts, |_, g| {
                    let frame = g.frame();
                    let rated = frame.rated_indices().to_vec();
                    let (feats, ratings) = predict::rated_features(frame, &rated, *features);
                    (rated, feats.into_iter().zip(ratings).collect())
                });
                let rows = merged_sparse(&self.order.sessions, rows);
                let (feats, ratings): (Vec<Vec<f64>>, Vec<f64>) = rows.into_iter().unzip();
                let (_, eval) = predict::train_and_evaluate_vals(&feats, &ratings, *features, 4)?;
                Ok(Answer::Prediction(eval))
            }
            Query::OutageTimeline => Ok(Answer::Outages(self.merged_outages()?)),
            Query::SentimentPeaks { k } => self.sentiment_peaks(*k),
            Query::SpeedTrend => self.speed_trend(),
            Query::EmergingTopics => self.emerging_topics(),
            Query::CrossNetwork { access } => self.cross_network(*access),
            Query::DeploymentAdvice => self.deployment_advice(),
        }
    }

    /// Gather every partition's rated rows (per-metric engagement values
    /// plus the rating) in global rated order — Fig. 4's input columns.
    fn merged_mos_rows(&self) -> Vec<MosRow> {
        let rows: Vec<(Vec<usize>, Vec<MosRow>)> = scatter(&self.parts, |_, g| {
            let frame = g.frame();
            let rated = frame.rated_indices().to_vec();
            let cols: Vec<&[f64]> = EngagementMetric::ALL
                .iter()
                .map(|&m| frame.engagement(m))
                .collect();
            let ratings = frame.rating();
            let vals: Vec<MosRow> = rated
                .iter()
                .map(|&i| {
                    (
                        cols.iter().map(|c| c[i]).collect(),
                        f64::from(ratings[i].expect("rated index carries a rating")),
                    )
                })
                .collect();
            (rated, vals)
        });
        merged_sparse(&self.order.sessions, rows)
    }

    /// The shared outage-detection pass: per-partition filtered keyword
    /// hits (per-document, so partitioning cannot change them), merged into
    /// one daily series in global post order, peaks found once at the
    /// router with the single detector's thresholds.
    fn merged_outages(&self) -> Result<Vec<DetectedOutage>, UsaasError> {
        self.outages
            .get_or_init(|| {
                let det = OutageDetector::default();
                let det = &det;
                let parts: Vec<OutagePartial> = scatter(&self.parts, |_, g| {
                    let corpus = g.social_corpus();
                    let dict = CompiledDict::compile(&det.dictionary, corpus.vocab());
                    let hits = det.doc_hits_range(&dict, corpus, 0..corpus.docs());
                    let mut locals = Vec::new();
                    let mut adds = Vec::new();
                    for (i, (post, h)) in g.forum().posts.iter().zip(hits).enumerate() {
                        if h > 0 {
                            locals.push(i);
                            adds.push((post.date, h as f64));
                        }
                    }
                    (g.forum().date_range(), locals, adds)
                });
                let (start, end) = match merged_range(parts.iter().map(|p| p.0)) {
                    Some(r) => r,
                    None => return Err(UsaasError::Analytics(AnalyticsError::Empty)),
                };
                let mut series = match DailySeries::zeros(start, end) {
                    Ok(s) => s,
                    Err(e) => return Err(UsaasError::Analytics(e)),
                };
                let adds = merged_sparse(
                    &self.order.posts,
                    parts.into_iter().map(|p| (p.1, p.2)).collect(),
                );
                for (date, amount) in adds {
                    series.add(date, amount);
                }
                Ok(OutageDetector::peaks_to_detections(
                    series.peaks(det.min_peak_score, det.refractory_days),
                ))
            })
            .clone()
    }

    /// §5 cross-network: gather the session columns in global order and
    /// replay the single service's join verbatim.
    fn cross_network(&self, access: AccessType) -> Result<Answer, UsaasError> {
        let rows: Vec<Vec<CnRow>> = scatter(&self.parts, |_, g| {
            let frame = g.frame();
            let acc = frame.access();
            let presence = frame.engagement(EngagementMetric::Presence);
            let mic = frame.engagement(EngagementMetric::MicOn);
            let cam = frame.engagement(EngagementMetric::CamOn);
            let dates = frame.date();
            let ratings = frame.rating();
            (0..frame.len())
                .map(|i| (acc[i], presence[i], mic[i], cam[i], dates[i], ratings[i]))
                .collect()
        });
        let rows = merged(&self.order.sessions, rows);
        let target_mask = kernels::RowMask::from_fn(rows.len(), |i| rows[i].0 == access);
        if target_mask.count() == 0 {
            return Err(UsaasError::NoData("no sessions on the requested network"));
        }
        let others_mask = kernels::RowMask::from_fn(rows.len(), |i| rows[i].0 != access);
        let target: Vec<usize> = (0..rows.len()).filter(|&i| target_mask.get(i)).collect();
        let presence_col: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let mic_col: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let cam_col: Vec<f64> = rows.iter().map(|r| r.3).collect();
        let dates: Vec<Date> = rows.iter().map(|r| r.4).collect();
        let ratings: Vec<f64> = target
            .iter()
            .filter_map(|&i| rows[i].5)
            .map(f64::from)
            .collect();
        let detections: Vec<DetectedOutage> = self
            .merged_outages()?
            .iter()
            .filter(|d| d.score >= 10.0)
            .copied()
            .collect();
        let outage_presence: Vec<f64> = target
            .iter()
            .filter(|&&i| detections.iter().any(|d| d.date == dates[i]))
            .map(|&i| presence_col[i])
            .collect();
        let outage_days_joined = detections
            .iter()
            .filter(|d| target.iter().any(|&i| dates[i] == d.date))
            .count();
        let masked_mean = |col: &[f64], mask: &kernels::RowMask| {
            kernels::masked_mean(col, mask).ok_or(AnalyticsError::Empty)
        };
        Ok(Answer::CrossNetwork(CrossNetworkReport {
            sessions: target.len(),
            mean_presence: masked_mean(&presence_col, &target_mask)?,
            others_presence: masked_mean(&presence_col, &others_mask).unwrap_or(f64::NAN),
            mean_mic_on: masked_mean(&mic_col, &target_mask)?,
            mean_cam_on: masked_mean(&cam_col, &target_mask)?,
            mos: analytics::mean(&ratings).ok(),
            outage_day_presence: analytics::mean(&outage_presence).ok(),
            outage_days_joined,
        }))
    }

    /// §6 deployment advice: per-partition strong-negative band tallies are
    /// integer counts, so the cross-partition sum is exact.
    fn deployment_advice(&self) -> Result<Answer, UsaasError> {
        let workers = self.workers;
        let counts: Vec<Vec<usize>> = scatter(&self.parts, |_, g| {
            let analyzer = SentimentAnalyzer::default();
            let scores = analyzer.score_corpus(g.social_corpus(), workers);
            let slots: Vec<u32> = g
                .forum()
                .posts
                .iter()
                .map(|p| country_lat_band(p.country) as u32)
                .collect();
            let neg = kernels::RowMask::from_fn(slots.len(), |i| scores[i].is_strong_negative());
            kernels::masked_slot_counts(&slots, 9, &neg)
        });
        let mut weights = [0.0f64; 9];
        for part in counts {
            for (w, c) in weights.iter_mut().zip(part) {
                *w += c as f64;
            }
        }
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            return Err(UsaasError::NoData("no strong-negative social signals"));
        }
        for w in weights.iter_mut() {
            *w /= total;
        }
        Ok(Answer::Deployment(DeploymentPlanner::gen1().rank(
            &RegionalDemand {
                band_weights: weights,
            },
        )))
    }

    /// Fig. 5 annotated sentiment peaks. Phase 1 scores every post at its
    /// partition and ships `(date, sentiment class, country)` rows; the
    /// router rebuilds the daily series (per-post 1.0 additions — integer
    /// counts, order-free) and finds peaks once. Phase 2 scatters the day
    /// clouds: each partition counts its day's unigrams at full resolution
    /// and the router merges word tables additively (integer counts) before
    /// applying the single-path truncation and comparator.
    fn sentiment_peaks(&self, k: usize) -> Result<Answer, UsaasError> {
        let annot = PeakAnnotator::default();
        let annot = &annot;
        let workers = self.workers;
        let part_rows: Vec<Vec<(Date, i8, &'static str)>> = scatter(&self.parts, |_, g| {
            let corpus = g.social_corpus();
            let scores = annot.score_posts(g.forum(), corpus, workers);
            g.forum()
                .posts
                .iter()
                .zip(scores)
                .map(|(p, s)| {
                    // The reference walk's `else if`: strong-positive wins.
                    let class = if s.is_strong_positive() {
                        1
                    } else if s.is_strong_negative() {
                        -1
                    } else {
                        0
                    };
                    (p.date, class, p.country)
                })
                .collect()
        });
        let rows = merged(&self.order.posts, part_rows);
        let (start, end) = rows
            .iter()
            .map(|r| r.0)
            .fold(None, |acc: Option<(Date, Date)>, d| match acc {
                Some((lo, hi)) => Some((lo.min(d), hi.max(d))),
                None => Some((d, d)),
            })
            .ok_or(UsaasError::Analytics(AnalyticsError::Empty))?;
        let mut pos = DailySeries::zeros(start, end).map_err(UsaasError::Analytics)?;
        let mut neg = DailySeries::zeros(start, end).map_err(UsaasError::Analytics)?;
        for &(date, class, _) in &rows {
            match class {
                1 => pos.add(date, 1.0),
                -1 => neg.add(date, 1.0),
                _ => {}
            }
        }
        let series = SentimentSeries {
            strong_positive: pos,
            strong_negative: neg,
        };
        let combined = series.combined();
        let peaks = combined.peaks(annot.min_peak_score, annot.refractory_days);
        let peak_dates: Vec<Date> = peaks.iter().take(k).map(|p| p.date).collect();
        // Phase 2: full-resolution per-partition day clouds for the peaks.
        let clouds: Vec<Vec<Vec<(String, f64)>>> = scatter(&self.parts, |_, g| {
            let corpus = g.social_corpus();
            peak_dates
                .iter()
                .map(|&date| {
                    let mut counts = IdNgramCounts::new();
                    for (i, p) in g.forum().posts.iter().enumerate() {
                        if p.date == date {
                            counts.add_unigrams(corpus, i, 1.0);
                        }
                    }
                    // Full table — truncating here would corrupt the merge.
                    counts.top_k(corpus.vocab(), usize::MAX)
                })
                .collect()
        });
        let lexicon = sentiment::lexicon::Lexicon::global();
        let mut out = Vec::new();
        for (pi, peak) in peaks.into_iter().take(k).enumerate() {
            let mut table: HashMap<String, f64> = HashMap::new();
            for part in &clouds {
                for (word, w) in &part[pi] {
                    *table.entry(word.clone()).or_insert(0.0) += w;
                }
            }
            let mut entries: Vec<(String, f64)> = table.into_iter().collect();
            // The word cloud's comparator: weight desc, then word asc.
            entries.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            entries.truncate(CLOUD_WORDS);
            let top_words: Vec<String> = entries
                .iter()
                .map(|(w, _)| w.clone())
                .filter(|w| lexicon.valence(w).is_none())
                .take(annot.query_words)
                .collect();
            let mut query: Vec<&str> = top_words.iter().map(String::as_str).collect();
            query.push("starlink"); // the paper appends 'Starlink' to every query
            let headlines = annot
                .news
                .search(&query, peak.date, annot.news_window_days)
                .into_iter()
                .map(|a| a.headline.clone())
                .collect();
            let pos_v = series.strong_positive.get(peak.date).unwrap_or(0.0);
            let neg_v = series.strong_negative.get(peak.date).unwrap_or(0.0);
            let countries: HashSet<&str> = rows
                .iter()
                .filter(|(date, class, _)| *date == peak.date && *class != 0)
                .map(|(_, _, country)| *country)
                .collect();
            out.push(AnnotatedPeak {
                date: peak.date,
                strong_posts: peak.value,
                positive_dominated: pos_v >= neg_v,
                top_words,
                headlines,
                countries: countries.len(),
            });
        }
        Ok(Answer::Peaks(out))
    }

    /// Fig. 7 speed trend: partitions evaluate every screenshot post's
    /// [`DocShot`] (per-post, partition-independent); the router replays
    /// the month loop — including its RNG stream — over the global-order
    /// date column.
    fn speed_trend(&self) -> Result<Answer, UsaasError> {
        let fa = FulcrumAnalysis::default();
        let fa = &fa;
        let part_rows: Vec<Vec<ShotRow>> = scatter(&self.parts, |_, g| {
            let corpus = g.social_corpus();
            let vocab = corpus.vocab();
            g.forum()
                .posts
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let shot = DocShot::eval(p, || fa.analyzer.score_ids(corpus.doc(i), vocab));
                    (p.date, shot.map(|s| (s.down, s.class)))
                })
                .collect()
        });
        let rows = merged(&self.order.posts, part_rows);
        if rows.is_empty() {
            return Err(UsaasError::NoData("empty forum"));
        }
        let dates: Vec<Date> = rows.iter().map(|r| r.0).collect();
        let (lo, hi) = dates
            .iter()
            .copied()
            .fold(None, |acc: Option<(Date, Date)>, d| match acc {
                Some((a, b)) => Some((a.min(d), b.max(d))),
                None => Some((d, d)),
            })
            .expect("non-empty rows have a date range");
        let points = fa.analyze_dated_shots(&dates, lo.month(), hi.month(), |i| {
            rows[i].1.map(|(down, class)| DocShot { down, class })
        })?;
        Ok(Answer::Speeds(points))
    }

    /// §4.1 emerging topics. Partitions ship per-day engagement-weighted
    /// word tables (integer-valued weights — additive merges are exact);
    /// the router replays the miner's sliding window over the merged
    /// tables, then scatters the polarity scan for flagged terms back to
    /// the partitions and averages in global post order.
    fn emerging_topics(&self) -> Result<Answer, UsaasError> {
        let miner = EmergingTopicMiner::default();
        type DayTerms = BTreeMap<i32, HashMap<String, f64>>;
        let parts: Vec<(Option<(Date, Date)>, DayTerms)> = scatter(&self.parts, |_, g| {
            let corpus = g.social_corpus();
            let vocab = corpus.vocab();
            let mut days: DayTerms = BTreeMap::new();
            for (i, p) in g.forum().posts.iter().enumerate() {
                let mut counts = IdNgramCounts::new();
                counts.add_unigrams(corpus, i, p.engagement_weight());
                let day = days.entry(p.date.days()).or_default();
                for (id, w) in counts.iter_unigrams() {
                    *day.entry(vocab.word(id).to_string()).or_insert(0.0) += w;
                }
            }
            (g.forum().date_range(), days)
        });
        let (start, end) = merged_range(parts.iter().map(|p| p.0))
            .ok_or(UsaasError::Analytics(AnalyticsError::Empty))?;
        let mut day_terms: DayTerms = BTreeMap::new();
        for (_, days) in parts {
            for (day, terms) in days {
                let slot = day_terms.entry(day).or_default();
                for (term, w) in terms {
                    *slot.entry(term).or_insert(0.0) += w;
                }
            }
        }
        /// Share floor: the share a never-seen term is treated as having had.
        const SHARE_FLOOR: f64 = 0.002;
        let sum_days = |from: Date, to: Date| -> HashMap<String, f64> {
            let mut out: HashMap<String, f64> = HashMap::new();
            for (_, terms) in day_terms.range(from.days()..=to.days()) {
                for (term, w) in terms {
                    *out.entry(term.clone()).or_insert(0.0) += w;
                }
            }
            out
        };
        let mut history: HashMap<String, f64> = HashMap::new();
        let mut history_total = 0.0f64;
        let mut detected: HashSet<String> = HashSet::new();
        // (term, window start, window end, weight, novelty) per first flag.
        let mut flagged: Vec<(String, Date, Date, f64, f64)> = Vec::new();
        let mut cursor = start.offset(miner.window_days);
        for (term, w) in sum_days(start, cursor.offset(-1)) {
            *history.entry(term).or_insert(0.0) += w;
            history_total += w;
        }
        while cursor.offset(miner.window_days - 1) <= end {
            let win_start = cursor;
            let win_end = cursor.offset(miner.window_days - 1);
            let counts = sum_days(win_start, win_end);
            let window_total: f64 = counts.values().sum::<f64>().max(1.0);
            for (term, &weight) in &counts {
                if weight < miner.min_weight || detected.contains(term) {
                    continue;
                }
                let hist_share = history.get(term).copied().unwrap_or(0.0) / history_total.max(1.0);
                let window_share = weight / window_total;
                let novelty = window_share / (hist_share + SHARE_FLOOR);
                if novelty >= miner.min_novelty {
                    detected.insert(term.clone());
                    flagged.push((term.clone(), win_start, win_end, weight, novelty));
                }
            }
            for (term, w) in sum_days(win_start, win_start.offset(miner.step_days - 1)) {
                *history.entry(term).or_insert(0.0) += w;
                history_total += w;
            }
            cursor = cursor.offset(miner.step_days);
        }
        // Polarity scan for the flagged terms, back at the partitions.
        let flagged = &flagged;
        let pol_parts: Vec<Vec<(Vec<usize>, Vec<f64>)>> = scatter(&self.parts, |_, g| {
            let corpus = g.social_corpus();
            let vocab = corpus.vocab();
            let analyzer = SentimentAnalyzer::default();
            flagged
                .iter()
                .map(|(term, from, to, _, _)| {
                    let mut locals = Vec::new();
                    let mut pols = Vec::new();
                    for (i, p) in g.forum().posts.iter().enumerate() {
                        if p.date >= *from
                            && p.date <= *to
                            && (p.title.to_lowercase().contains(term)
                                || p.body.to_lowercase().contains(term))
                        {
                            locals.push(i);
                            pols.push(analyzer.score_ids(corpus.doc(i), vocab).polarity());
                        }
                    }
                    (locals, pols)
                })
                .collect()
        });
        let mut topics: Vec<EmergingTopic> = flagged
            .iter()
            .enumerate()
            .map(|(fi, (term, _, win_end, weight, novelty))| {
                let per_part: Vec<(Vec<usize>, Vec<f64>)> = pol_parts
                    .iter()
                    .map(|part| part.get(fi).cloned().unwrap_or_default())
                    .collect();
                let pols = merged_sparse(&self.order.posts, per_part);
                EmergingTopic {
                    term: term.clone(),
                    first_flagged: *win_end,
                    window_weight: *weight,
                    novelty: *novelty,
                    polarity: analytics::mean(&pols).unwrap_or(0.0),
                }
            })
            .collect();
        sort_detections(&mut topics);
        Ok(Answer::Topics(topics))
    }
}

/// Router-side health totals: ingest damage the cluster log recorded plus
/// anything cluster recovery had to repair. Partition-side totals live in
/// the partitions and are aggregated on demand by
/// [`PartitionedService::health`].
#[derive(Debug)]
struct RouterTotals {
    quarantined: usize,
    unfed: usize,
    breaker_trips: usize,
    open_breakers: Vec<String>,
    /// Bounded ring of the most recent router-side dead letters; the
    /// `quarantined` total stays exact while old entries are evicted.
    dead_letters: BoundedLog<QuarantineEntry>,
    /// Bounded ring of the most recent router-side recovery warnings.
    recovery_warnings: BoundedLog<String>,
}

impl Default for RouterTotals {
    fn default() -> RouterTotals {
        RouterTotals {
            quarantined: 0,
            unfed: 0,
            breaker_trips: 0,
            open_breakers: Vec::new(),
            dead_letters: BoundedLog::new(DEAD_LETTER_CAP),
            recovery_warnings: BoundedLog::new(RECOVERY_WARNING_CAP),
        }
    }
}

/// Aggregated cluster health: the per-partition [`ServiceHealth`] reports
/// plus router-level totals, so a degraded partition is never silently
/// dropped from the cluster's health signal.
#[derive(Debug, Clone)]
pub struct ClusterHealth {
    /// Cluster epoch (committed cluster-wide appends).
    pub epoch: u64,
    /// Each partition's own health, in partition order.
    pub partitions: Vec<ServiceHealth>,
    /// Open breakers across the router and every partition, prefixed
    /// `part-N/` for partition-side sources.
    pub open_breakers: Vec<String>,
    /// Dead-lettered items across the router and every partition.
    pub quarantined_total: usize,
    /// Items that never reached a worker pool, cluster-wide.
    pub unfed_total: usize,
    /// Breaker trips cluster-wide.
    pub breaker_trips_total: usize,
    /// Recovery repairs across the cluster log and every partition,
    /// prefixed `part-N:` for partition-side warnings.
    pub recovery_warnings: Vec<String>,
    /// Dead-letter entries evicted from bounded rings cluster-wide (still
    /// counted in `quarantined_total`).
    pub dead_letters_dropped: usize,
    /// Recovery warnings evicted from bounded rings cluster-wide.
    pub recovery_warnings_dropped: usize,
    /// Merged journal observability — the root cluster log plus every
    /// partition's journal ([`JournalStats::merge`] semantics); `None` for
    /// an in-memory cluster.
    pub journal: Option<JournalStats>,
}

impl ClusterHealth {
    /// True when any source's breaker ended the last run open — somewhere
    /// in the cluster — so answers may be stale.
    pub fn is_stale(&self) -> bool {
        !self.open_breakers.is_empty()
    }

    /// True when anything, anywhere in the cluster, has degraded ingestion
    /// or durability. The aggregate fields already fold in every
    /// partition, so one degraded partition degrades the cluster.
    pub fn is_degraded(&self) -> bool {
        self.is_stale()
            || self.quarantined_total > 0
            || self.unfed_total > 0
            || !self.recovery_warnings.is_empty()
    }
}

/// The cluster's durable state: the root journal ("cluster log") every
/// accepted batch is recorded in before any partition commits it, plus the
/// bookkeeping [`PartitionedService::compact_root_log`] needs to drop the
/// log's absorbed prefix safely.
struct ClusterPersist {
    dir: PathBuf,
    journal: Journal,
    last_seq: u64,
    /// Records currently live in the cluster log.
    live_records: u64,
    /// Seq of the oldest record in the cluster log (0 when the live prefix
    /// was fully compacted away and nothing has been appended since).
    oldest_live_seq: u64,
    /// One entry per live record, in seq order: `(seq, per-partition
    /// non-empty flags)`. The flags are what
    /// [`PartitionedService::compact_root_log`] folds to decide how many
    /// committed batches each record contributes per partition.
    ledger: VecDeque<(u64, Vec<bool>)>,
    /// Committed non-empty sub-batches per partition *before* the first
    /// ledger entry — the indexing origin compaction advances as it drops
    /// records.
    base_count: Vec<u64>,
    /// Root-log compaction passes that actually dropped records.
    compactions: u64,
    /// Root-log records dropped across all compaction passes.
    records_compacted: u64,
}

/// A consistent-hash sharded [`UsaasService`] cluster behind a merging
/// query router.
///
/// Sessions shard by `user_id`, posts by `author_id`; queries fan out to
/// every partition in parallel and the router merges the partials into
/// answers bit-identical to a single [`UsaasService`] over the same data,
/// at every partition and worker count.
pub struct PartitionedService {
    parts: Vec<UsaasService>,
    ring: HashRing,
    workers: usize,
    current: RwLock<Arc<ClusterSnapshot>>,
    append_lock: Mutex<()>,
    totals: Mutex<RouterTotals>,
    persist: Option<Mutex<ClusterPersist>>,
}

impl PartitionedService {
    /// Build an in-memory cluster of `partitions` shards, `workers` threads
    /// per partition (and per router scatter).
    pub fn build(
        dataset: CallDataset,
        forum: Forum,
        partitions: usize,
        workers: usize,
    ) -> PartitionedService {
        let ring = HashRing::new(partitions);
        let mut order = OrderMaps::new(ring.partitions());
        let batches = ring.split(dataset.sessions, forum.posts, &mut order);
        let parts = Self::build_partitions(batches, workers);
        Self::assemble(parts, ring, order, workers, None)
    }

    /// Build a *durable* cluster in `dir`: the cluster log and metadata at
    /// the root, one `part-N/` persisted service per partition. Refuses a
    /// directory that already holds a persisted cluster — that is what
    /// [`PartitionedService::open_or_recover`] is for.
    pub fn build_persistent(
        dataset: CallDataset,
        forum: Forum,
        partitions: usize,
        workers: usize,
        dir: &Path,
    ) -> Result<PartitionedService, PersistError> {
        std::fs::create_dir_all(dir)?;
        if dir.join(JOURNAL_FILE).exists() || dir.join(CLUSTER_META).exists() {
            return Err(PersistError::Corrupt {
                file: dir.display().to_string(),
                detail: "directory already holds a persisted cluster; open_or_recover it instead"
                    .to_string(),
            });
        }
        let ring = HashRing::new(partitions);
        write_meta(dir, ring.partitions())?;
        let mut journal = Journal::open_append(&dir.join(JOURNAL_FILE))?;
        // The base record (always seq 1) carries the full build dataset, so
        // recovery can re-derive the order maps before any partition opens.
        journal.append(&JournalRecord {
            seq: 1,
            epoch_after: 0,
            sessions: dataset.sessions.clone(),
            posts: forum.posts.clone(),
            ..JournalRecord::default()
        })?;
        let mut order = OrderMaps::new(ring.partitions());
        let batches = ring.split(dataset.sessions, forum.posts, &mut order);
        let mut parts = Vec::new();
        for (p, (sessions, posts)) in batches.into_iter().enumerate() {
            parts.push(UsaasService::build_persistent(
                CallDataset { sessions },
                Forum { posts },
                workers,
                &dir.join(format!("part-{p}")),
            )?);
        }
        let mut ledger = VecDeque::new();
        // The base record commits through the partitions' own builds, not
        // through roll-forward, so its ledger flags are all-false.
        ledger.push_back((1, vec![false; ring.partitions()]));
        let persist = Some(Mutex::new(ClusterPersist {
            dir: dir.to_path_buf(),
            journal,
            last_seq: 1,
            live_records: 1,
            oldest_live_seq: 1,
            ledger,
            base_count: vec![0; ring.partitions()],
            compactions: 0,
            records_compacted: 0,
        }));
        Ok(Self::assemble(parts, ring, order, workers, persist))
    }

    /// Reopen a persisted cluster: recover every partition, re-derive the
    /// order maps from the newest cluster root snapshot (when one exists)
    /// plus a replay of the cluster log through the ring, and roll forward
    /// any partition that persisted fewer committed batches than the log
    /// records (per-partition crash recovery). Repairs land in
    /// [`ClusterHealth::recovery_warnings`] instead of failing the open.
    pub fn open_or_recover(dir: &Path, workers: usize) -> Result<PartitionedService, PersistError> {
        let partitions = read_meta(dir)?;
        let ring = HashRing::new(partitions);
        let mut warnings = Vec::new();
        // Newest loadable cluster root snapshot: the order maps, router
        // totals, and per-partition batch counts through `covered_seq`,
        // written by `compact_root_log` before it drops the absorbed log
        // prefix. `None` on a never-compacted cluster — the legacy path,
        // where the full log (base record included) re-derives everything.
        let snap = match load_latest_cluster_snapshot(dir, &mut warnings) {
            Some(s) if s.partitions != partitions => {
                warnings.push(format!(
                    "cluster snapshot was built for {} partition(s) but cluster.meta says \
                     {partitions}; ignoring it",
                    s.partitions
                ));
                None
            }
            other => other,
        };
        let covered = snap.as_ref().map(|s| s.covered_seq).unwrap_or(0);
        let records = read_and_repair_journal(&dir.join(JOURNAL_FILE), &mut warnings)?;
        if snap.is_none() && records.first().map(|r| r.seq) != Some(1) {
            warnings
                .push("cluster log lost its base record; query merges may drop rows".to_string());
        }
        if let Some(first) = records.first().map(|r| r.seq) {
            if covered > 0 && first > covered + 1 {
                warnings.push(format!(
                    "cluster log starts at seq {first} but the newest cluster snapshot covers \
                     only seq {covered}; records in between are lost"
                ));
            }
        }
        let mut parts = Vec::new();
        for p in 0..partitions {
            parts.push(UsaasService::open_or_recover(
                &dir.join(format!("part-{p}")),
                workers,
            )?);
        }
        let mut order = OrderMaps::new(partitions);
        let mut totals = RouterTotals::default();
        let mut cluster_epoch = 0u64;
        let mut last_seq = 0u64;
        if let Some(s) = &snap {
            order.sessions = s.session_maps.clone();
            order.posts = s.post_maps.clone();
            order.total_sessions = s.total_sessions;
            order.total_posts = s.total_posts;
            totals.quarantined = s.quarantined;
            totals.unfed = s.unfed;
            totals.breaker_trips = s.breaker_trips;
            totals.open_breakers = s.open_breakers.clone();
            totals.dead_letters.replace(s.dead_letters.clone());
            totals.dead_letters.set_dropped(s.dead_letters_dropped);
            cluster_epoch = s.epoch;
            last_seq = s.covered_seq;
        }
        // Every surviving record contributes roll-forward batches, but only
        // records *past* the snapshot's coverage contribute to the maps,
        // totals, and epoch — pre-covered survivors (a compaction that
        // crashed between snapshot write and journal rewrite) split into a
        // scratch map so their batches can still index correctly.
        let mut scratch = OrderMaps::new(partitions);
        let mut pending: Vec<Vec<PartitionBatch>> = vec![Vec::new(); partitions];
        // Pre-covered pending batches per partition — subtracted from the
        // snapshot's cumulative counts to find the indexing origin of
        // `pending` (`base_count`).
        let mut cnt_pre = vec![0u64; partitions];
        let mut ledger: VecDeque<(u64, Vec<bool>)> = VecDeque::new();
        let live_records = records.len() as u64;
        let oldest_live_seq = records.first().map(|r| r.seq).unwrap_or(0);
        for rec in records {
            let is_base = rec.seq == 1;
            let seq = rec.seq;
            let pre_covered = seq <= covered;
            let maps = if pre_covered {
                &mut scratch
            } else {
                &mut order
            };
            let batches = ring.split(rec.sessions, rec.posts, maps);
            let mut flags = vec![false; partitions];
            if !is_base {
                for (p, batch) in batches.into_iter().enumerate() {
                    if !batch.0.is_empty() || !batch.1.is_empty() {
                        flags[p] = true;
                        if pre_covered {
                            cnt_pre[p] += 1;
                        }
                        pending[p].push(batch);
                    }
                }
            }
            if !pre_covered {
                totals.quarantined += rec.quarantined.len();
                totals.unfed += rec.unfed;
                totals.breaker_trips += rec.breaker_trips;
                totals.open_breakers = rec.open_breakers;
                totals.dead_letters.extend(rec.quarantined);
                cluster_epoch = rec.epoch_after;
            }
            last_seq = last_seq.max(seq);
            ledger.push_back((seq, flags));
        }
        // Committed batches per partition *before* the first entry of
        // `pending` — zero without a snapshot (the log starts at the base
        // record), else the snapshot's cumulative count minus the
        // pre-covered survivors that also landed in `pending`.
        let base_count: Vec<u64> = match &snap {
            Some(s) => s
                .batch_counts
                .iter()
                .zip(&cnt_pre)
                .map(|(c, pre)| c.saturating_sub(*pre))
                .collect(),
            None => vec![0; partitions],
        };
        // Roll forward partitions that crashed before persisting batches
        // the cluster log committed.
        for (p, part) in parts.iter().enumerate() {
            let have = part.epoch();
            let base = base_count[p];
            let want = base + pending[p].len() as u64;
            if have > want {
                warnings.push(format!(
                    "part-{p} is ahead of the cluster log (epoch {have}, expected {want})"
                ));
            } else if have < base {
                // The partition fell behind the compacted prefix — batches
                // (have, base] left the log, so full repair is impossible.
                // Replay what remains and flag the gap.
                warnings.push(format!(
                    "part-{p} recovered at epoch {have}, below the compacted cluster log's \
                     floor {base}; replaying only the {} retained batch(es)",
                    pending[p].len()
                ));
                for (sessions, posts) in pending[p].iter() {
                    let _ = part.append_batch(sessions.clone(), posts.clone());
                }
            } else if have < want {
                warnings.push(format!(
                    "part-{p} recovered at epoch {have}, cluster log expects {want}; \
                     replaying {} batch(es)",
                    want - have
                ));
                for (sessions, posts) in pending[p].iter().skip((have - base) as usize) {
                    let _ = part.append_batch(sessions.clone(), posts.clone());
                }
            }
        }
        totals.recovery_warnings.replace(warnings);
        let journal = Journal::open_append(&dir.join(JOURNAL_FILE))?;
        let snapshots: Vec<Arc<Generation>> = parts.iter().map(UsaasService::snapshot).collect();
        let snapshot = ClusterSnapshot::new(cluster_epoch, snapshots, Arc::new(order), workers);
        Ok(PartitionedService {
            parts,
            ring,
            workers,
            current: RwLock::new(Arc::new(snapshot)),
            append_lock: Mutex::new(()),
            totals: Mutex::new(totals),
            persist: Some(Mutex::new(ClusterPersist {
                dir: dir.to_path_buf(),
                journal,
                last_seq,
                live_records,
                oldest_live_seq,
                ledger,
                base_count,
                compactions: 0,
                records_compacted: 0,
            })),
        })
    }

    fn build_partitions(batches: Vec<PartitionBatch>, workers: usize) -> Vec<UsaasService> {
        let mut slots: Vec<Option<UsaasService>> = Vec::new();
        slots.resize_with(batches.len(), || None);
        crossbeam::thread::scope(|scope| {
            for (slot, (sessions, posts)) in slots.iter_mut().zip(batches) {
                scope.spawn(move |_| {
                    *slot = Some(UsaasService::build(
                        CallDataset { sessions },
                        Forum { posts },
                        workers,
                    ));
                });
            }
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        slots
            .into_iter()
            .map(|slot| slot.expect("every spawned builder fills its slot"))
            .collect()
    }

    fn assemble(
        parts: Vec<UsaasService>,
        ring: HashRing,
        order: OrderMaps,
        workers: usize,
        persist: Option<Mutex<ClusterPersist>>,
    ) -> PartitionedService {
        let snapshots: Vec<Arc<Generation>> = parts.iter().map(UsaasService::snapshot).collect();
        let snapshot = ClusterSnapshot::new(0, snapshots, Arc::new(order), workers);
        PartitionedService {
            parts,
            ring,
            workers,
            current: RwLock::new(Arc::new(snapshot)),
            append_lock: Mutex::new(()),
            totals: Mutex::new(RouterTotals::default()),
            persist,
        }
    }

    /// Pin the current cluster snapshot — a cheap `Arc` clone.
    fn snapshot(&self) -> Arc<ClusterSnapshot> {
        self.current.read().clone()
    }

    /// Number of partitions in the cluster.
    pub fn partitions(&self) -> usize {
        self.ring.partitions()
    }

    /// True when the cluster was opened on a persist directory.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Cluster epoch: committed cluster-wide appends since the build.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Signal counts `(implicit, explicit, social)` summed over partitions.
    pub fn signal_counts(&self) -> (usize, usize, usize) {
        self.parts
            .iter()
            .map(UsaasService::signal_counts)
            .fold((0, 0, 0), |acc, c| (acc.0 + c.0, acc.1 + c.1, acc.2 + c.2))
    }

    /// Merged-answer cache hits of the current cluster epoch.
    pub fn cache_hits(&self) -> usize {
        self.snapshot().answers.hits()
    }

    /// Merged-answer cache misses of the current cluster epoch (distinct
    /// queries merged this epoch).
    pub fn cache_misses(&self) -> usize {
        self.snapshot().answers.misses()
    }

    /// Answer one query by scattering it to every partition and merging the
    /// partials — bit-identical to a single [`UsaasService`] over the same
    /// data. Merged answers are memoized per cluster epoch.
    pub fn query(&self, query: &Query) -> Result<Answer, UsaasError> {
        self.snapshot().query(query)
    }

    /// [`PartitionedService::query`] bypassing the cluster's merged-answer
    /// cache — every partition scatter recomputes (partition-generation
    /// caches still apply). This is the scaling-measurement path.
    pub fn answer_fresh(&self, query: &Query) -> Result<Answer, UsaasError> {
        self.snapshot().answer_merged(query)
    }

    /// Answer one query and annotate it with the cluster's health — the
    /// degraded-serving contract extended cluster-wide.
    pub fn query_with_health(&self, query: &Query) -> (Result<Answer, UsaasError>, ClusterHealth) {
        (self.query(query), self.health())
    }

    /// Answer a batch of queries concurrently, one scoped worker per query;
    /// results come back in input order. The whole batch pins **one**
    /// cluster snapshot, so its answers are mutually consistent even if an
    /// append commits mid-batch, and the workers share the epoch's merged
    /// caches.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<Answer, UsaasError>> {
        let snapshot = self.snapshot();
        let mut results: Vec<Option<Result<Answer, UsaasError>>> = Vec::new();
        results.resize_with(queries.len(), || None);
        crossbeam::thread::scope(|scope| {
            for (slot, query) in results.iter_mut().zip(queries) {
                let snapshot = &snapshot;
                scope.spawn(move |_| {
                    *slot = Some(snapshot.query(query));
                });
            }
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        results
            .into_iter()
            .map(|slot| slot.expect("every spawned worker fills its slot"))
            .collect()
    }

    /// Ingest `sources` through the resilient streaming engine at the
    /// router, journal the accepted batch in the cluster log, then split it
    /// across partitions and commit them in parallel. Per-partition ingest
    /// damage comes back in the report with `part-N/`-prefixed source
    /// names. A cluster-log write failure aborts the commit cluster-wide —
    /// memory matches disk, and the failure lands in
    /// [`ClusterHealth::recovery_warnings`].
    pub fn ingest_append(
        &self,
        sources: Vec<Box<dyn Source + '_>>,
        cfg: &IngestConfig,
    ) -> IngestReport {
        let _appending = self.append_lock.lock();
        // Router-side validation store: quarantine/breaker bookkeeping
        // happens here; the accepted items' signals are (re-)derived by the
        // partitions' own stores on append.
        let scratch = SignalStore::new();
        let (mut report, accepted) = ingest::ingest_stream_collect(&scratch, sources, cfg);
        let mut sessions: Vec<SessionRecord> = Vec::new();
        let mut posts: Vec<Post> = Vec::new();
        for item in accepted {
            match item {
                RawItem::Session(s) => sessions.push(*s),
                RawItem::Post(p) => posts.push(*p),
                RawItem::Poison(_) => {}
            }
        }
        let mut will_commit = !sessions.is_empty() || !posts.is_empty();
        let base = self.snapshot();
        if let Some(persist) = &self.persist {
            // Ledger flags for compaction bookkeeping: which partitions
            // this record hands a non-empty sub-batch (computed before the
            // lock — routing is a pure ring lookup, no split needed yet).
            let mut flags = vec![false; self.ring.partitions()];
            for s in &sessions {
                flags[self.ring.partition_of(s.user_id)] = true;
            }
            for p in &posts {
                flags[self.ring.partition_of(p.author_id)] = true;
            }
            let mut state = persist.lock();
            let record = JournalRecord {
                seq: state.last_seq + 1,
                epoch_after: base.epoch + u64::from(will_commit),
                sessions,
                posts,
                quarantined: report.quarantined.clone(),
                unfed: report.unfed,
                breaker_trips: report.breaker_trips,
                open_breakers: report.open_breakers(),
            };
            match state.journal.append(&record) {
                Ok(()) => {
                    state.last_seq = record.seq;
                    state.live_records += 1;
                    if state.oldest_live_seq == 0 {
                        state.oldest_live_seq = record.seq;
                    }
                    state.ledger.push_back((record.seq, flags));
                }
                Err(e) => {
                    will_commit = false;
                    self.totals.lock().recovery_warnings.push(format!(
                        "cluster log append for seq {} failed; batch not committed so memory \
                         matches disk — retry after the journal recovers: {e}",
                        record.seq
                    ));
                }
            }
            sessions = record.sessions;
            posts = record.posts;
        }
        self.note_report(&report);
        if will_commit {
            let mut order = (*base.order).clone();
            let batches = self.ring.split(sessions, posts, &mut order);
            let part_reports: Vec<Option<IngestReport>> = {
                let mut slots: Vec<Option<Option<IngestReport>>> = Vec::new();
                slots.resize_with(self.parts.len(), || None);
                crossbeam::thread::scope(|scope| {
                    for ((slot, part), (sessions, posts)) in
                        slots.iter_mut().zip(&self.parts).zip(batches)
                    {
                        scope.spawn(move |_| {
                            // Empty sub-batches are skipped so the
                            // partition's epoch advances only on batches
                            // the recovery roll-forward will count.
                            *slot = Some(if sessions.is_empty() && posts.is_empty() {
                                None
                            } else {
                                Some(part.append_batch(sessions, posts))
                            });
                        });
                    }
                })
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                slots
                    .into_iter()
                    .map(|slot| slot.expect("every spawned appender fills its slot"))
                    .collect()
            };
            for (p, part_report) in part_reports.into_iter().enumerate() {
                let Some(mut pr) = part_report else { continue };
                report.stored += pr.stored;
                report.fed += pr.fed;
                report.unfed += pr.unfed;
                report.retries += pr.retries;
                report.breaker_trips += pr.breaker_trips;
                for q in &mut pr.quarantined {
                    q.source = format!("part-{p}/{}", q.source);
                }
                report.quarantined.extend(pr.quarantined);
                for s in &mut pr.sources {
                    s.name = format!("part-{p}/{}", s.name);
                }
                report.sources.extend(pr.sources);
            }
            let snapshots: Vec<Arc<Generation>> =
                self.parts.iter().map(UsaasService::snapshot).collect();
            let next =
                ClusterSnapshot::new(base.epoch + 1, snapshots, Arc::new(order), self.workers);
            *self.current.write() = Arc::new(next);
        }
        report
    }

    /// Append trusted in-memory batches — the convenience path over
    /// [`PartitionedService::ingest_append`].
    pub fn append_batch(&self, sessions: Vec<SessionRecord>, posts: Vec<Post>) -> IngestReport {
        let cfg = IngestConfig::with_workers(self.workers);
        let mut sources: Vec<Box<dyn Source>> = Vec::new();
        if !sessions.is_empty() {
            let items: Vec<RawItem> = sessions
                .into_iter()
                .map(|s| RawItem::Session(Box::new(s)))
                .collect();
            sources.push(Box::new(ItemSource::new("append-sessions", items)));
        }
        if !posts.is_empty() {
            let items: Vec<RawItem> = posts
                .into_iter()
                .map(|p| RawItem::Post(Box::new(p)))
                .collect();
            sources.push(Box::new(ItemSource::new("append-posts", items)));
        }
        self.ingest_append(sources, &cfg)
    }

    fn note_report(&self, report: &IngestReport) {
        let mut totals = self.totals.lock();
        totals.quarantined += report.quarantined.len();
        totals.unfed += report.unfed;
        totals.breaker_trips += report.breaker_trips;
        totals.open_breakers = report.open_breakers();
        totals
            .dead_letters
            .extend(report.quarantined.iter().cloned());
    }

    /// Aggregated cluster health: router totals folded with every
    /// partition's live [`ServiceHealth`], so a degraded partition always
    /// degrades the cluster's aggregate.
    pub fn health(&self) -> ClusterHealth {
        let epoch = self.epoch();
        let partitions: Vec<ServiceHealth> = self.parts.iter().map(UsaasService::health).collect();
        // Root journal stats take the cluster persist lock; like the
        // single-service path, grab them before the totals lock
        // (`ingest_append` pushes into totals while holding persist).
        let mut journal = self.root_journal_stats();
        for part in partitions.iter().filter_map(|h| h.journal.as_ref()) {
            match &mut journal {
                Some(j) => j.merge(part),
                None => journal = Some(*part),
            }
        }
        let totals = self.totals.lock();
        let mut open_breakers = totals.open_breakers.clone();
        let mut quarantined_total = totals.quarantined;
        let mut unfed_total = totals.unfed;
        let mut breaker_trips_total = totals.breaker_trips;
        let mut recovery_warnings = totals.recovery_warnings.to_vec();
        let mut dead_letters_dropped = totals.dead_letters.dropped();
        let mut recovery_warnings_dropped = totals.recovery_warnings.dropped();
        for (p, h) in partitions.iter().enumerate() {
            open_breakers.extend(h.open_breakers.iter().map(|b| format!("part-{p}/{b}")));
            quarantined_total += h.quarantined_total;
            unfed_total += h.unfed_total;
            breaker_trips_total += h.breaker_trips_total;
            recovery_warnings.extend(h.recovery_warnings.iter().map(|w| format!("part-{p}: {w}")));
            dead_letters_dropped += h.dead_letters_dropped;
            recovery_warnings_dropped += h.recovery_warnings_dropped;
        }
        ClusterHealth {
            epoch,
            partitions,
            open_breakers,
            quarantined_total,
            unfed_total,
            breaker_trips_total,
            recovery_warnings,
            dead_letters_dropped,
            recovery_warnings_dropped,
            journal,
        }
    }

    /// Journal stats of the root cluster log alone; `None` for an
    /// in-memory cluster. Compaction counters count
    /// [`PartitionedService::compact_root_log`] passes that dropped
    /// records since this handle opened.
    pub fn root_journal_stats(&self) -> Option<JournalStats> {
        let persist = self.persist.as_ref()?;
        let state = persist.lock();
        let bytes = std::fs::metadata(state.dir.join(JOURNAL_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        Some(JournalStats {
            bytes,
            records: state.live_records,
            oldest_live_seq: state.oldest_live_seq,
            last_seq: state.last_seq,
            compactions: state.compactions,
            records_compacted: state.records_compacted,
        })
    }

    /// Merged journal observability — the root cluster log folded with
    /// every partition's journal ([`JournalStats::merge`] semantics);
    /// `None` for an in-memory cluster.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        let mut journal = self.root_journal_stats();
        for part in &self.parts {
            if let Some(stats) = part.journal_stats() {
                match &mut journal {
                    Some(j) => j.merge(&stats),
                    None => journal = Some(stats),
                }
            }
        }
        journal
    }

    /// The cluster's dead-letter queue: router-quarantined items plus every
    /// partition's, with partition sources prefixed `part-N/`.
    pub fn dead_letters(&self) -> Vec<QuarantineEntry> {
        let mut out = self.totals.lock().dead_letters.to_vec();
        for (p, part) in self.parts.iter().enumerate() {
            out.extend(part.dead_letters().into_iter().map(|mut q| {
                q.source = format!("part-{p}/{}", q.source);
                q
            }));
        }
        out
    }

    /// Durably checkpoint every partition; returns the written snapshot
    /// paths in partition order. Errors with
    /// [`PersistError::NotPersistent`] on an in-memory cluster.
    pub fn checkpoint(&self) -> Result<Vec<PathBuf>, PersistError> {
        if self.persist.is_none() {
            return Err(PersistError::NotPersistent);
        }
        let _appending = self.append_lock.lock();
        self.parts.iter().map(UsaasService::checkpoint).collect()
    }

    /// Durably write a **full** snapshot of every partition (see
    /// [`UsaasService::checkpoint_full`]); returns the written paths in
    /// partition order. Rolling fulls advances each partition's
    /// oldest-retained-full floor, which is exactly what lets
    /// [`PartitionedService::compact_root_log`] drop more of the cluster
    /// log — the operator-maintenance lever for a long-lived cluster.
    pub fn checkpoint_full(&self) -> Result<Vec<PathBuf>, PersistError> {
        if self.persist.is_none() {
            return Err(PersistError::NotPersistent);
        }
        let _appending = self.append_lock.lock();
        self.parts
            .iter()
            .map(UsaasService::checkpoint_full)
            .collect()
    }

    /// Durably checkpoint one partition (see [`UsaasService::checkpoint`])
    /// — the staggered-cadence unit the cluster daemon drives so N
    /// fsync-heavy checkpoints never align on one tick.
    pub fn checkpoint_partition(&self, partition: usize) -> Result<PathBuf, PersistError> {
        if self.persist.is_none() {
            return Err(PersistError::NotPersistent);
        }
        let _appending = self.append_lock.lock();
        self.parts[partition].checkpoint()
    }

    /// Compact one partition's write-ahead journal (see
    /// [`UsaasService::compact_journal`]).
    pub fn compact_partition_journal(
        &self,
        partition: usize,
    ) -> Result<CompactionReport, PersistError> {
        if self.persist.is_none() {
            return Err(PersistError::NotPersistent);
        }
        let _appending = self.append_lock.lock();
        self.parts[partition].compact_journal()
    }

    /// Compact every partition's write-ahead journal (see
    /// [`UsaasService::compact_journal`]); returns the per-partition
    /// reports in partition order. The root cluster log compacts
    /// separately through [`PartitionedService::compact_root_log`], which
    /// first checkpoints the recovery state the dropped records would have
    /// re-derived.
    pub fn compact_journals(&self) -> Result<Vec<CompactionReport>, PersistError> {
        if self.persist.is_none() {
            return Err(PersistError::NotPersistent);
        }
        let _appending = self.append_lock.lock();
        self.parts
            .iter()
            .map(UsaasService::compact_journal)
            .collect()
    }

    /// Compact the root cluster log: write a cluster root snapshot (order
    /// maps, router totals, per-partition batch counts through `last_seq`),
    /// then drop the log prefix that every recovery path has durably
    /// absorbed, byte-verbatim via the same atomic rewrite the partition
    /// journals use.
    ///
    /// The safety bound is the *minimum* over two floors, walked record by
    /// record from the front of the log:
    ///
    /// 1. the **oldest retained** cluster root snapshot's `covered_seq` —
    ///    so even if the newest snapshot is corrupt at rest, the fallback
    ///    snapshot still covers everything the log no longer holds;
    /// 2. for every partition, the cumulative batch count a record brings
    ///    partition `p` to must stay ≤ the seq of `p`'s **oldest retained
    ///    full snapshot** — the worst state `p` can legally recover to.
    ///    Roll-forward then only ever needs batches *newer* than the
    ///    dropped prefix, which are exactly the records kept.
    ///
    /// A pass that finds nothing droppable returns a no-op report
    /// (`dropped_records == 0`) without touching the journal file.
    pub fn compact_root_log(&self) -> Result<CompactionReport, PersistError> {
        let Some(persist) = &self.persist else {
            return Err(PersistError::NotPersistent);
        };
        let _appending = self.append_lock.lock();
        let snapshot = self.snapshot();
        let partitions = self.ring.partitions();
        let mut state = persist.lock();
        // Cumulative per-partition batch counts through last_seq: the
        // pre-ledger origin plus every live record's flags.
        let mut batch_counts = state.base_count.clone();
        for (_, flags) in &state.ledger {
            for (count, &hit) in batch_counts.iter_mut().zip(flags) {
                *count += u64::from(hit);
            }
        }
        let contents = {
            // persist → totals is the established lock order (ingest_append
            // pushes append-failure warnings into totals under persist).
            let totals = self.totals.lock();
            ClusterSnapContents {
                covered_seq: state.last_seq,
                epoch: snapshot.epoch,
                partitions,
                batch_counts,
                session_maps: snapshot.order.sessions.clone(),
                post_maps: snapshot.order.posts.clone(),
                total_sessions: snapshot.order.total_sessions,
                total_posts: snapshot.order.total_posts,
                quarantined: totals.quarantined,
                unfed: totals.unfed,
                breaker_trips: totals.breaker_trips,
                open_breakers: totals.open_breakers.clone(),
                dead_letters: totals.dead_letters.to_vec(),
                dead_letters_dropped: totals.dead_letters.dropped(),
            }
        };
        write_cluster_snapshot(&state.dir, &contents)?;
        // Floor 1: the oldest retained cluster snapshot's coverage.
        let snap_bound = cluster_snapshot_seqs(&state.dir)?
            .last()
            .copied()
            .unwrap_or(0);
        // Floor 2: every partition's oldest retained full snapshot seq
        // (always present — a persisted partition writes snapshot-0 at
        // build time).
        let mut floors = Vec::with_capacity(partitions);
        for p in 0..partitions {
            let floor = snapshot_seqs(&state.dir.join(format!("part-{p}")))?
                .last()
                .copied()
                .unwrap_or(0);
            floors.push(floor);
        }
        let mut tentative = state.base_count.clone();
        let mut safe_seq = 0u64;
        for (seq, flags) in &state.ledger {
            let mut next = tentative.clone();
            for (count, &hit) in next.iter_mut().zip(flags) {
                *count += u64::from(hit);
            }
            let absorbed = next
                .iter()
                .zip(&floors)
                .all(|(count, &floor)| *count <= floor);
            if *seq <= snap_bound && absorbed {
                safe_seq = *seq;
                tentative = next;
            } else {
                break;
            }
        }
        if safe_seq == 0 {
            let bytes = std::fs::metadata(state.dir.join(JOURNAL_FILE))
                .map(|m| m.len())
                .unwrap_or(0);
            return Ok(CompactionReport {
                safe_seq: 0,
                kept_records: state.live_records,
                dropped_records: 0,
                oldest_live_seq: state.oldest_live_seq,
                bytes_before: bytes,
                bytes_after: bytes,
            });
        }
        let report = compact_journal_file(&state.dir, safe_seq)?;
        if report.dropped_records > 0 {
            // The rewrite replaced the inode the append handle points at.
            state.journal = Journal::open_append(&state.dir.join(JOURNAL_FILE))?;
            state.live_records = report.kept_records;
            state.oldest_live_seq = report.oldest_live_seq;
            while let Some(&(seq, _)) = state.ledger.front() {
                if seq > safe_seq {
                    break;
                }
                let (_, flags) = state.ledger.pop_front().expect("front checked above");
                for (count, &hit) in state.base_count.iter_mut().zip(&flags) {
                    *count += u64::from(hit);
                }
            }
            state.compactions += 1;
            state.records_compacted += report.dropped_records;
        }
        Ok(report)
    }
}

/// The cluster behind the daemon: each partition is an independently
/// checkpointable persist unit (the daemon staggers their cadences), and
/// the shared root cluster log compacts through
/// [`PartitionedService::compact_root_log`].
impl crate::daemon::ServeTarget for PartitionedService {
    type Health = ClusterHealth;

    fn ingest_append<'a>(
        &self,
        sources: Vec<Box<dyn Source + 'a>>,
        cfg: &IngestConfig,
    ) -> IngestReport {
        PartitionedService::ingest_append(self, sources, cfg)
    }

    fn epoch(&self) -> u64 {
        PartitionedService::epoch(self)
    }

    fn is_persistent(&self) -> bool {
        PartitionedService::is_persistent(self)
    }

    fn health(&self) -> ClusterHealth {
        PartitionedService::health(self)
    }

    fn journal_stats(&self) -> Option<JournalStats> {
        PartitionedService::journal_stats(self)
    }

    fn persist_units(&self) -> usize {
        self.partitions()
    }

    fn checkpoint_unit(&self, unit: usize) -> Result<PathBuf, PersistError> {
        self.checkpoint_partition(unit)
    }

    fn compact_unit(&self, unit: usize) -> Result<CompactionReport, PersistError> {
        self.compact_partition_journal(unit)
    }

    fn compact_root(&self) -> Option<Result<CompactionReport, PersistError>> {
        Some(self.compact_root_log())
    }
}

/// Write the cluster metadata file (atomically, via a tmp-file rename):
/// magic, format version, partition count.
fn write_meta(dir: &Path, partitions: usize) -> Result<(), PersistError> {
    let mut bytes = Vec::with_capacity(12);
    bytes.extend_from_slice(&META_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&(partitions as u32).to_le_bytes());
    let tmp = dir.join(format!("{CLUSTER_META}.tmp"));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, dir.join(CLUSTER_META))?;
    Ok(())
}

/// Read back the partition count from the cluster metadata file.
fn read_meta(dir: &Path) -> Result<usize, PersistError> {
    let path = dir.join(CLUSTER_META);
    let corrupt = |detail: &str| PersistError::Corrupt {
        file: path.display().to_string(),
        detail: detail.to_string(),
    };
    let bytes = std::fs::read(&path)?;
    if bytes.len() != 12 {
        return Err(corrupt("cluster metadata has the wrong length"));
    }
    let word = |i: usize| u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    if word(0) != META_MAGIC {
        return Err(corrupt("cluster metadata magic mismatch"));
    }
    if word(1) != 1 {
        return Err(corrupt("unsupported cluster metadata version"));
    }
    let partitions = word(2) as usize;
    if partitions == 0 || partitions > 4096 {
        return Err(corrupt("implausible partition count"));
    }
    Ok(partitions)
}
