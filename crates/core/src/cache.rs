//! A lock-striped memoization cache for query answers.
//!
//! [`super::service::UsaasService::query_batch`] fans a batch out across
//! scoped workers; multi-tenant deployments replay the same figure mix for
//! every dashboard refresh. Both patterns repeat identical queries, and
//! every aggregate the service computes is a pure function of the immutable
//! dataset — so each distinct query needs computing exactly once per
//! service lifetime.
//!
//! [`MemoCache`] generalises the service's existing outage `OnceLock` to
//! arbitrary keys: a fixed array of shards, each an `RwLock` over a map
//! from key to `Arc<OnceLock<V>>`. Insertion of the cell takes a brief
//! write lock; the (possibly long) compute runs *outside* any shard lock,
//! inside the cell's own `OnceLock`, so two workers racing on the same key
//! compute once and everyone else blocks only on that key — never on the
//! shard. Striping keeps unrelated keys from contending on a single map
//! lock under `query_batch` fan-out.
//!
//! ## Two-tier answer path
//!
//! Since the materialized-view layer ([`crate::views`]) landed, the cache
//! is the *outer* of two tiers. A query first consults `MemoCache` — the
//! per-epoch answer table, invalidated wholesale when a new generation is
//! published. On a miss, the service routes view-backed queries through
//! [`crate::views::ViewSet`]: carried accumulators that survive epoch
//! rollover and absorb each ingested batch as an O(delta) update, so a
//! post-append miss pays only a cheap finishing pass instead of a full
//! recompute. Queries with no view key fall through to the cold path. The
//! division of labour: `MemoCache` deduplicates *within* an epoch, views
//! carry work *across* epochs.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of independent shard locks. Small power of two: enough to spread
/// a batch of concurrent distinct keys, cheap enough to iterate for `len`.
const SHARDS: usize = 8;

/// A compute-once cache from `K` to `V` with observable hit/miss counters.
pub struct MemoCache<K, V> {
    shards: [RwLock<HashMap<K, Arc<OnceLock<V>>>>; SHARDS],
    hasher: RandomState,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K, V> Default for MemoCache<K, V> {
    fn default() -> MemoCache<K, V> {
        MemoCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hasher: RandomState::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) % SHARDS
    }

    /// Return the cached value for `key`, computing it with `f` on first
    /// use. Concurrent callers with the same key run `f` once; the rest
    /// wait on that key's cell only. A lookup that finds an existing cell
    /// counts as a hit even if the value is still being computed — the
    /// compute was shared either way.
    pub fn get_or_compute<F: FnOnce() -> V>(&self, key: K, f: F) -> V {
        let shard = &self.shards[self.shard_of(&key)];
        let cell = {
            let map = shard.read();
            map.get(&key).cloned()
        };
        let cell = match cell {
            Some(cell) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cell
            }
            None => {
                let mut map = shard.write();
                // Re-check under the write lock: another worker may have
                // inserted the cell between our read and write.
                if let Some(cell) = map.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    cell.clone()
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    map.insert(key, cell.clone());
                    cell
                }
            }
        };
        cell.get_or_init(f).clone()
    }

    /// Lookups that found an existing entry.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that created the entry (distinct keys seen).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct keys cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no key has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_per_key() {
        let cache: MemoCache<u32, u32> = MemoCache::default();
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_compute(7, || {
                calls.fetch_add(1, Ordering::SeqCst);
                49
            });
            assert_eq!(v, 49);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_share() {
        let cache: MemoCache<(u8, u8), u16> = MemoCache::default();
        for a in 0..4u8 {
            for b in 0..4u8 {
                let v = cache.get_or_compute((a, b), || u16::from(a) * 10 + u16::from(b));
                assert_eq!(v, u16::from(a) * 10 + u16::from(b));
            }
        }
        assert_eq!(cache.misses(), 16);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 16);
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache: MemoCache<u8, usize> = MemoCache::default();
        let calls = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    let v = cache.get_or_compute(1, || {
                        // Widen the race window so contending workers
                        // really do find the cell mid-compute.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        calls.fetch_add(1, Ordering::SeqCst) + 100
                    });
                    assert_eq!(v, 100);
                });
            }
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses() + cache.hits(), 8);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn empty_cache_reports_empty() {
        let cache: MemoCache<u64, u64> = MemoCache::default();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits() + cache.misses(), 0);
    }
}
