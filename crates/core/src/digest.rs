//! The USaaS insights digest — the §5 product surface.
//!
//! Fig. 8 of the paper sketches USaaS as a service that *"collects such user
//! feedback, both online and offline, finds correlations, and shares useful
//! user-centric insights back"*. The digest is that deliverable: one
//! structured report per period combining
//!
//! * detected regime changes in the speed and sentiment series (CUSUM);
//! * outage episodes detected from social signals, with cross-network
//!   corroboration from implicit signals where telemetry overlaps;
//! * emerging topics;
//! * significance-tested platform and conditioning gaps from the
//!   conferencing telemetry;
//! * the top traffic-engineering intervention.

use crate::advisor::TrafficAdvisor;
use crate::emerging::EmergingTopicMiner;
use crate::fulcrum::{FulcrumAnalysis, MonthlyPoint};
use crate::outage::{DetectedOutage, OutageDetector};
use crate::signals::Payload;
use crate::store::SignalStore;
use analytics::changepoint::binary_segmentation;
use analytics::stats_tests::welch_t_test;
use analytics::time::Month;
use analytics::AnalyticsError;
use conference::platform::Platform;
use conference::records::{CallDataset, EngagementMetric, NetworkMetric};
use serde::Serialize;
use social::post::Forum;
use std::fmt;

/// A significance-tested gap between two strata.
#[derive(Debug, Clone, Serialize)]
pub struct TestedGap {
    /// Description of the comparison.
    pub label: String,
    /// Mean difference (first minus second stratum), presence points.
    pub difference: f64,
    /// Two-sided p-value from Welch's t.
    pub p_value: f64,
}

/// A regime change found in a monthly series.
#[derive(Debug, Clone, Serialize)]
pub struct RegimeChange {
    /// Which series ("downlink median" / "Pos score").
    pub series: &'static str,
    /// Month the new regime starts.
    pub month: Month,
    /// Mean before / after.
    pub before: f64,
    /// Mean after the change.
    pub after: f64,
}

/// The assembled digest.
#[derive(Debug, Clone, Serialize)]
pub struct Digest {
    /// Regime changes in the Fig. 7 series.
    pub regime_changes: Vec<RegimeChange>,
    /// Detected outages, strongest first.
    pub outages: Vec<DetectedOutage>,
    /// Emerging topics (term + first flag date).
    pub emerging: Vec<(String, String)>,
    /// Significance-tested strata gaps.
    pub gaps: Vec<TestedGap>,
    /// Best traffic-engineering intervention (metric label + expected lift).
    pub top_intervention: Option<(String, f64)>,
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== USaaS insights digest ===")?;
        writeln!(f, "\nregime changes:")?;
        for r in &self.regime_changes {
            writeln!(
                f,
                "  {} — {}: {:.1} → {:.1}",
                r.month, r.series, r.before, r.after
            )?;
        }
        writeln!(f, "\noutage episodes (top 5):")?;
        for o in self.outages.iter().take(5) {
            writeln!(
                f,
                "  {} (z = {:.1}, {:.0} mentions)",
                o.date, o.score, o.occurrences
            )?;
        }
        writeln!(f, "\nemerging topics:")?;
        for (term, date) in self.emerging.iter().take(5) {
            writeln!(f, "  '{term}' first flagged {date}")?;
        }
        writeln!(f, "\nstrata gaps (presence points, Welch's t):")?;
        for g in &self.gaps {
            writeln!(
                f,
                "  {}: Δ {:+.1} (p = {:.4})",
                g.label, g.difference, g.p_value
            )?;
        }
        if let Some((metric, lift)) = &self.top_intervention {
            writeln!(f, "\ntop intervention: improve {metric} (expected lift {lift:.1} points / 100 sessions)")?;
        }
        Ok(())
    }
}

/// Digest builder.
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    /// Outage detector in use.
    pub detector: OutageDetector,
    /// Emerging-topic miner in use.
    pub miner: EmergingTopicMiner,
    /// Fig. 7 analysis in use.
    pub fulcrum: FulcrumAnalysis,
    /// Advisor in use.
    pub advisor: TrafficAdvisor,
    /// CUSUM score threshold for regime changes.
    pub regime_min_score: f64,
}

impl Default for DigestBuilder {
    fn default() -> DigestBuilder {
        DigestBuilder {
            detector: OutageDetector::default(),
            miner: EmergingTopicMiner::default(),
            fulcrum: FulcrumAnalysis::default(),
            advisor: TrafficAdvisor::default(),
            regime_min_score: 0.8,
        }
    }
}

impl DigestBuilder {
    /// Regime changes over a monthly Fig. 7 series.
    pub fn regime_changes(&self, series: &[MonthlyPoint]) -> Vec<RegimeChange> {
        let mut out = Vec::new();
        // Keep each value paired with its month: the change-point index is
        // in filtered-series space, so indexing the unfiltered month list
        // (as an earlier version did) mislabels changes whenever a month
        // lacks the metric — and underflows when the series is empty.
        let mut push_changes = |tag: &'static str, pairs: &[(Month, f64)]| {
            if pairs.len() < 8 {
                return;
            }
            let values: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
            if let Ok(cps) = binary_segmentation(&values, self.regime_min_score, 2) {
                for cp in &cps {
                    if let Some(&(month, _)) = pairs.get(cp.index) {
                        out.push(RegimeChange {
                            series: tag,
                            month,
                            before: cp.mean_before,
                            after: cp.mean_after,
                        });
                    }
                }
            }
        };
        let down: Vec<(Month, f64)> = series
            .iter()
            .filter_map(|p| p.median_down.map(|v| (p.month, v)))
            .collect();
        push_changes("downlink median", &down);
        let pos: Vec<(Month, f64)> = series
            .iter()
            .filter_map(|p| p.pos_score.map(|v| (p.month, v)))
            .collect();
        push_changes("Pos score", &pos);
        out
    }

    /// Significance-tested strata gaps (mobile-vs-PC, conditioned-vs-not)
    /// under degraded latency.
    pub fn tested_gaps(&self, dataset: &CallDataset) -> Result<Vec<TestedGap>, AnalyticsError> {
        let degraded = |s: &&conference::records::SessionRecord| {
            s.network_mean(NetworkMetric::LatencyMs) > 120.0
        };
        let presence = |pred: &dyn Fn(&conference::records::SessionRecord) -> bool| -> Vec<f64> {
            dataset
                .sessions
                .iter()
                .filter(degraded)
                .filter(|s| pred(s))
                .map(|s| s.presence_pct)
                .collect()
        };
        let mobile = presence(&|s| s.platform.is_mobile());
        let pc = presence(&|s| !s.platform.is_mobile());
        let conditioned = presence(&|s| s.conditioned);
        let unconditioned = presence(&|s| !s.conditioned);
        let mut gaps = Vec::new();
        if mobile.len() >= 2 && pc.len() >= 2 {
            let t = welch_t_test(&mobile, &pc)?;
            gaps.push(TestedGap {
                label: "mobile vs PC (degraded latency)".into(),
                difference: t.mean_difference,
                p_value: t.p_value,
            });
        }
        if conditioned.len() >= 2 && unconditioned.len() >= 2 {
            let t = welch_t_test(&conditioned, &unconditioned)?;
            gaps.push(TestedGap {
                label: "conditioned vs unconditioned (degraded latency)".into(),
                difference: t.mean_difference,
                p_value: t.p_value,
            });
        }
        Ok(gaps)
    }

    /// [`DigestBuilder::tested_gaps`] fed from the signal store: walks the
    /// implicit signals in the store's full window through the zero-copy
    /// [`SignalStore::for_each_between`] visitor (no per-signal clone of the
    /// boxed session records) and runs the same Welch tests on the same
    /// strata. Signals arrive in date order rather than dataset order, so
    /// the test statistics agree with the dataset path up to floating-point
    /// summation order.
    pub fn tested_gaps_signals(
        &self,
        store: &SignalStore,
    ) -> Result<Vec<TestedGap>, AnalyticsError> {
        let Some((from, to)) = store.date_range() else {
            return Err(AnalyticsError::Empty);
        };
        let mut mobile = Vec::new();
        let mut pc = Vec::new();
        let mut conditioned = Vec::new();
        let mut unconditioned = Vec::new();
        store.for_each_between(from, to, |signal| {
            let Payload::Implicit(imp) = &signal.payload else {
                return;
            };
            let s = &imp.session;
            if s.network_mean(NetworkMetric::LatencyMs) <= 120.0 {
                return;
            }
            if s.platform.is_mobile() {
                mobile.push(s.presence_pct);
            } else {
                pc.push(s.presence_pct);
            }
            if s.conditioned {
                conditioned.push(s.presence_pct);
            } else {
                unconditioned.push(s.presence_pct);
            }
        });
        let mut gaps = Vec::new();
        if mobile.len() >= 2 && pc.len() >= 2 {
            let t = welch_t_test(&mobile, &pc)?;
            gaps.push(TestedGap {
                label: "mobile vs PC (degraded latency)".into(),
                difference: t.mean_difference,
                p_value: t.p_value,
            });
        }
        if conditioned.len() >= 2 && unconditioned.len() >= 2 {
            let t = welch_t_test(&conditioned, &unconditioned)?;
            gaps.push(TestedGap {
                label: "conditioned vs unconditioned (degraded latency)".into(),
                difference: t.mean_difference,
                p_value: t.p_value,
            });
        }
        Ok(gaps)
    }

    /// Assemble the full digest.
    pub fn build(&self, dataset: &CallDataset, forum: &Forum) -> Result<Digest, AnalyticsError> {
        let (first, last) = forum
            .date_range()
            .map(|(a, b)| (a.month(), b.month()))
            .ok_or(AnalyticsError::Empty)?;
        let series = self.fulcrum.analyze(forum, first, last)?;
        let mut outages = self.detector.detect(forum)?;
        outages.sort_by(|a, b| analytics::desc_nan_last(a.score, b.score));
        let emerging = self
            .miner
            .mine(forum)?
            .into_iter()
            .map(|t| (t.term, t.first_flagged.to_string()))
            .collect();
        let gaps = self.tested_gaps(dataset)?;
        let top_intervention = self
            .advisor
            .rank(dataset, EngagementMetric::Presence)
            .ok()
            .and_then(|r| r.into_iter().next())
            .map(|i| (i.metric.label().to_string(), i.expected_lift));
        Ok(Digest {
            regime_changes: self.regime_changes(&series),
            outages,
            emerging,
            gaps,
            top_intervention,
        })
    }
}

/// Convenience: the per-platform presence means under degraded conditions
/// with pairwise significance against Windows (used by the digest's
/// extended reporting and the examples).
pub fn platform_gaps(dataset: &CallDataset) -> Result<Vec<TestedGap>, AnalyticsError> {
    let degraded =
        |s: &&conference::records::SessionRecord| s.network_mean(NetworkMetric::LatencyMs) > 120.0;
    let of = |p: Platform| -> Vec<f64> {
        dataset
            .sessions
            .iter()
            .filter(degraded)
            .filter(|s| s.platform == p)
            .map(|s| s.presence_pct)
            .collect()
    };
    let base = of(Platform::WindowsPc);
    let mut out = Vec::new();
    for p in [
        Platform::MacPc,
        Platform::AndroidMobile,
        Platform::IosMobile,
    ] {
        let xs = of(p);
        if xs.len() >= 2 && base.len() >= 2 {
            let t = welch_t_test(&xs, &base)?;
            out.push(TestedGap {
                label: format!("{} vs Windows PC", p.label()),
                difference: t.mean_difference,
                p_value: t.p_value,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytics::time::Date;
    use conference::dataset::{generate, DatasetConfig};
    use social::generator::{generate as gen_forum, ForumConfig};
    use std::sync::OnceLock;

    fn fixtures() -> &'static (CallDataset, Forum) {
        static F: OnceLock<(CallDataset, Forum)> = OnceLock::new();
        F.get_or_init(|| {
            (
                generate(&DatasetConfig::small(5000, 0xD16)),
                gen_forum(&ForumConfig {
                    authors: 3000,
                    ..ForumConfig::default()
                }),
            )
        })
    }

    #[test]
    fn digest_assembles_all_sections() {
        let (dataset, forum) = fixtures();
        let digest = DigestBuilder::default().build(dataset, forum).unwrap();
        assert!(!digest.outages.is_empty(), "outage episodes expected");
        assert!(
            digest.outages.windows(2).all(|w| w[0].score >= w[1].score),
            "outages sorted by severity"
        );
        assert!(!digest.emerging.is_empty(), "emerging topics expected");
        assert!(digest.emerging.iter().any(|(t, _)| t == "roaming"));
        assert!(!digest.gaps.is_empty(), "tested gaps expected");
        assert!(digest.top_intervention.is_some());
        let rendered = digest.to_string();
        assert!(rendered.contains("USaaS insights digest"));
        // The rendering truncates to the first five topics by date.
        assert!(rendered.contains(&digest.emerging[0].0));
    }

    #[test]
    fn regime_change_found_in_speed_series() {
        let (dataset, forum) = fixtures();
        let _ = dataset;
        let builder = DigestBuilder::default();
        let series = builder
            .fulcrum
            .analyze(
                forum,
                Month::new(2021, 1).unwrap(),
                Month::new(2022, 12).unwrap(),
            )
            .unwrap();
        let changes = builder.regime_changes(&series);
        let down: Vec<&RegimeChange> = changes
            .iter()
            .filter(|c| c.series == "downlink median")
            .collect();
        assert!(!down.is_empty(), "the 2021→2022 decline must register");
        // At least one change is a decline into 2022.
        assert!(
            down.iter()
                .any(|c| c.after < c.before && c.month.year >= 2021),
            "{down:?}"
        );
    }

    #[test]
    fn mobile_gap_is_negative_and_significant() {
        let (dataset, _) = fixtures();
        let gaps = DigestBuilder::default().tested_gaps(dataset).unwrap();
        let mobile = gaps.iter().find(|g| g.label.starts_with("mobile")).unwrap();
        assert!(
            mobile.difference < 0.0,
            "mobile should trail PC: {mobile:?}"
        );
        assert!(mobile.p_value < 0.05, "{mobile:?}");
    }

    #[test]
    fn store_backed_gaps_agree_with_the_dataset_path() {
        let (dataset, forum) = fixtures();
        let store = SignalStore::new();
        crate::ingest::ingest_all(&store, dataset, forum, 4);
        let builder = DigestBuilder::default();
        let from_dataset = builder.tested_gaps(dataset).unwrap();
        let from_store = builder.tested_gaps_signals(&store).unwrap();
        assert_eq!(from_dataset.len(), from_store.len());
        // Same strata, same values — only the summation order differs
        // (store signals arrive in date order), so compare to tolerance.
        for (a, b) in from_dataset.iter().zip(&from_store) {
            assert_eq!(a.label, b.label);
            assert!((a.difference - b.difference).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.p_value - b.p_value).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn store_backed_gaps_need_data() {
        assert!(DigestBuilder::default()
            .tested_gaps_signals(&SignalStore::new())
            .is_err());
    }

    #[test]
    fn platform_gaps_cover_non_windows_platforms() {
        let (dataset, _) = fixtures();
        let gaps = platform_gaps(dataset).unwrap();
        assert_eq!(gaps.len(), 3);
        for g in &gaps {
            assert!((0.0..=1.0).contains(&g.p_value));
        }
        // Both mobile platforms lose presence vs Windows.
        for label in ["Android vs Windows PC", "iOS vs Windows PC"] {
            let g = gaps.iter().find(|g| g.label == label).unwrap();
            assert!(g.difference < 0.0, "{g:?}");
        }
    }

    #[test]
    fn empty_forum_errors() {
        let (dataset, _) = fixtures();
        assert!(DigestBuilder::default()
            .build(dataset, &Forum::default())
            .is_err());
    }

    /// Regression for the outage ranking sort: a NaN score (e.g. from a
    /// degenerate z-score) must sort last and leave the finite ranking
    /// deterministic, instead of silently scrambling it the way the old
    /// `partial_cmp(..).unwrap_or(Equal)` comparator could.
    #[test]
    fn outage_ranking_is_nan_safe() {
        let day = Date::from_ymd(2022, 1, 7).unwrap();
        let mk = |score: f64| DetectedOutage {
            date: day,
            occurrences: 1.0,
            score,
        };
        let mut outages = [mk(f64::NAN), mk(3.0), mk(f64::NAN), mk(9.0), mk(1.0)];
        outages.sort_by(|a, b| analytics::desc_nan_last(a.score, b.score));
        let scores: Vec<f64> = outages.iter().map(|o| o.score).collect();
        assert_eq!(&scores[..3], &[9.0, 3.0, 1.0]);
        assert!(scores[3..].iter().all(|s| s.is_nan()));
    }
}
