//! The §6 traffic-engineering advisor.
//!
//! *"Both service and network providers could proactively act based on USaaS
//! output. If call latency, for example, is the discerning factor affecting
//! user experience on MS Teams, could network resource allocation be tuned
//! online to cater to the demand?"*
//!
//! The advisor turns the correlation engine's output into actionable
//! rankings: for each network metric it measures the *marginal engagement
//! lift* of improving that metric from its degraded range toward its
//! reference range (using the same confounder-controlled curves as Fig. 1),
//! scales by how many sessions actually sit in the degraded range, and ranks
//! candidate interventions by expected engagement-points recovered.

use crate::correlate::{engagement_curve, in_reference_except};
use analytics::AnalyticsError;
use conference::records::{CallDataset, EngagementMetric, NetworkMetric};
use serde::{Deserialize, Serialize};

/// One candidate intervention, scored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intervention {
    /// The network metric to improve.
    pub metric: NetworkMetric,
    /// Engagement metric the score is measured in.
    pub engagement: EngagementMetric,
    /// Engagement points lost per affected session (curve best minus the
    /// mean over degraded bins).
    pub per_session_lift: f64,
    /// Fraction of sessions sitting in the degraded range.
    pub affected_fraction: f64,
    /// Expected engagement points recovered per 100 sessions
    /// (`per_session_lift × affected_fraction × 100`).
    pub expected_lift: f64,
}

/// The advisor.
#[derive(Debug, Clone, Copy)]
pub struct TrafficAdvisor {
    /// Bins per curve.
    pub bins: usize,
    /// Minimum sessions per bin.
    pub min_count: usize,
    /// A session counts as degraded for a metric when its value is beyond
    /// this fraction of the sweep range (bandwidth: below it).
    pub degraded_fraction: f64,
}

impl Default for TrafficAdvisor {
    fn default() -> TrafficAdvisor {
        TrafficAdvisor {
            bins: 6,
            min_count: 8,
            degraded_fraction: 0.5,
        }
    }
}

impl TrafficAdvisor {
    /// Degraded-range test for one metric value.
    fn is_degraded(&self, metric: NetworkMetric, value: f64) -> bool {
        let (lo, hi) = metric.sweep_range();
        match metric {
            // More bandwidth is better: degraded = the low end.
            NetworkMetric::BandwidthMbps => value < lo + (hi - lo) * (1.0 - self.degraded_fraction),
            _ => value > lo + (hi - lo) * self.degraded_fraction,
        }
    }

    /// Score one intervention.
    pub fn score(
        &self,
        dataset: &CallDataset,
        metric: NetworkMetric,
        engagement: EngagementMetric,
    ) -> Result<Intervention, AnalyticsError> {
        let curve = engagement_curve(dataset, metric, engagement, self.bins, self.min_count)?;
        let points = curve.points();
        if points.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        let best = points
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::NEG_INFINITY, f64::max);
        let degraded: Vec<f64> = points
            .iter()
            .filter(|(x, _)| self.is_degraded(metric, *x))
            .map(|(_, y)| *y)
            .collect();
        let per_session_lift = if degraded.is_empty() {
            0.0
        } else {
            (best - analytics::mean(&degraded)?).max(0.0)
        };
        // Affected fraction over confounder-controlled sessions.
        let mut affected = 0usize;
        let mut total = 0usize;
        for s in &dataset.sessions {
            if !in_reference_except(s, metric) {
                continue;
            }
            total += 1;
            if self.is_degraded(metric, s.network_mean(metric)) {
                affected += 1;
            }
        }
        let affected_fraction = if total == 0 {
            0.0
        } else {
            affected as f64 / total as f64
        };
        Ok(Intervention {
            metric,
            engagement,
            per_session_lift,
            affected_fraction,
            expected_lift: per_session_lift * affected_fraction * 100.0,
        })
    }

    /// Rank all four network metrics by expected lift for one engagement
    /// metric (highest first).
    pub fn rank(
        &self,
        dataset: &CallDataset,
        engagement: EngagementMetric,
    ) -> Result<Vec<Intervention>, AnalyticsError> {
        let mut out = Vec::new();
        for metric in NetworkMetric::ALL {
            out.push(self.score(dataset, metric, engagement)?);
        }
        out.sort_by(|a, b| analytics::desc_nan_last(a.expected_lift, b.expected_lift));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static CallDataset {
        static DS: OnceLock<CallDataset> = OnceLock::new();
        DS.get_or_init(|| generate(&DatasetConfig::small(6000, 42)))
    }

    #[test]
    fn rank_covers_all_metrics_sorted() {
        let advisor = TrafficAdvisor::default();
        let ranks = advisor.rank(dataset(), EngagementMetric::MicOn).unwrap();
        assert_eq!(ranks.len(), 4);
        assert!(ranks
            .windows(2)
            .all(|w| w[0].expected_lift >= w[1].expected_lift));
        for r in &ranks {
            assert!(r.per_session_lift >= 0.0);
            assert!((0.0..=1.0).contains(&r.affected_fraction));
        }
    }

    #[test]
    fn latency_is_the_discerning_factor_for_mic_on() {
        // The paper's own §6 example: latency drives the Mic On experience.
        let advisor = TrafficAdvisor::default();
        let ranks = advisor.rank(dataset(), EngagementMetric::MicOn).unwrap();
        assert_eq!(
            ranks[0].metric,
            NetworkMetric::LatencyMs,
            "expected latency to top the Mic On ranking: {ranks:?}"
        );
    }

    #[test]
    fn bandwidth_is_never_the_top_lever() {
        // Fig. 1 (right): the app is not bandwidth hungry, so improving
        // bandwidth cannot be the best intervention.
        let advisor = TrafficAdvisor::default();
        for engagement in EngagementMetric::ALL {
            let ranks = advisor.rank(dataset(), engagement).unwrap();
            assert_ne!(
                ranks[0].metric,
                NetworkMetric::BandwidthMbps,
                "{engagement:?}: {ranks:?}"
            );
        }
    }

    #[test]
    fn jitter_matters_more_for_camera_than_for_mic() {
        let advisor = TrafficAdvisor::default();
        let cam = advisor
            .score(dataset(), NetworkMetric::JitterMs, EngagementMetric::CamOn)
            .unwrap();
        let mic = advisor
            .score(dataset(), NetworkMetric::JitterMs, EngagementMetric::MicOn)
            .unwrap();
        assert!(
            cam.per_session_lift > mic.per_session_lift,
            "cam {cam:?} vs mic {mic:?}"
        );
    }

    #[test]
    fn empty_dataset_errors() {
        let advisor = TrafficAdvisor::default();
        assert!(advisor
            .score(
                &CallDataset::default(),
                NetworkMetric::LatencyMs,
                EngagementMetric::MicOn
            )
            .is_err());
    }

    /// Regression for the intervention ranking sort: a NaN expected lift
    /// (e.g. an empty degraded range making the lift 0/0) must rank last
    /// with the finite entries still descending — the old
    /// `partial_cmp(..).unwrap_or(Equal)` comparator made the order
    /// depend on input position.
    #[test]
    fn intervention_ranking_is_nan_safe() {
        let mk = |expected_lift: f64| Intervention {
            metric: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::Presence,
            per_session_lift: 0.0,
            affected_fraction: 0.0,
            expected_lift,
        };
        let mut out = [mk(2.0), mk(f64::NAN), mk(7.0), mk(0.5)];
        out.sort_by(|a, b| analytics::desc_nan_last(a.expected_lift, b.expected_lift));
        let lifts: Vec<f64> = out.iter().map(|i| i.expected_lift).collect();
        assert_eq!(&lifts[..3], &[7.0, 2.0, 0.5]);
        assert!(lifts[3].is_nan());
        // Determinism: reversed input gives the same ranking.
        let mut rev = [mk(0.5), mk(7.0), mk(f64::NAN), mk(2.0)];
        rev.sort_by(|a, b| analytics::desc_nan_last(a.expected_lift, b.expected_lift));
        assert_eq!(
            rev.iter()
                .map(|i| i.expected_lift.to_bits())
                .collect::<Vec<_>>(),
            lifts.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
        );
    }
}
