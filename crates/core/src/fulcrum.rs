//! The Fig. 7 pipeline: OCR'd speeds, launches, users, and the shifting
//! fulcrum of user sentiment (§4.2).
//!
//! From the forum corpus: find posts sharing speed-test screenshots, run the
//! OCR extractor over each, compute monthly median downlink speeds (plus the
//! paper's 95 % / 90 % uniform-subsample stability check), compute the
//! normalised strong-positive sentiment score *Pos* over the same posts
//! (*"the ratio of total strong positive posts and total (strong positive
//! and negative) posts in a month"*), and annotate each month with the
//! launch count and the latest public subscriber report.

use analytics::sampling::subsample;
use analytics::time::{Date, Month};
use analytics::AnalyticsError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentiment::analyzer::SentimentAnalyzer;
use serde::{Deserialize, Serialize};
use social::post::Forum;
use starlink::capacity::SpeedModel;
use starlink::launches::LaunchSchedule;
use starlink::subscribers::SubscriberModel;

/// One month of the Fig. 7 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthlyPoint {
    /// The month.
    pub month: Month,
    /// Speed-test reports whose downlink the OCR pipeline recovered.
    pub reports: usize,
    /// Median recovered downlink (Mbps); `None` when under `min_reports`.
    pub median_down: Option<f64>,
    /// Median over a 95 % uniform subsample.
    pub median_down_95: Option<f64>,
    /// Median over a 90 % uniform subsample.
    pub median_down_90: Option<f64>,
    /// Normalised strong-positive score over the month's share posts.
    pub pos_score: Option<f64>,
    /// Launches that month.
    pub launches: usize,
    /// Latest public subscriber report at month end.
    pub reported_users: Option<f64>,
    /// Ground-truth model median (validation only).
    pub model_median: f64,
}

/// Fig. 7 analysis configuration.
#[derive(Debug, Clone)]
pub struct FulcrumAnalysis {
    /// Sentiment analyzer for the Pos score.
    pub analyzer: SentimentAnalyzer,
    /// Launch schedule for annotation.
    pub schedule: LaunchSchedule,
    /// Subscriber model for annotation.
    pub subscribers: SubscriberModel,
    /// Ground-truth speed model (validation column).
    pub model: SpeedModel,
    /// Minimum recovered reports for a monthly median.
    pub min_reports: usize,
    /// Seed for the subsample stability check.
    pub subsample_seed: u64,
}

impl Default for FulcrumAnalysis {
    fn default() -> FulcrumAnalysis {
        FulcrumAnalysis {
            analyzer: SentimentAnalyzer::default(),
            schedule: LaunchSchedule::builtin(),
            subscribers: SubscriberModel::builtin(),
            model: SpeedModel::default(),
            min_reports: 8,
            subsample_seed: 0xF167,
        }
    }
}

/// The memoizable per-post work of the Fig. 7 pipeline: what the OCR
/// extractor recovered from a screenshot post plus its strong-sentiment
/// class (`+1` strong positive, `-1` strong negative, `0` neither). Posts
/// without a screenshot have no `DocShot` — the month loop skips them
/// before any extraction or scoring, so `None` carries that skip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DocShot {
    /// OCR-recovered downlink (Mbps), when legible.
    pub down: Option<f64>,
    /// Strong-sentiment class of the post.
    pub class: i8,
}

impl DocShot {
    /// Evaluate one post: OCR extraction first, then sentiment — the same
    /// order [`FulcrumAnalysis::analyze_with`] used inline, kept so the
    /// memoized and direct paths do identical work per post.
    pub(crate) fn eval(
        post: &social::post::Post,
        score: impl FnOnce() -> sentiment::SentimentScores,
    ) -> Option<DocShot> {
        let shot = post.screenshot.as_ref()?;
        let down = ocr::extract::extract(&shot.ocr_text).downlink_mbps;
        let s = score();
        let class = if s.is_strong_positive() {
            1
        } else if s.is_strong_negative() {
            -1
        } else {
            0
        };
        Some(DocShot { down, class })
    }
}

impl FulcrumAnalysis {
    /// Run the pipeline over `[start, end]` months.
    pub fn analyze(
        &self,
        forum: &Forum,
        start: Month,
        end: Month,
    ) -> Result<Vec<MonthlyPoint>, AnalyticsError> {
        self.analyze_with(forum, start, end, |_, post| {
            self.analyzer.score(&post.text())
        })
    }

    /// [`FulcrumAnalysis::analyze`] over a pre-tokenized corpus (document
    /// `i` = post `i`): the monthly Pos score reads interned token ids
    /// instead of re-tokenizing each screenshot post. The OCR extraction,
    /// RNG stream, and month loop are shared with the string path, so the
    /// series is identical.
    pub fn analyze_interned(
        &self,
        forum: &Forum,
        corpus: &sentiment::corpus::TokenCorpus,
        start: Month,
        end: Month,
    ) -> Result<Vec<MonthlyPoint>, AnalyticsError> {
        // A corpus/forum mismatch used to assert; ingestion feeds this from
        // flaky sources now, so it surfaces as a typed error instead of a
        // panic.
        if corpus.docs() != forum.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: corpus.docs(),
                right: forum.len(),
            });
        }
        let vocab = corpus.vocab();
        self.analyze_with(forum, start, end, |i, _| {
            self.analyzer.score_ids(corpus.doc(i), vocab)
        })
    }

    fn analyze_with(
        &self,
        forum: &Forum,
        start: Month,
        end: Month,
        score: impl Fn(usize, &social::post::Post) -> sentiment::SentimentScores,
    ) -> Result<Vec<MonthlyPoint>, AnalyticsError> {
        self.analyze_shots(forum, start, end, |i, post| {
            DocShot::eval(post, || score(i, post))
        })
    }

    /// The month loop over pre-evaluated per-post work: `shot_of` hands back
    /// the [`DocShot`] for a post (or `None` for non-screenshot posts). The
    /// loop structure — including which months advance the subsample RNG —
    /// depends only on the shots, so running this over memoized shots
    /// ([`crate::views::SpeedTrendView`]) is bit-identical to the inline
    /// extraction path.
    pub(crate) fn analyze_shots(
        &self,
        forum: &Forum,
        start: Month,
        end: Month,
        shot_of: impl Fn(usize, &social::post::Post) -> Option<DocShot>,
    ) -> Result<Vec<MonthlyPoint>, AnalyticsError> {
        let dates: Vec<Date> = forum.posts.iter().map(|p| p.date).collect();
        self.analyze_dated_shots(&dates, start, end, |i| shot_of(i, &forum.posts[i]))
    }

    /// The [`FulcrumAnalysis::analyze_shots`] month loop driven by a bare
    /// per-post date column — the loop never reads anything else of a
    /// post, so a caller holding only dates and per-doc [`DocShot`]s (the
    /// cluster router merging partition partials in global post order) can
    /// replay it bit-identically without materialising a merged forum.
    /// `shot_at` is invoked lazily, only for posts inside the analysed
    /// month range — the same evaluation set as the forum-driven path.
    pub(crate) fn analyze_dated_shots(
        &self,
        dates: &[Date],
        start: Month,
        end: Month,
        shot_at: impl Fn(usize) -> Option<DocShot>,
    ) -> Result<Vec<MonthlyPoint>, AnalyticsError> {
        if dates.is_empty() {
            return Err(AnalyticsError::Empty);
        }
        let mut rng = StdRng::seed_from_u64(self.subsample_seed);
        let mut out = Vec::new();
        for month in start.iter_through(end) {
            let from = month.first_day();
            let to = month.last_day();
            let mut downs: Vec<f64> = Vec::new();
            let mut strong_pos = 0usize;
            let mut strong_neg = 0usize;
            for (i, _date) in dates
                .iter()
                .enumerate()
                .filter(|(_, d)| **d >= from && **d <= to)
            {
                let Some(shot) = shot_at(i) else {
                    continue;
                };
                if let Some(d) = shot.down {
                    downs.push(d);
                }
                match shot.class {
                    1.. => strong_pos += 1,
                    ..=-1 => strong_neg += 1,
                    0 => {}
                }
            }
            let (median_down, median_down_95, median_down_90) = if downs.len() >= self.min_reports {
                let m = analytics::median(&downs)?;
                let s95 = analytics::median(&subsample(&mut rng, &downs, 0.95)?)?;
                let s90 = analytics::median(&subsample(&mut rng, &downs, 0.90)?)?;
                (Some(m), Some(s95), Some(s90))
            } else {
                (None, None, None)
            };
            // Pos "filter[s] out edge cases when identifying the sentiment
            // is hard": only strong posts enter the ratio.
            let pos_score = if strong_pos + strong_neg > 0 {
                Some(strong_pos as f64 / (strong_pos + strong_neg) as f64)
            } else {
                None
            };
            let mid = Date::from_ymd(month.year, month.month, 15)?;
            out.push(MonthlyPoint {
                month,
                reports: downs.len(),
                median_down,
                median_down_95,
                median_down_90,
                pos_score,
                launches: self.schedule.launches_in_month(month),
                reported_users: self.subscribers.latest_report(to).map(|m| m.users),
                model_median: self.model.median_downlink(mid),
            });
        }
        Ok(out)
    }
}

/// Convenience accessors over the monthly series.
pub trait Fig7Series {
    /// Median downlink of one month, if computed.
    fn median_of(&self, year: i32, month: u8) -> Option<f64>;
    /// Pos score of one month, if computed.
    fn pos_of(&self, year: i32, month: u8) -> Option<f64>;
}

impl Fig7Series for [MonthlyPoint] {
    fn median_of(&self, year: i32, month: u8) -> Option<f64> {
        self.iter()
            .find(|p| p.month.year == year && p.month.month == month)
            .and_then(|p| p.median_down)
    }

    fn pos_of(&self, year: i32, month: u8) -> Option<f64> {
        self.iter()
            .find(|p| p.month.year == year && p.month.month == month)
            .and_then(|p| p.pos_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use social::generator::{generate, ForumConfig};
    use std::sync::OnceLock;

    fn forum() -> &'static Forum {
        static F: OnceLock<Forum> = OnceLock::new();
        F.get_or_init(|| {
            generate(&ForumConfig {
                authors: 4000,
                ..ForumConfig::default()
            })
        })
    }

    fn series() -> &'static Vec<MonthlyPoint> {
        static S: OnceLock<Vec<MonthlyPoint>> = OnceLock::new();
        S.get_or_init(|| {
            FulcrumAnalysis::default()
                .analyze(
                    forum(),
                    Month::new(2021, 1).unwrap(),
                    Month::new(2022, 12).unwrap(),
                )
                .unwrap()
        })
    }

    #[test]
    fn covers_all_months_with_reports() {
        let s = series();
        assert_eq!(s.len(), 24);
        let total: usize = s.iter().map(|p| p.reports).sum();
        assert!(
            (1000..2600).contains(&total),
            "recovered reports {total} (paper: ~1750)"
        );
        assert!(s.iter().filter(|p| p.median_down.is_some()).count() >= 20);
    }

    #[test]
    fn extracted_medians_track_ground_truth() {
        for p in series() {
            if let Some(m) = p.median_down {
                let rel = (m - p.model_median).abs() / p.model_median;
                assert!(
                    rel < 0.30,
                    "{}: extracted {m} vs model {}",
                    p.month,
                    p.model_median
                );
            }
        }
    }

    #[test]
    fn fig7_shape_rise_dip_decline() {
        let s = series().as_slice();
        let jan21 = s.median_of(2021, 1).unwrap();
        let may21 = s.median_of(2021, 5).unwrap();
        let sep21 = s.median_of(2021, 9).unwrap();
        let dec22 = s.median_of(2022, 12).unwrap();
        assert!(may21 > jan21 * 1.15, "rise: {jan21} → {may21}");
        assert!(sep21 > jan21, "Sep'21 {sep21} above Jan'21 {jan21}");
        assert!(dec22 < sep21 * 0.75, "decline: {sep21} → {dec22}");
    }

    #[test]
    fn subsample_medians_are_stable() {
        // The paper's stability check: 95 %/90 % subsampled medians closely
        // follow the full median.
        for p in series() {
            if let (Some(full), Some(s95), Some(s90)) =
                (p.median_down, p.median_down_95, p.median_down_90)
            {
                assert!(
                    (s95 - full).abs() / full < 0.15,
                    "{}: 95% {s95} vs {full}",
                    p.month
                );
                assert!(
                    (s90 - full).abs() / full < 0.20,
                    "{}: 90% {s90} vs {full}",
                    p.month
                );
            }
        }
    }

    #[test]
    fn the_wheel_of_time_dec21_vs_apr21() {
        // Speeds higher in Dec'21 than Apr'21 but Pos drastically lower.
        let s = series().as_slice();
        let apr_med = s.median_of(2021, 4).unwrap();
        let dec_med = s.median_of(2021, 12).unwrap();
        let apr_pos = s.pos_of(2021, 4).unwrap();
        let dec_pos = s.pos_of(2021, 12).unwrap();
        assert!(
            dec_med > apr_med * 0.95,
            "premise: Dec'21 {dec_med} ≳ Apr'21 {apr_med}"
        );
        assert!(
            dec_pos < apr_pos - 0.1,
            "Pos should drop: Apr'21 {apr_pos} vs Dec'21 {dec_pos}"
        );
    }

    #[test]
    fn the_wheel_of_time_2022_recovery() {
        // Speeds fall Mar'22 → Dec'22 while Pos improves (conditioning).
        // Quarterly means tame the monthly sampling noise of the Pos ratio.
        let s = series().as_slice();
        let mar_med = s.median_of(2022, 3).unwrap();
        let dec_med = s.median_of(2022, 12).unwrap();
        assert!(
            dec_med < mar_med,
            "premise: speeds fall {mar_med} → {dec_med}"
        );
        let q_mean = |months: [u8; 3]| {
            let xs: Vec<f64> = months.iter().filter_map(|m| s.pos_of(2022, *m)).collect();
            analytics::mean(&xs).unwrap()
        };
        let spring = q_mean([2, 3, 4]);
        let winter = q_mean([10, 11, 12]);
        assert!(
            winter > spring + 0.05,
            "Pos should recover: spring'22 {spring} vs winter'22 {winter}"
        );
    }

    #[test]
    fn annotations_present() {
        let s = series();
        let launches: usize = s.iter().map(|p| p.launches).sum();
        assert!((45..60).contains(&launches), "launches {launches}");
        assert!(
            s[0].reported_users.is_none(),
            "no public report before Feb'21"
        );
        assert!(s[23].reported_users.unwrap() >= 1_000_000.0);
    }

    #[test]
    fn empty_forum_errors() {
        let a = FulcrumAnalysis::default();
        assert!(a
            .analyze(
                &Forum::default(),
                Month::new(2021, 1).unwrap(),
                Month::new(2021, 2).unwrap()
            )
            .is_err());
    }
}
