//! Streaming sources with a transient-vs-permanent error taxonomy.
//!
//! The §5 service ingests from feeds that fail in qualitatively different
//! ways: a forum crawl times out (retry it), an OCR'd screenshot decodes to
//! garbage (dead-letter it), a telemetry export cuts off mid-stream (mark
//! the source degraded and move on). A [`Source`] yields
//! `Result<RawItem, SourceError>` so the ingestion engine can tell those
//! apart and apply retry/backoff, circuit breaking, or quarantine —
//! per item, instead of all-or-nothing.

use conference::records::SessionRecord;
use social::post::Post;

/// A raw item awaiting normalisation.
#[derive(Debug, Clone)]
pub enum RawItem {
    /// One conferencing session record.
    Session(Box<SessionRecord>),
    /// One forum post.
    Post(Box<Post>),
    /// A poison pill: an item whose normalisation panics. Real pipelines
    /// meet these as malformed inputs that trip a bug in a worker; the
    /// fault injector produces them on purpose so tests can prove one bad
    /// item cannot kill the pool.
    Poison(&'static str),
}

impl RawItem {
    /// A short human-readable description for quarantine records.
    pub fn describe(&self) -> String {
        match self {
            RawItem::Session(s) => {
                format!("session call={} user={} {}", s.call_id, s.user_id, s.date)
            }
            RawItem::Post(p) => format!("post id={} {} {}", p.id, p.date, p.country),
            RawItem::Poison(msg) => format!("poison pill: {msg}"),
        }
    }
}

/// Why a source failed to yield an item.
#[derive(Debug)]
pub enum SourceError {
    /// The fetch failed but retrying may succeed (timeout, throttle, flaky
    /// endpoint). The failed item stays pending inside the source and is
    /// re-offered on the next call.
    Transient {
        /// What went wrong.
        reason: &'static str,
    },
    /// The item can never be fetched intact (corrupt payload, undecodable
    /// OCR). Retrying is pointless; the item goes straight to quarantine.
    Permanent {
        /// What went wrong.
        reason: &'static str,
        /// The damaged item, when the source can still produce it — kept in
        /// the quarantine record for offline inspection.
        item: Option<Box<RawItem>>,
    },
    /// The stream ended abnormally mid-flight; everything not yet yielded
    /// is lost and the source is done.
    Disconnected,
}

impl SourceError {
    /// Whether retrying the same fetch can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, SourceError::Transient { .. })
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Transient { reason } => write!(f, "transient: {reason}"),
            SourceError::Permanent { reason, .. } => write!(f, "permanent: {reason}"),
            SourceError::Disconnected => write!(f, "disconnected mid-stream"),
        }
    }
}

impl std::error::Error for SourceError {}

/// A pull-based stream of raw items. Implementations are driven by the
/// single-threaded ingestion producer, so `&mut self` methods need no
/// internal synchronisation.
pub trait Source: Send {
    /// Stable name for health reporting and quarantine records.
    fn name(&self) -> &str;

    /// Yield the next item, a fetch error, or `None` when exhausted.
    ///
    /// After a [`SourceError::Transient`], the *same* item must be retried
    /// by calling `next_item` again; the source holds it pending until the
    /// fetch succeeds or the caller abandons it via
    /// [`Source::take_pending`].
    fn next_item(&mut self) -> Option<Result<RawItem, SourceError>>;

    /// Surrender the item currently stuck behind transient failures, if
    /// any, so the caller can dead-letter it and move on. The default is
    /// for sources that never fail.
    fn take_pending(&mut self) -> Option<RawItem> {
        None
    }

    /// Items the source silently lost (dropped by the fault layer).
    fn dropped(&self) -> usize {
        0
    }

    /// Best-effort count of items not yet yielded, used to account for
    /// work lost to disconnects and aborts.
    fn remaining_hint(&self) -> usize {
        0
    }
}

/// A source over a borrowed slice of session records (the conferencing
/// telemetry feed).
pub struct SessionSource<'a> {
    name: String,
    records: &'a [SessionRecord],
    cursor: usize,
}

impl<'a> SessionSource<'a> {
    /// A named source yielding `records` in order.
    pub fn new(name: impl Into<String>, records: &'a [SessionRecord]) -> SessionSource<'a> {
        SessionSource {
            name: name.into(),
            records,
            cursor: 0,
        }
    }
}

impl Source for SessionSource<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_item(&mut self) -> Option<Result<RawItem, SourceError>> {
        let record = self.records.get(self.cursor)?;
        self.cursor += 1;
        Some(Ok(RawItem::Session(Box::new(record.clone()))))
    }

    fn remaining_hint(&self) -> usize {
        self.records.len() - self.cursor
    }
}

/// A source over a borrowed slice of forum posts (the social crawl feed).
pub struct PostSource<'a> {
    name: String,
    posts: &'a [Post],
    cursor: usize,
}

impl<'a> PostSource<'a> {
    /// A named source yielding `posts` in order.
    pub fn new(name: impl Into<String>, posts: &'a [Post]) -> PostSource<'a> {
        PostSource {
            name: name.into(),
            posts,
            cursor: 0,
        }
    }
}

impl Source for PostSource<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_item(&mut self) -> Option<Result<RawItem, SourceError>> {
        let post = self.posts.get(self.cursor)?;
        self.cursor += 1;
        Some(Ok(RawItem::Post(Box::new(post.clone()))))
    }

    fn remaining_hint(&self) -> usize {
        self.posts.len() - self.cursor
    }
}

/// An owned in-memory source — the workhorse for tests and appends where
/// the items were assembled on the fly.
pub struct ItemSource {
    name: String,
    items: std::collections::VecDeque<RawItem>,
}

impl ItemSource {
    /// A named source yielding `items` in order.
    pub fn new(name: impl Into<String>, items: Vec<RawItem>) -> ItemSource {
        ItemSource {
            name: name.into(),
            items: items.into(),
        }
    }
}

impl Source for ItemSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_item(&mut self) -> Option<Result<RawItem, SourceError>> {
        self.items.pop_front().map(Ok)
    }

    fn remaining_hint(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};

    #[test]
    fn session_source_yields_in_order_and_counts_down() {
        let dataset = generate(&DatasetConfig::small(10, 3));
        let mut src = SessionSource::new("telemetry", &dataset.sessions);
        assert_eq!(src.remaining_hint(), dataset.len());
        let mut seen = 0;
        while let Some(item) = src.next_item() {
            match item {
                Ok(RawItem::Session(s)) => assert_eq!(*s, dataset.sessions[seen]),
                other => panic!("unexpected item: {other:?}"),
            }
            seen += 1;
        }
        assert_eq!(seen, dataset.len());
        assert_eq!(src.remaining_hint(), 0);
        assert!(src.take_pending().is_none());
    }

    #[test]
    fn describe_names_the_item() {
        let dataset = generate(&DatasetConfig::small(4, 3));
        let item = RawItem::Session(Box::new(dataset.sessions[0].clone()));
        assert!(item.describe().starts_with("session call="));
        assert!(RawItem::Poison("boom").describe().contains("boom"));
    }
}
