//! The correlation engine: network conditions ↔ engagement ↔ MOS.
//!
//! Implements the paper's §3 analyses with the same confounder discipline:
//! when sweeping one network metric, all other metrics are held to their
//! reference ranges (*"latency between 0–40 ms, loss rate between 0–0.2 %,
//! jitter between 0–5 ms, and bandwidth between 3–4 Mbps"*), and the
//! resulting per-bin engagement means are normalised so the best bin reads
//! 100 — exactly how Fig. 1 is drawn.

use crate::frame::SessionFrame;
use analytics::binning::{BinSpec, BinnedCurve, Binner, SumBinner};
use analytics::correlation::pearson;
use analytics::kernels;
use analytics::AnalyticsError;
use conference::platform::Platform;
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use serde::{Deserialize, Serialize};

/// Whether a session sits in the reference range for every network metric
/// except `sweep` (the §3.2 confounder filter).
pub fn in_reference_except(session: &SessionRecord, sweep: NetworkMetric) -> bool {
    NetworkMetric::ALL.iter().all(|&metric| {
        if metric == sweep {
            return true;
        }
        let (lo, hi) = metric.reference_range();
        let v = session.network_mean(metric);
        v >= lo && v <= hi
    })
}

/// Fig. 1: engagement vs one network metric, other metrics held at
/// reference, engagement normalised to 100 at the best bin.
///
/// This is the array-of-structs *reference implementation*; the service's
/// hot path is [`engagement_curve_frame`], which aggregates the same
/// quantities over [`SessionFrame`] columns and is asserted bit-identical
/// to this function by the parity suite.
pub fn engagement_curve(
    dataset: &CallDataset,
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let (lo, hi) = sweep.sweep_range();
    let spec = BinSpec::new(lo, hi, bins)?;
    let mut binner = Binner::new(spec);
    for s in &dataset.sessions {
        if in_reference_except(s, sweep) {
            binner.record(s.network_mean(sweep), s.engagement(engagement));
        }
    }
    Ok(binner.curve_mean(min_count).normalized_to_max(100.0))
}

/// [`engagement_curve`] over frame columns — the kernel-routed hot path.
/// The §3.2 confounder filter is the frame's precomputed packed bitmask
/// ([`SessionFrame::ref_row_mask`]) and the bin/accumulate pass is the
/// branchless [`kernels::masked_binned_sum_count`], which streams the sweep
/// and engagement columns once with no per-row branch. The kernel feeds one
/// running-sum accumulator per bin in row order — the exact addition
/// sequence of the per-record reference — so the curve is bit-identical to
/// [`engagement_curve`] (asserted by the parity suite). Sequential by
/// construction, the result is independent of `workers`; the knob is
/// accepted for API stability and ignored, the same rule the view rebuilds
/// follow.
pub fn engagement_curve_frame(
    frame: &SessionFrame,
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
    _workers: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let binner = engagement_sums_frame(frame, sweep, engagement, bins)?;
    Ok(binner.curve_mean(min_count).normalized_to_max(100.0))
}

/// The accumulation stage of [`engagement_curve_frame`]: the Fig. 1 sweep's
/// per-bin running sums, produced by the branchless kernel and adopted into
/// the compressed [`SumBinner`] the incremental curve view carries —
/// identical state to recording every selected row in row order.
pub(crate) fn engagement_sums_frame(
    frame: &SessionFrame,
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    bins: usize,
) -> Result<SumBinner, AnalyticsError> {
    let (lo, hi) = sweep.sweep_range();
    let spec = BinSpec::new(lo, hi, bins)?;
    let acc = kernels::masked_binned_sum_count(
        frame.net_mean(sweep),
        frame.engagement(engagement),
        frame.ref_row_mask(sweep),
        spec,
    );
    Ok(SumBinner::from_parts(
        spec,
        acc.sums,
        acc.counts,
        acc.dropped,
    ))
}

/// The Fig. 1 accumulator fed raw session records instead of frame rows —
/// the O(delta) append path, which lets a commit advance the curve view
/// without materialising the successor frame. A record's frame row stores
/// its values verbatim ([`SessionFrame`]'s `push`) and the reference mask
/// mirrors [`in_reference_except`], so recording records in batch order
/// produces the same observation sequence a row walk over the materialised
/// rows would.
pub(crate) fn record_curve_sums_records(
    sessions: &[SessionRecord],
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    binner: &mut SumBinner,
) {
    for s in sessions {
        if in_reference_except(s, sweep) {
            binner.record(s.network_mean(sweep), s.engagement(engagement));
        }
    }
}

/// Same curve computed over session P95s instead of means (the paper notes
/// "similar trends hold for P95 values as well").
pub fn engagement_curve_p95(
    dataset: &CallDataset,
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let (lo, hi) = sweep.sweep_range();
    // P95s run higher than means; stretch the axis.
    let spec = BinSpec::new(lo, hi * 1.8, bins)?;
    let mut binner = Binner::new(spec);
    for s in &dataset.sessions {
        if in_reference_except(s, sweep) {
            binner.record(s.network_p95(sweep), s.engagement(engagement));
        }
    }
    Ok(binner.curve_mean(min_count).normalized_to_max(100.0))
}

/// A 2-D grid of mean engagement over two network metrics (Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2d {
    /// X-axis bin spec (e.g. latency).
    pub x: BinSpec,
    /// Y-axis bin spec (e.g. loss).
    pub y: BinSpec,
    /// `values[yi][xi]`: mean engagement, `None` for thin cells. Normalised
    /// so the best populated cell reads 100.
    pub values: Vec<Vec<Option<f64>>>,
    /// Per-cell observation counts.
    pub counts: Vec<Vec<usize>>,
}

impl Grid2d {
    /// The minimum populated cell value.
    pub fn min_value(&self) -> Option<f64> {
        self.values
            .iter()
            .flatten()
            .flatten()
            .cloned()
            .reduce(f64::min)
    }

    /// The maximum populated cell value (100 after normalisation).
    pub fn max_value(&self) -> Option<f64> {
        self.values
            .iter()
            .flatten()
            .flatten()
            .cloned()
            .reduce(f64::max)
    }

    /// Value of the cell containing `(x, y)`.
    pub fn value_at(&self, x: f64, y: f64) -> Option<f64> {
        let xi = self.x.index(x)?;
        let yi = self.y.index(y)?;
        self.values[yi][xi]
    }
}

/// Fig. 2: the latency × loss compounding grid on Presence. Loss axis runs
/// to 3 % (beyond the Fig. 1b sweep) because that is where the compounding
/// bites. Unlike the Fig. 1 sweeps, the grid does *not* hold the remaining
/// metrics at reference — the paper's Fig. 2 bins all calls by the two
/// metrics of interest, and restricting jitter/bandwidth too would starve
/// the rare high-latency × high-loss corner of data.
pub fn compounding_grid(
    dataset: &CallDataset,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
) -> Result<Grid2d, AnalyticsError> {
    let x = BinSpec::new(0.0, 300.0, bins)?; // latency ms
    let y = BinSpec::new(0.0, 3.0, bins)?; // loss %
    let mut sums = vec![vec![0.0f64; bins]; bins];
    let mut counts = vec![vec![0usize; bins]; bins];
    for s in &dataset.sessions {
        let (Some(xi), Some(yi)) = (
            x.index(s.network_mean(NetworkMetric::LatencyMs)),
            y.index(s.network_mean(NetworkMetric::LossPct)),
        ) else {
            continue;
        };
        sums[yi][xi] += s.engagement(engagement);
        counts[yi][xi] += 1;
    }
    Ok(finish_grid(x, y, sums, counts, min_count))
}

/// [`compounding_grid`] over frame columns — the kernel-routed hot path:
/// the branchless [`kernels::grid_sum_count`] streams the latency, loss,
/// and engagement columns once, scattering masked running sums onto the
/// flat cell grid in row order — the reference pass's exact accumulation
/// order, so the grid is bit-identical to [`compounding_grid`]. Sequential
/// by construction; `workers` is accepted and ignored.
pub fn compounding_grid_frame(
    frame: &SessionFrame,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
    _workers: usize,
) -> Result<Grid2d, AnalyticsError> {
    let (x, y, sums, counts) = grid_sums_frame(frame, engagement, bins)?;
    Ok(grid_from_sums(x, y, bins, &sums, &counts, min_count))
}

/// The Fig. 2 axis specs: latency ms × loss %.
pub(crate) fn grid_specs(bins: usize) -> Result<(BinSpec, BinSpec), AnalyticsError> {
    Ok((
        BinSpec::new(0.0, 300.0, bins)?,
        BinSpec::new(0.0, 3.0, bins)?,
    ))
}

/// The accumulation stage of [`compounding_grid_frame`]: the flat per-cell
/// `(sum, count)` accumulators (`yi * bins + xi`), produced by the
/// branchless kernel in row order — identical state to recording every
/// in-range row sequentially, which is what the incremental grid view
/// carries across epochs.
pub(crate) fn grid_sums_frame(
    frame: &SessionFrame,
    engagement: EngagementMetric,
    bins: usize,
) -> Result<(BinSpec, BinSpec, Vec<f64>, Vec<usize>), AnalyticsError> {
    let (x, y) = grid_specs(bins)?;
    let (sums, counts) = kernels::grid_sum_count(
        frame.net_mean(NetworkMetric::LatencyMs),
        frame.net_mean(NetworkMetric::LossPct),
        frame.engagement(engagement),
        x,
        y,
    );
    Ok((x, y, sums, counts))
}

/// The Fig. 2 accumulators fed raw session records — the O(delta) append
/// path. The cell index comes from the same per-record reads the frame
/// columns store verbatim, so the accumulation sequence matches a row walk
/// over the materialised rows.
pub(crate) fn record_grid_sums_records(
    sessions: &[SessionRecord],
    engagement: EngagementMetric,
    x: BinSpec,
    y: BinSpec,
    bins: usize,
    sums: &mut [f64],
    counts: &mut [usize],
) {
    for s in sessions {
        let (Some(xi), Some(yi)) = (
            x.index(s.network_mean(NetworkMetric::LatencyMs)),
            y.index(s.network_mean(NetworkMetric::LossPct)),
        ) else {
            continue;
        };
        sums[yi * bins + xi] += s.engagement(engagement);
        counts[yi * bins + xi] += 1;
    }
}

/// Finishing pass from the compressed flat `(sum, count)` accumulators the
/// kernel scan produces and the incremental grid view carries — un-flattens
/// and feeds the same [`finish_grid`] the per-record reference feeds, so
/// identical sums give an identical grid.
pub(crate) fn grid_from_sums(
    x: BinSpec,
    y: BinSpec,
    bins: usize,
    sums: &[f64],
    counts: &[usize],
    min_count: usize,
) -> Grid2d {
    let sums2d: Vec<Vec<f64>> = sums.chunks(bins).map(<[f64]>::to_vec).collect();
    let counts2d: Vec<Vec<usize>> = counts.chunks(bins).map(<[usize]>::to_vec).collect();
    finish_grid(x, y, sums2d, counts2d, min_count)
}

/// Shared Fig. 2 finishing pass: thin-cell suppression and best-cell = 100
/// normalisation. Both the per-record and the columnar grid builders feed
/// their (sum, count) accumulators through this one code path.
fn finish_grid(
    x: BinSpec,
    y: BinSpec,
    sums: Vec<Vec<f64>>,
    counts: Vec<Vec<usize>>,
    min_count: usize,
) -> Grid2d {
    let mut values: Vec<Vec<Option<f64>>> = sums
        .iter()
        .zip(&counts)
        .map(|(row_s, row_c)| {
            row_s
                .iter()
                .zip(row_c)
                .map(|(s, c)| {
                    if *c >= min_count.max(1) {
                        Some(s / *c as f64)
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    // Normalise to the best cell = 100.
    let max = values
        .iter()
        .flatten()
        .flatten()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    if max.is_finite() && max > 0.0 {
        for row in values.iter_mut() {
            for v in row.iter_mut() {
                if let Some(v) = v.as_mut() {
                    *v = *v / max * 100.0;
                }
            }
        }
    }
    Grid2d {
        x,
        y,
        values,
        counts,
    }
}

/// Fig. 3: per-platform engagement-vs-loss curves (normalised jointly so
/// platform gaps survive normalisation: each curve is scaled by the global
/// best bin across platforms).
pub fn platform_curves(
    dataset: &CallDataset,
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
) -> Result<Vec<(Platform, BinnedCurve)>, AnalyticsError> {
    let (lo, hi) = sweep.sweep_range();
    let spec = BinSpec::new(lo, hi, bins)?;
    let mut binners: Vec<(Platform, Binner)> = Platform::ALL
        .iter()
        .map(|p| (*p, Binner::new(spec)))
        .collect();
    for s in &dataset.sessions {
        if !in_reference_except(s, sweep) {
            continue;
        }
        if let Some((_, binner)) = binners.iter_mut().find(|(p, _)| *p == s.platform) {
            binner.record(s.network_mean(sweep), s.engagement(engagement));
        }
    }
    let raw: Vec<(Platform, BinnedCurve)> = binners
        .into_iter()
        .map(|(p, b)| (p, b.curve_mean(min_count)))
        .collect();
    Ok(normalize_platforms_jointly(raw))
}

/// [`platform_curves`] over frame columns — the kernel-routed hot path:
/// the branchless [`kernels::masked_slot_binned_sum_count`] scatters masked
/// running sums onto one flat accumulator row per `Platform::ALL` slot in
/// row order, then the same joint normalisation as the per-record reference
/// finishes — bit-identical output. Sequential by construction; `workers`
/// is accepted and ignored.
pub fn platform_curves_frame(
    frame: &SessionFrame,
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
    _workers: usize,
) -> Result<Vec<(Platform, BinnedCurve)>, AnalyticsError> {
    let binners = platform_sums_frame(frame, sweep, engagement, bins)?;
    Ok(platform_curves_from_sums(&binners, min_count))
}

/// The accumulation stage of [`platform_curves_frame`]: one compressed
/// [`SumBinner`] per `Platform::ALL` slot, produced by the branchless slot
/// kernel — identical state to recording each platform's selected rows in
/// row order, which is what the incremental platform view carries.
pub(crate) fn platform_sums_frame(
    frame: &SessionFrame,
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    bins: usize,
) -> Result<Vec<SumBinner>, AnalyticsError> {
    let (lo, hi) = sweep.sweep_range();
    let spec = BinSpec::new(lo, hi, bins)?;
    let slots = Platform::ALL.len();
    let (sums, counts, dropped) = kernels::masked_slot_binned_sum_count(
        frame.net_mean(sweep),
        frame.engagement(engagement),
        frame.platform_slots(),
        slots,
        frame.ref_row_mask(sweep),
        spec,
    );
    Ok((0..slots)
        .map(|s| {
            SumBinner::from_parts(
                spec,
                sums[s * bins..(s + 1) * bins].to_vec(),
                counts[s * bins..(s + 1) * bins].to_vec(),
                dropped[s],
            )
        })
        .collect())
}

/// The Fig. 3 accumulators fed raw session records — the O(delta) append
/// path, same reference-filter and platform-slot logic as the columnar
/// scan.
pub(crate) fn record_platform_sums_records(
    sessions: &[SessionRecord],
    sweep: NetworkMetric,
    engagement: EngagementMetric,
    binners: &mut [SumBinner],
) {
    for s in sessions {
        if !in_reference_except(s, sweep) {
            continue;
        }
        if let Some(slot) = Platform::ALL.iter().position(|p| *p == s.platform) {
            binners[slot].record(s.network_mean(sweep), s.engagement(engagement));
        }
    }
}

/// Finishing pass for the compressed per-platform accumulators:
/// per-platform mean curves (bit-identical to the per-record reference when
/// fed the same rows in the same order), then the same joint normalisation.
pub(crate) fn platform_curves_from_sums(
    binners: &[SumBinner],
    min_count: usize,
) -> Vec<(Platform, BinnedCurve)> {
    let raw: Vec<(Platform, BinnedCurve)> = Platform::ALL
        .iter()
        .zip(binners)
        .map(|(p, b)| (*p, b.curve_mean(min_count)))
        .collect();
    normalize_platforms_jointly(raw)
}

/// Fig. 3 joint normalisation: every curve is scaled by the global best bin
/// across platforms so platform gaps survive normalisation. Shared by the
/// per-record and columnar builders.
fn normalize_platforms_jointly(raw: Vec<(Platform, BinnedCurve)>) -> Vec<(Platform, BinnedCurve)> {
    let global_max = raw
        .iter()
        .flat_map(|(_, c)| c.ys.iter().flatten().cloned())
        .fold(f64::NEG_INFINITY, f64::max);
    if !global_max.is_finite() || global_max <= 0.0 {
        return raw;
    }
    raw.into_iter()
        .map(|(p, c)| {
            let ys =
                c.ys.iter()
                    .map(|y| y.map(|y| y / global_max * 100.0))
                    .collect();
            (
                p,
                BinnedCurve {
                    xs: c.xs.clone(),
                    ys,
                    counts: c.counts,
                },
            )
        })
        .collect()
}

/// §3.2 text: early drop-off probability vs loss, swept beyond 3 %.
pub fn dropoff_by_loss(
    dataset: &CallDataset,
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let spec = BinSpec::new(0.0, 5.0, bins)?;
    let mut binner = Binner::new(spec);
    for s in &dataset.sessions {
        if in_reference_except(s, NetworkMetric::LossPct) {
            binner.record(
                s.network_mean(NetworkMetric::LossPct),
                if s.left_early { 100.0 } else { 0.0 },
            );
        }
    }
    Ok(binner.curve_mean(min_count))
}

/// §3.2 causality check: mean latency binned by Cam On. If camera video
/// congested the network, this curve would rise; in our generator (and the
/// paper's data) it does not.
pub fn latency_by_cam_on(
    dataset: &CallDataset,
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let spec = BinSpec::new(0.0, 100.0, bins)?;
    let mut binner = Binner::new(spec);
    for s in &dataset.sessions {
        binner.record(s.cam_on_pct, s.net.latency_ms.mean);
    }
    Ok(binner.curve_mean(min_count))
}

/// Fig. 4: mean rating binned by an engagement metric (x normalised 0–100).
pub fn mos_by_engagement(
    dataset: &CallDataset,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let spec = BinSpec::new(0.0, 100.0, bins)?;
    let mut binner = Binner::new(spec);
    for s in dataset.rated_sessions() {
        let rating = f64::from(s.rating.expect("rated_sessions yields rated"));
        binner.record(s.engagement(engagement), rating);
    }
    Ok(binner.curve_mean(min_count))
}

/// Fig. 4 ranking: Pearson correlation between each engagement metric and
/// the rating, over rated sessions. Sorted strongest-first.
pub fn mos_correlations(
    dataset: &CallDataset,
) -> Result<Vec<(EngagementMetric, f64)>, AnalyticsError> {
    let rated: Vec<&SessionRecord> = dataset.rated_sessions().collect();
    if rated.len() < 2 {
        return Err(AnalyticsError::Empty);
    }
    let ratings: Vec<f64> = rated
        .iter()
        .map(|s| f64::from(s.rating.expect("rated")))
        .collect();
    let mut out = Vec::new();
    for metric in EngagementMetric::ALL {
        let xs: Vec<f64> = rated.iter().map(|s| s.engagement(metric)).collect();
        out.push((metric, pearson(&xs, &ratings)?));
    }
    out.sort_by(|a, b| analytics::desc_nan_last(a.1, b.1));
    Ok(out)
}

/// [`mos_by_engagement`] over frame columns. The rated sliver is orders of
/// magnitude smaller than the dataset, so this stays single-threaded — the
/// win is reading two dense columns instead of walking full records.
pub fn mos_by_engagement_frame(
    frame: &SessionFrame,
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    mos_by_engagement_on(frame, frame.rated_indices(), engagement, bins, min_count)
}

/// [`mos_by_engagement_frame`] over a caller-supplied rated-index list (in
/// ascending session order). Recording rated rows in index order is the
/// same observation sequence as the full-column scan, so the curve is
/// bit-identical; the incremental MOS view carries the list across epochs.
pub(crate) fn mos_by_engagement_on(
    frame: &SessionFrame,
    rated: &[usize],
    engagement: EngagementMetric,
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let eng = kernels::gather(frame.engagement(engagement), rated);
    let ratings = gather_ratings(frame, rated);
    mos_curve_from_vals(&eng, &ratings, bins, min_count)
}

/// Fig. 4 curve from pre-gathered rated-row values (engagement and rating
/// vectors in rated-row order) — the incremental MOS view's finishing pass.
/// Recording the pairs in order replays the exact observation sequence the
/// index-gather path records, so the curve is bit-identical.
pub(crate) fn mos_curve_from_vals(
    eng: &[f64],
    ratings: &[f64],
    bins: usize,
    min_count: usize,
) -> Result<BinnedCurve, AnalyticsError> {
    let spec = BinSpec::new(0.0, 100.0, bins)?;
    let mut binner = Binner::new(spec);
    for (&x, &r) in eng.iter().zip(ratings) {
        binner.record(x, r);
    }
    Ok(binner.curve_mean(min_count))
}

/// Gather rated rows' ratings as `f64` in rated-row order.
fn gather_ratings(frame: &SessionFrame, rated: &[usize]) -> Vec<f64> {
    rated
        .iter()
        .map(|&i| f64::from(frame.rating()[i].expect("rated index carries a rating")))
        .collect()
}

/// [`mos_correlations`] over frame columns: the rated engagement vectors are
/// gathered from dense columns in session order, so every Pearson input —
/// and the ranking — is bit-identical to the per-record reference.
pub fn mos_correlations_frame(
    frame: &SessionFrame,
) -> Result<Vec<(EngagementMetric, f64)>, AnalyticsError> {
    mos_correlations_on(frame, frame.rated_indices())
}

/// [`mos_correlations_frame`] over a caller-supplied rated-index list (in
/// ascending session order) — the incremental MOS view's finishing pass.
pub(crate) fn mos_correlations_on(
    frame: &SessionFrame,
    rated: &[usize],
) -> Result<Vec<(EngagementMetric, f64)>, AnalyticsError> {
    let eng: Vec<Vec<f64>> = EngagementMetric::ALL
        .iter()
        .map(|&m| kernels::gather(frame.engagement(m), rated))
        .collect();
    mos_correlations_vals(&eng, &gather_ratings(frame, rated))
}

/// Fig. 4 ranking from pre-gathered rated-row values: `eng[k]` holds
/// `EngagementMetric::ALL[k]`'s values in rated-row order. Identical Pearson
/// inputs to the index-gather path, so the ranking is bit-identical.
pub(crate) fn mos_correlations_vals(
    eng: &[Vec<f64>],
    ratings: &[f64],
) -> Result<Vec<(EngagementMetric, f64)>, AnalyticsError> {
    if ratings.len() < 2 {
        return Err(AnalyticsError::Empty);
    }
    let mut out = Vec::new();
    for (k, &metric) in EngagementMetric::ALL.iter().enumerate() {
        out.push((metric, pearson(&eng[k], ratings)?));
    }
    out.sort_by(|a, b| analytics::desc_nan_last(a.1, b.1));
    Ok(out)
}

/// §6 confounder comparison: effect sizes (max presence gap, in points of
/// normalised presence) attributable to network vs platform vs meeting size
/// vs conditioning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfounderReport {
    /// Presence swing across the latency sweep (network effect).
    pub network_effect: f64,
    /// Presence gap between most and least sensitive platform under
    /// degraded conditions.
    pub platform_effect: f64,
    /// Presence gap between small and large meetings under degraded
    /// conditions.
    pub meeting_size_effect: f64,
    /// Presence gap between conditioned and unconditioned users under
    /// degraded conditions.
    pub conditioning_effect: f64,
}

fn mean_presence<'a>(sessions: impl Iterator<Item = &'a SessionRecord>) -> Option<f64> {
    let xs: Vec<f64> = sessions.map(|s| s.presence_pct).collect();
    analytics::mean(&xs).ok()
}

/// Compute the §6 effect-size comparison. "Degraded" means mean latency
/// above 120 ms (with loss/jitter/bandwidth unconstrained, to keep strata
/// populated).
pub fn confounder_report(dataset: &CallDataset) -> Result<ConfounderReport, AnalyticsError> {
    let latency_curve = engagement_curve(
        dataset,
        NetworkMetric::LatencyMs,
        EngagementMetric::Presence,
        6,
        5,
    )?;
    let network_effect = match (latency_curve.first_y(), latency_curve.last_y()) {
        (Some(a), Some(b)) => (a - b).abs(),
        _ => return Err(AnalyticsError::Empty),
    };
    let degraded = |s: &&SessionRecord| s.network_mean(NetworkMetric::LatencyMs) > 120.0;

    let mut platform_means = Vec::new();
    for p in Platform::ALL {
        if let Some(m) = mean_presence(
            dataset
                .sessions
                .iter()
                .filter(degraded)
                .filter(|s| s.platform == p),
        ) {
            platform_means.push(m);
        }
    }
    let platform_effect = platform_means
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        - platform_means.iter().cloned().fold(f64::INFINITY, f64::min);

    let small = mean_presence(
        dataset
            .sessions
            .iter()
            .filter(degraded)
            .filter(|s| s.meeting_size <= 5),
    );
    let large = mean_presence(
        dataset
            .sessions
            .iter()
            .filter(degraded)
            .filter(|s| s.meeting_size >= 10),
    );
    let meeting_size_effect = match (small, large) {
        (Some(a), Some(b)) => (a - b).abs(),
        _ => 0.0,
    };

    let cond = mean_presence(
        dataset
            .sessions
            .iter()
            .filter(degraded)
            .filter(|s| s.conditioned),
    );
    let uncond = mean_presence(
        dataset
            .sessions
            .iter()
            .filter(degraded)
            .filter(|s| !s.conditioned),
    );
    let conditioning_effect = match (cond, uncond) {
        (Some(a), Some(b)) => (a - b).abs(),
        _ => 0.0,
    };

    Ok(ConfounderReport {
        network_effect,
        platform_effect: platform_effect.max(0.0),
        meeting_size_effect,
        conditioning_effect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};
    use std::sync::OnceLock;

    /// A moderately-sized shared dataset (generation is the expensive part).
    fn dataset() -> &'static CallDataset {
        static DS: OnceLock<CallDataset> = OnceLock::new();
        DS.get_or_init(|| generate(&DatasetConfig::small(6000, 42)))
    }

    #[test]
    fn latency_curve_declines_mic_most() {
        let ds = dataset();
        let mic =
            engagement_curve(ds, NetworkMetric::LatencyMs, EngagementMetric::MicOn, 6, 8).unwrap();
        let presence = engagement_curve(
            ds,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            6,
            8,
        )
        .unwrap();
        let mic_drop = mic.first_y().unwrap() - mic.last_y().unwrap();
        let presence_drop = presence.first_y().unwrap() - presence.last_y().unwrap();
        assert!(mic_drop > 15.0, "mic drop {mic_drop}");
        assert!(presence_drop > 5.0, "presence drop {presence_drop}");
        assert!(mic_drop > presence_drop, "{mic_drop} vs {presence_drop}");
    }

    #[test]
    fn loss_curve_is_flat_below_two_percent() {
        let ds = dataset();
        // Four half-percent bins with a meaningful floor keep the thin
        // high-loss aggregates stable at this dataset size.
        for metric in EngagementMetric::ALL {
            let c = engagement_curve(ds, NetworkMetric::LossPct, metric, 4, 15).unwrap();
            let drop = c.first_y().unwrap() - c.last_y().unwrap();
            assert!(drop < 12.0, "{metric:?} dropped {drop} at 2% loss");
        }
    }

    #[test]
    fn compounding_grid_dips_hard() {
        let grid = compounding_grid(dataset(), EngagementMetric::Presence, 4, 5).unwrap();
        let max = grid.max_value().unwrap();
        let min = grid.min_value().unwrap();
        assert!((max - 100.0).abs() < 1e-9);
        assert!(min < 75.0, "compounding min {min}");
    }

    #[test]
    fn platform_curves_separate() {
        let curves = platform_curves(
            dataset(),
            NetworkMetric::LossPct,
            EngagementMetric::Presence,
            4,
            5,
        )
        .unwrap();
        assert_eq!(curves.len(), 4);
        // Every platform produced at least one populated bin.
        for (p, c) in &curves {
            assert!(!c.points().is_empty(), "{p:?} curve empty");
        }
    }

    #[test]
    fn mos_curve_increases_with_presence() {
        let c = mos_by_engagement(dataset(), EngagementMetric::Presence, 4, 3).unwrap();
        let pts = c.points();
        assert!(pts.len() >= 2, "need populated MOS bins, got {pts:?}");
        assert!(
            pts.last().unwrap().1 > pts.first().unwrap().1,
            "MOS should rise with presence: {pts:?}"
        );
    }

    #[test]
    fn mos_correlations_rank_presence_first() {
        let ranks = mos_correlations(dataset()).unwrap();
        assert_eq!(ranks.len(), 3);
        assert!(ranks.iter().all(|(_, c)| (-1.0..=1.0).contains(c)));
        assert_eq!(ranks[0].0, EngagementMetric::Presence, "{ranks:?}");
        assert!(ranks[0].1 > 0.1, "presence-MOS correlation {:?}", ranks[0]);
    }

    #[test]
    fn cam_on_does_not_raise_latency() {
        let c = latency_by_cam_on(dataset(), 5, 20).unwrap();
        let slope = c.slope_between(10.0, 90.0).unwrap();
        assert!(
            slope <= 0.05,
            "latency should not rise with CamOn, slope {slope}"
        );
    }

    #[test]
    fn confounder_report_orders_effects() {
        let r = confounder_report(dataset()).unwrap();
        assert!(r.network_effect > r.meeting_size_effect, "{r:?}");
        assert!(r.network_effect > r.conditioning_effect, "{r:?}");
        assert!(r.platform_effect > 0.0, "{r:?}");
    }

    #[test]
    fn reference_filter_behaviour() {
        let ds = dataset();
        let kept = ds
            .sessions
            .iter()
            .filter(|s| in_reference_except(s, NetworkMetric::LatencyMs))
            .count();
        assert!(kept > 0, "reference filter kept nothing");
        assert!(kept < ds.len(), "reference filter kept everything");
    }

    #[test]
    fn dropoff_rises_beyond_three_percent() {
        let c = dropoff_by_loss(dataset(), 5, 5).unwrap();
        let low = c.y_near(0.5).unwrap();
        if let Some(high) = c.y_near(4.5) {
            assert!(high > low, "drop-off {high} at high loss vs {low}");
        }
    }

    #[test]
    fn p95_trends_match_means() {
        let mean_curve = engagement_curve(
            dataset(),
            NetworkMetric::LatencyMs,
            EngagementMetric::MicOn,
            6,
            8,
        )
        .unwrap();
        let p95_curve = engagement_curve_p95(
            dataset(),
            NetworkMetric::LatencyMs,
            EngagementMetric::MicOn,
            6,
            8,
        )
        .unwrap();
        let mean_drop = mean_curve.first_y().unwrap() - mean_curve.last_y().unwrap();
        let p95_drop = p95_curve.first_y().unwrap() - p95_curve.last_y().unwrap();
        assert!(
            mean_drop > 0.0 && p95_drop > 0.0,
            "both aggregations decline"
        );
    }

    /// Regression for the correlation ranking sorts (`mos_correlations` and
    /// its frame twin): a NaN coefficient must sort after every real one
    /// and the result must not depend on where the NaN sat in the input —
    /// the old `partial_cmp(..).unwrap_or(Equal)` comparator was not a
    /// total order, so `sort_by` could leave a NaN anywhere.
    #[test]
    fn correlation_ranking_is_nan_safe() {
        let mut out: Vec<(EngagementMetric, f64)> = vec![
            (EngagementMetric::Presence, f64::NAN),
            (EngagementMetric::MicOn, 0.9),
            (EngagementMetric::CamOn, -0.2),
        ];
        out.sort_by(|a, b| analytics::desc_nan_last(a.1, b.1));
        assert_eq!(out[0].0, EngagementMetric::MicOn);
        assert_eq!(out[1].0, EngagementMetric::CamOn);
        assert!(out[2].1.is_nan());
        let mut rev: Vec<(EngagementMetric, f64)> = vec![
            (EngagementMetric::CamOn, -0.2),
            (EngagementMetric::Presence, f64::NAN),
            (EngagementMetric::MicOn, 0.9),
        ];
        rev.sort_by(|a, b| analytics::desc_nan_last(a.1, b.1));
        assert_eq!(
            out.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
            rev.iter().map(|(m, _)| *m).collect::<Vec<_>>()
        );
    }
}
