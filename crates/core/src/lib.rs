//! # usaas — User Signals as-a-Service
//!
//! The paper's primary contribution (§5): a framework that ingests implicit
//! user actions, explicit feedback, and social-media posts; correlates them
//! with network conditions; and answers operator queries. This crate wires
//! the substrates together and implements every analysis behind the paper's
//! figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod annotate;
pub mod bias;
pub mod correlate;
pub mod digest;
pub mod early;
pub mod emerging;
pub mod fulcrum;
pub mod ingest;
pub mod outage;
pub mod predict;
pub mod report;
pub mod service;
pub mod signals;
pub mod store;

pub use advisor::{Intervention, TrafficAdvisor};
pub use annotate::{AnnotatedPeak, PeakAnnotator};
pub use bias::{extremity_bias, geo_corrected_polarity, ExtremityBias};
pub use correlate::{
    compounding_grid, confounder_report, engagement_curve, mos_by_engagement, mos_correlations,
    platform_curves, ConfounderReport, Grid2d,
};
pub use digest::{Digest, DigestBuilder, RegimeChange, TestedGap};
pub use early::{EarlyQualityMonitor, EarlyScoreWeights, HorizonSkill};
pub use emerging::{EmergingTopic, EmergingTopicMiner};
pub use fulcrum::{Fig7Series, FulcrumAnalysis, MonthlyPoint};
pub use ingest::ingest_all;
pub use outage::{DetectedOutage, DetectionScore, OutageDetector};
pub use predict::{train_and_evaluate, Evaluation, FeatureSet, MosPredictor};
pub use service::{Answer, CrossNetworkReport, Query, UsaasError, UsaasService};
pub use signals::{NetworkHint, Payload, Signal, SignalKind};
pub use store::SignalStore;
