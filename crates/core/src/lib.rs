//! # usaas — User Signals as-a-Service
//!
//! The paper's primary contribution (§5): a framework that ingests implicit
//! user actions, explicit feedback, and social-media posts; correlates them
//! with network conditions; and answers operator queries. This crate wires
//! the substrates together and implements every analysis behind the paper's
//! figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod annotate;
pub mod bias;
pub mod breaker;
pub mod cache;
pub mod cluster;
pub mod correlate;
pub mod daemon;
pub mod digest;
pub mod early;
pub mod emerging;
pub mod fault;
pub mod frame;
pub mod fulcrum;
pub mod ingest;
pub mod outage;
pub mod persist;
pub mod predict;
pub mod report;
pub mod service;
pub mod signals;
pub mod source;
pub mod store;
pub mod views;

pub use advisor::{Intervention, TrafficAdvisor};
pub use annotate::{AnnotatedPeak, PeakAnnotator};
pub use bias::{extremity_bias, extremity_bias_signals, geo_corrected_polarity, ExtremityBias};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use cache::MemoCache;
pub use cluster::{ClusterHealth, PartitionedService, CLUSTER_META};
pub use correlate::{
    compounding_grid, compounding_grid_frame, confounder_report, engagement_curve,
    engagement_curve_frame, mos_by_engagement, mos_by_engagement_frame, mos_correlations,
    mos_correlations_frame, platform_curves, platform_curves_frame, ConfounderReport, Grid2d,
};
pub use daemon::{
    adaptive_budget, ewma_ms, AdaptiveTick, AdmissionPolicy, ClusterDaemon, ClusterDaemonHealth,
    Daemon, DaemonConfig, DaemonHealth, DrainReport, FeedStatus, RejectReason, ServeTarget,
    SubmitOutcome, TakeSource, TickReport,
};
pub use digest::{Digest, DigestBuilder, RegimeChange, TestedGap};
pub use early::{EarlyQualityMonitor, EarlyScoreWeights, HorizonSkill};
pub use emerging::{EmergingTopic, EmergingTopicMiner};
pub use fault::{Clock, Fault, FaultInjector, FaultPlan, VirtualClock, WallClock};
pub use frame::{chunk_ranges, par_map_ranges, SessionFrame};
pub use fulcrum::{Fig7Series, FulcrumAnalysis, MonthlyPoint};
pub use ingest::{
    ingest_all, ingest_stream, IngestConfig, IngestReport, PanicPolicy, QuarantineEntry,
    QuarantineReason, SourceHealth,
};
pub use outage::{DetectedOutage, DetectionScore, OutageDetector};
pub use persist::{
    journal_record_offsets, CompactionReport, JournalStats, PersistError, JOURNAL_FILE,
};
pub use predict::{
    train_and_evaluate, train_and_evaluate_frame, Evaluation, FeatureSet, MosPredictor,
};
pub use service::{
    Answer, CrossNetworkReport, Generation, Query, ServiceHealth, SessionChunks, UsaasError,
    UsaasService, DEAD_LETTER_CAP, RECOVERY_WARNING_CAP,
};
pub use signals::{NetworkHint, Payload, Signal, SignalKind};
pub use source::{ItemSource, PostSource, RawItem, SessionSource, Source, SourceError};
pub use store::SignalStore;
pub use views::{View, ViewKey, ViewSet};
