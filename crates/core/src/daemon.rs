//! The continuous-serving daemon: an always-on loop around
//! [`UsaasService`] (§5's "service" read literally).
//!
//! The paper's USaaS is not a batch job — it continuously folds user
//! signals into operator-facing answers. This module supplies the missing
//! runtime: registered [`Source`] feeds are pulled through the resilient
//! ingest engine a bounded window per tick, callers push ad-hoc batches
//! through a **bounded submit queue** with explicit admission control
//! (block / shed / reject), a periodic checkpointer reuses
//! [`UsaasService::checkpoint`]'s full/diff auto-choice and then runs
//! [`UsaasService::compact_journal`] so disk stays bounded, and
//! [`Daemon::shutdown`] drains the queue to a final checkpoint and
//! reports a structured [`DrainReport`].
//!
//! Every time decision runs on the [`Clock`] carried by the ingest
//! config — [`crate::fault::WallClock`] in production, a
//! [`crate::fault::VirtualClock`] in tests — so the whole lifecycle
//! (ticks, checkpoint cadence, block-admission timeouts) is
//! deterministically testable under the existing `FaultPlan` injectors.
//! The daemon adds no parallelism of its own: each tick funnels all work
//! through one `ingest_append` call, so the workers-1/4/8 bit-identity
//! invariant holds exactly as it does for manual appends
//! (`tests/daemon_lifecycle.rs` pins daemon runs against equivalent
//! manual schedules).

use crate::ingest::IngestConfig;
use crate::persist::{CompactionReport, JournalStats};
use crate::service::{BoundedLog, ServiceHealth, UsaasService};
use crate::source::{ItemSource, RawItem, Source, SourceError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Most recent daemon-side errors (failed checkpoints/compactions) kept
/// in [`DaemonHealth::errors`]; older ones are evicted with a count.
const DAEMON_ERROR_CAP: usize = 64;

/// What [`Daemon::submit`] does when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Wait (on the daemon's clock) for space, up to
    /// [`DaemonConfig::block_timeout_ms`]; reject after that.
    Block,
    /// Drop the batch, count it, and remember it in the daemon's shed
    /// ring — load-shedding that never stalls the caller.
    Shed,
    /// Refuse immediately; the caller keeps the batch and decides.
    Reject,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue had no room (and the policy does not wait or shed).
    QueueFull,
    /// The daemon is draining; admission is closed for good.
    Draining,
    /// A [`AdmissionPolicy::Block`] submission waited out
    /// [`DaemonConfig::block_timeout_ms`] without space appearing.
    BlockTimeout,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::QueueFull => "queue full",
            RejectReason::Draining => "daemon draining",
            RejectReason::BlockTimeout => "block timeout",
        })
    }
}

/// Outcome of one [`Daemon::submit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted; the queue now holds `depth` pending items.
    Queued {
        /// Queued items after this batch was enqueued.
        depth: usize,
    },
    /// The shed policy dropped the whole batch (`items` of them).
    Shed {
        /// Items dropped.
        items: usize,
    },
    /// The batch was refused; the caller still owns nothing — submitted
    /// items are consumed either way, so a rejecting daemon returns the
    /// reason and drops the batch.
    Rejected {
        /// Why admission refused the batch.
        reason: RejectReason,
    },
}

/// Daemon tuning. All durations are on the ingest config's [`Clock`].
#[derive(Clone)]
pub struct DaemonConfig {
    /// Sleep between ticks in [`Daemon::run`]/[`Daemon::run_ticks`].
    pub tick_ms: u64,
    /// Per-feed pull window: at most this many items are consumed from
    /// each registered feed per tick (transient errors retry within the
    /// window without counting against it).
    pub max_items_per_tick: usize,
    /// Submit-queue capacity in items. A single batch larger than this
    /// can never be admitted and is refused (or shed) immediately.
    pub queue_capacity: usize,
    /// What [`Daemon::submit`] does when the queue is full.
    pub admission: AdmissionPolicy,
    /// How long a [`AdmissionPolicy::Block`] submission waits before
    /// giving up.
    pub block_timeout_ms: u64,
    /// Polling step for blocked submissions (clamped to ≥ 1 ms).
    pub block_poll_ms: u64,
    /// Checkpoint when this much clock time has passed since the last
    /// one; `0` disables periodic checkpointing.
    pub checkpoint_every_ms: u64,
    /// Run journal compaction after each periodic checkpoint.
    pub compact_journal: bool,
    /// Engine config for every tick's ingest run: worker count,
    /// retry/breaker policy, and — crucially — the clock the whole daemon
    /// runs on.
    pub ingest: IngestConfig,
}

impl std::fmt::Debug for DaemonConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonConfig")
            .field("tick_ms", &self.tick_ms)
            .field("max_items_per_tick", &self.max_items_per_tick)
            .field("queue_capacity", &self.queue_capacity)
            .field("admission", &self.admission)
            .field("block_timeout_ms", &self.block_timeout_ms)
            .field("block_poll_ms", &self.block_poll_ms)
            .field("checkpoint_every_ms", &self.checkpoint_every_ms)
            .field("compact_journal", &self.compact_journal)
            .field("ingest", &self.ingest)
            .finish()
    }
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            tick_ms: 1_000,
            max_items_per_tick: 1_024,
            queue_capacity: 8_192,
            admission: AdmissionPolicy::Block,
            block_timeout_ms: 5_000,
            block_poll_ms: 10,
            checkpoint_every_ms: 60_000,
            compact_journal: true,
            ingest: IngestConfig::default(),
        }
    }
}

impl DaemonConfig {
    /// A config with `workers` ingest threads and defaults everywhere
    /// else.
    pub fn with_workers(workers: usize) -> DaemonConfig {
        DaemonConfig {
            ingest: IngestConfig::with_workers(workers),
            ..DaemonConfig::default()
        }
    }
}

/// A per-tick window over a long-lived source: passes through at most
/// `budget` consumed items (accepted pulls and permanent errors), then
/// reports end-of-stream without touching the inner source further.
/// Transient errors pass through *without* counting against the budget so
/// the engine's retry/backoff machinery sees them exactly as it would on
/// the bare source.
///
/// Public so tests can mirror a daemon's tick schedule manually: pulling
/// the same source through the same sequence of `TakeSource` windows is,
/// by construction, the same item stream the daemon fed the engine.
pub struct TakeSource<'a> {
    inner: &'a mut dyn Source,
    left: usize,
    /// `inner.dropped()` accumulates across ticks; the engine reads it
    /// once per run, so this window reports only the delta.
    base_dropped: usize,
}

impl<'a> TakeSource<'a> {
    /// Wrap `inner`, allowing at most `budget` consumed items.
    pub fn new(inner: &'a mut dyn Source, budget: usize) -> TakeSource<'a> {
        let base_dropped = inner.dropped();
        TakeSource {
            inner,
            left: budget,
            base_dropped,
        }
    }
}

impl Source for TakeSource<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<Result<RawItem, SourceError>> {
        if self.left == 0 {
            return None;
        }
        let item = self.inner.next_item()?;
        match &item {
            Ok(_) | Err(SourceError::Permanent { .. }) => self.left -= 1,
            Err(_) => {}
        }
        Some(item)
    }

    fn take_pending(&mut self) -> Option<RawItem> {
        self.inner.take_pending()
    }

    fn dropped(&self) -> usize {
        self.inner.dropped() - self.base_dropped
    }

    fn remaining_hint(&self) -> usize {
        self.inner.remaining_hint().min(self.left)
    }
}

/// One registered feed's slot in the daemon.
struct FeedSlot {
    source: Box<dyn Source>,
    done: bool,
    fed_total: usize,
    quarantined_total: usize,
}

/// The bounded submit queue: whole batches in arrival order, plus the
/// running item count the capacity check is against.
#[derive(Default)]
struct SubmitQueue {
    batches: VecDeque<Vec<RawItem>>,
    items: usize,
}

/// Counters and rings the watchdog folds into [`DaemonHealth`].
struct DaemonStats {
    ticks: u64,
    submitted_items: usize,
    shed_items: usize,
    shed_batches: usize,
    rejected_batches: usize,
    checkpoints: u64,
    /// Clock time of the last periodic checkpoint; `None` until the
    /// first (cadence then counts from `started_ms`).
    last_checkpoint_ms: Option<u64>,
    started_ms: u64,
    last_compaction: Option<CompactionReport>,
    /// Failed checkpoints/compactions — the daemon degrades rather than
    /// dying, and the failures surface here.
    errors: BoundedLog<String>,
}

/// Status of one registered feed, surfaced in [`DaemonHealth`].
#[derive(Debug, Clone)]
pub struct FeedStatus {
    /// The source's name.
    pub name: String,
    /// True once the feed disconnected or went a whole tick without any
    /// activity — the daemon stops polling it.
    pub done: bool,
    /// Items this feed contributed across all ticks.
    pub fed_total: usize,
    /// Items from this feed that were quarantined across all ticks.
    pub quarantined_total: usize,
}

/// What one [`Daemon::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// 1-based tick number.
    pub tick: u64,
    /// Submitted batches drained from the queue this tick.
    pub queued_batches: usize,
    /// Items those batches held.
    pub queued_items: usize,
    /// Live feeds polled this tick.
    pub feeds_polled: usize,
    /// Items the ingest run accepted (queue + feeds).
    pub fed: usize,
    /// Items the ingest run quarantined.
    pub quarantined: usize,
    /// True when the run committed a new generation (epoch advanced).
    pub committed: bool,
    /// Path of the periodic checkpoint, when one was due and succeeded.
    pub checkpointed: Option<PathBuf>,
    /// Compaction report, when compaction ran after the checkpoint.
    pub compaction: Option<CompactionReport>,
    /// Checkpoint/compaction failures this tick (also accumulated into
    /// [`DaemonHealth::errors`]).
    pub errors: Vec<String>,
}

/// The daemon's own health, embedding the wrapped service's
/// [`ServiceHealth`] — the watchdog view an operator polls.
#[derive(Debug, Clone)]
pub struct DaemonHealth {
    /// Ticks executed so far.
    pub ticks: u64,
    /// Items currently waiting in the submit queue.
    pub queue_depth: usize,
    /// Submit-queue capacity in items.
    pub queue_capacity: usize,
    /// Items admitted through [`Daemon::submit`] across the run.
    pub submitted_items_total: usize,
    /// Items dropped by the shed policy across the run.
    pub shed_items_total: usize,
    /// Batches refused outright across the run.
    pub rejected_batches_total: usize,
    /// True once [`Daemon::shutdown`] closed admission.
    pub draining: bool,
    /// Periodic checkpoints written.
    pub checkpoints: u64,
    /// The most recent compaction pass, if any ran.
    pub last_compaction: Option<CompactionReport>,
    /// Per-feed status in registration order.
    pub feeds: Vec<FeedStatus>,
    /// Recent daemon-side errors (failed checkpoints/compactions).
    pub errors: Vec<String>,
    /// Errors evicted from the bounded ring.
    pub errors_dropped: usize,
    /// The wrapped service's health (breakers, quarantine, recovery
    /// warnings, journal stats).
    pub service: ServiceHealth,
}

/// Structured result of a graceful shutdown.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Batches drained from the submit queue after admission closed.
    pub drained_batches: usize,
    /// Items those batches held.
    pub drained_items: usize,
    /// Items the final ingest run accepted.
    pub fed: usize,
    /// Items the final ingest run quarantined.
    pub quarantined: usize,
    /// Service epoch after the drain.
    pub final_epoch: u64,
    /// Journal seq after the drain (0 for an in-memory service).
    pub final_seq: u64,
    /// Path of the final checkpoint (None for an in-memory service or if
    /// the write failed — see `errors`).
    pub checkpoint: Option<PathBuf>,
    /// Final compaction pass, when enabled and it ran.
    pub compaction: Option<CompactionReport>,
    /// Journal stats after the final checkpoint.
    pub journal: Option<JournalStats>,
    /// Ticks the daemon executed before draining.
    pub ticks: u64,
    /// Items shed over the daemon's lifetime.
    pub shed_items_total: usize,
    /// Failures during the drain (final checkpoint/compaction).
    pub errors: Vec<String>,
}

/// The always-on serving loop around an `Arc<UsaasService>`. All methods
/// take `&self`; share the daemon behind an `Arc` to run
/// [`Daemon::run`] on a background thread while other threads submit
/// batches and poll health.
pub struct Daemon {
    svc: Arc<UsaasService>,
    cfg: DaemonConfig,
    feeds: Mutex<Vec<FeedSlot>>,
    queue: Mutex<SubmitQueue>,
    stats: Mutex<DaemonStats>,
    draining: AtomicBool,
    stopped: AtomicBool,
}

impl Daemon {
    /// Wrap `svc` with the given config. No threads start here — drive
    /// ticks with [`Daemon::run`], [`Daemon::run_ticks`], or
    /// [`Daemon::tick`] directly.
    pub fn new(svc: Arc<UsaasService>, cfg: DaemonConfig) -> Daemon {
        let started_ms = cfg.ingest.clock.now_ms();
        Daemon {
            svc,
            cfg,
            feeds: Mutex::new(Vec::new()),
            queue: Mutex::new(SubmitQueue::default()),
            stats: Mutex::new(DaemonStats {
                ticks: 0,
                submitted_items: 0,
                shed_items: 0,
                shed_batches: 0,
                rejected_batches: 0,
                checkpoints: 0,
                last_checkpoint_ms: None,
                started_ms,
                last_compaction: None,
                errors: BoundedLog::new(DAEMON_ERROR_CAP),
            }),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<UsaasService> {
        &self.svc
    }

    /// Register a long-lived feed. Each tick pulls at most
    /// [`DaemonConfig::max_items_per_tick`] items from it through the
    /// resilient engine (retry/backoff/breaker semantics apply per tick);
    /// the feed is retired once it disconnects or goes a whole tick
    /// without activity.
    pub fn register_feed(&self, source: Box<dyn Source>) {
        self.feeds.lock().push(FeedSlot {
            source,
            done: false,
            fed_total: 0,
            quarantined_total: 0,
        });
    }

    /// Try to put `items` on the queue; `None` when capacity is exceeded.
    fn try_enqueue(&self, items: &mut Option<Vec<RawItem>>) -> Option<usize> {
        let batch = items.take().expect("batch present until enqueued");
        let mut queue = self.queue.lock();
        if queue.items + batch.len() > self.cfg.queue_capacity {
            *items = Some(batch);
            return None;
        }
        queue.items += batch.len();
        queue.batches.push_back(batch);
        Some(queue.items)
    }

    /// Submit a batch through admission control. Admitted batches are
    /// ingested (in submission order) by the next [`Daemon::tick`].
    pub fn submit(&self, items: Vec<RawItem>) -> SubmitOutcome {
        let n = items.len();
        if self.draining.load(Ordering::SeqCst) {
            self.stats.lock().rejected_batches += 1;
            return SubmitOutcome::Rejected {
                reason: RejectReason::Draining,
            };
        }
        if n == 0 {
            return SubmitOutcome::Queued {
                depth: self.queue.lock().items,
            };
        }
        // A batch that exceeds total capacity can never fit; blocking on
        // it would never return.
        let oversized = n > self.cfg.queue_capacity;
        let mut pending = Some(items);
        if !oversized {
            if let Some(depth) = self.try_enqueue(&mut pending) {
                self.stats.lock().submitted_items += n;
                return SubmitOutcome::Queued { depth };
            }
        }
        match self.cfg.admission {
            AdmissionPolicy::Shed => {
                let mut stats = self.stats.lock();
                stats.shed_items += n;
                stats.shed_batches += 1;
                SubmitOutcome::Shed { items: n }
            }
            AdmissionPolicy::Reject => {
                self.stats.lock().rejected_batches += 1;
                SubmitOutcome::Rejected {
                    reason: RejectReason::QueueFull,
                }
            }
            AdmissionPolicy::Block => {
                if oversized {
                    self.stats.lock().rejected_batches += 1;
                    return SubmitOutcome::Rejected {
                        reason: RejectReason::QueueFull,
                    };
                }
                let clock = &self.cfg.ingest.clock;
                let step = self.cfg.block_poll_ms.max(1);
                let mut waited = 0u64;
                loop {
                    if waited >= self.cfg.block_timeout_ms {
                        self.stats.lock().rejected_batches += 1;
                        return SubmitOutcome::Rejected {
                            reason: RejectReason::BlockTimeout,
                        };
                    }
                    clock.sleep_ms(step);
                    waited += step;
                    if self.draining.load(Ordering::SeqCst) {
                        self.stats.lock().rejected_batches += 1;
                        return SubmitOutcome::Rejected {
                            reason: RejectReason::Draining,
                        };
                    }
                    if let Some(depth) = self.try_enqueue(&mut pending) {
                        self.stats.lock().submitted_items += n;
                        return SubmitOutcome::Queued { depth };
                    }
                }
            }
        }
    }

    /// One daemon tick: drain the submit queue and poll every live feed
    /// through **one** `ingest_append` run (one journal record, one
    /// commit), then checkpoint + compact if the cadence says so.
    /// Infallible by design — persistence failures degrade into
    /// [`TickReport::errors`] / [`DaemonHealth::errors`] while serving
    /// continues on the last good generation.
    pub fn tick(&self) -> TickReport {
        let tick = {
            let mut stats = self.stats.lock();
            stats.ticks += 1;
            stats.ticks
        };
        let mut report = TickReport {
            tick,
            ..TickReport::default()
        };

        let batches: Vec<Vec<RawItem>> = {
            let mut queue = self.queue.lock();
            queue.items = 0;
            queue.batches.drain(..).collect()
        };
        report.queued_batches = batches.len();
        report.queued_items = batches.iter().map(Vec::len).sum();

        let epoch_before = self.svc.epoch();
        {
            let mut feeds = self.feeds.lock();
            let mut sources: Vec<Box<dyn Source + '_>> = Vec::new();
            for batch in batches {
                sources.push(Box::new(ItemSource::new("daemon-submit", batch)));
            }
            let queue_sources = sources.len();
            let mut polled: Vec<usize> = Vec::new();
            for (i, slot) in feeds.iter_mut().enumerate() {
                if slot.done {
                    continue;
                }
                polled.push(i);
                sources.push(Box::new(TakeSource::new(
                    slot.source.as_mut(),
                    self.cfg.max_items_per_tick,
                )));
            }
            report.feeds_polled = polled.len();
            if !sources.is_empty() {
                let ingest = self.svc.ingest_append(sources, &self.cfg.ingest);
                report.fed = ingest.fed;
                report.quarantined = ingest.quarantined.len();
                for (k, &i) in polled.iter().enumerate() {
                    let health = &ingest.sources[queue_sources + k];
                    let slot = &mut feeds[i];
                    slot.fed_total += health.fed;
                    slot.quarantined_total += health.quarantined;
                    let active = health.fed
                        + health.quarantined
                        + health.retries
                        + health.dropped
                        + health.skipped
                        > 0;
                    if health.disconnected || !active {
                        slot.done = true;
                    }
                }
            }
        }
        report.committed = self.svc.epoch() != epoch_before;

        self.maybe_checkpoint(&mut report);
        if !report.errors.is_empty() {
            let mut stats = self.stats.lock();
            for e in &report.errors {
                stats.errors.push(e.clone());
            }
        }
        report
    }

    /// Periodic checkpoint + compaction, when due on the clock.
    fn maybe_checkpoint(&self, report: &mut TickReport) {
        if self.cfg.checkpoint_every_ms == 0 || !self.svc.is_persistent() {
            return;
        }
        let now = self.cfg.ingest.clock.now_ms();
        let last = {
            let stats = self.stats.lock();
            stats.last_checkpoint_ms.unwrap_or(stats.started_ms)
        };
        if now.saturating_sub(last) < self.cfg.checkpoint_every_ms {
            return;
        }
        match self.svc.checkpoint() {
            Ok(path) => {
                let mut stats = self.stats.lock();
                stats.checkpoints += 1;
                stats.last_checkpoint_ms = Some(now);
                drop(stats);
                report.checkpointed = Some(path);
            }
            Err(e) => {
                report
                    .errors
                    .push(format!("periodic checkpoint failed: {e}"));
                return;
            }
        }
        if self.cfg.compact_journal {
            match self.svc.compact_journal() {
                Ok(compaction) => {
                    if compaction.dropped_records > 0 {
                        self.stats.lock().last_compaction = Some(compaction);
                    }
                    report.compaction = Some(compaction);
                }
                Err(e) => report
                    .errors
                    .push(format!("journal compaction failed: {e}")),
            }
        }
    }

    /// Run `n` ticks, sleeping [`DaemonConfig::tick_ms`] on the daemon's
    /// clock after each — the deterministic test harness's entry point (a
    /// `VirtualClock` makes the sleeps instant but still advances the
    /// checkpoint cadence). Stops early if [`Daemon::stop`] was called.
    pub fn run_ticks(&self, n: u64) -> Vec<TickReport> {
        let mut reports = Vec::new();
        for _ in 0..n {
            if self.stopped.load(Ordering::SeqCst) {
                break;
            }
            reports.push(self.tick());
            self.cfg.ingest.clock.sleep_ms(self.cfg.tick_ms);
        }
        reports
    }

    /// Run until [`Daemon::stop`] (or [`Daemon::shutdown`]) — the
    /// production loop for a `WallClock` daemon on a background thread.
    pub fn run(&self) {
        while !self.stopped.load(Ordering::SeqCst) {
            self.tick();
            if self.stopped.load(Ordering::SeqCst) {
                break;
            }
            self.cfg.ingest.clock.sleep_ms(self.cfg.tick_ms);
        }
    }

    /// Spawn [`Daemon::run`] on a background thread.
    pub fn spawn(self: &Arc<Daemon>) -> std::thread::JoinHandle<()> {
        let daemon = Arc::clone(self);
        std::thread::spawn(move || daemon.run())
    }

    /// Ask the run loop to exit after its current tick (does not drain;
    /// use [`Daemon::shutdown`] for the graceful path).
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: close admission (subsequent [`Daemon::submit`]
    /// calls are rejected with [`RejectReason::Draining`]), stop the run
    /// loop, ingest everything still queued in one final run, write a
    /// final checkpoint (+ compaction when enabled), and report what
    /// happened. Registered feeds are left wherever they are — a drain
    /// flushes accepted work, it does not chase open-ended streams.
    pub fn shutdown(&self) -> DrainReport {
        self.draining.store(true, Ordering::SeqCst);
        self.stopped.store(true, Ordering::SeqCst);
        let mut report = DrainReport::default();

        let batches: Vec<Vec<RawItem>> = {
            let mut queue = self.queue.lock();
            queue.items = 0;
            queue.batches.drain(..).collect()
        };
        report.drained_batches = batches.len();
        report.drained_items = batches.iter().map(Vec::len).sum();
        if !batches.is_empty() {
            let sources: Vec<Box<dyn Source + '_>> = batches
                .into_iter()
                .map(|batch| {
                    Box::new(ItemSource::new("daemon-drain", batch)) as Box<dyn Source + '_>
                })
                .collect();
            let ingest = self.svc.ingest_append(sources, &self.cfg.ingest);
            report.fed = ingest.fed;
            report.quarantined = ingest.quarantined.len();
        }

        if self.svc.is_persistent() {
            match self.svc.checkpoint() {
                Ok(path) => {
                    self.stats.lock().checkpoints += 1;
                    report.checkpoint = Some(path);
                }
                Err(e) => report.errors.push(format!("final checkpoint failed: {e}")),
            }
            if self.cfg.compact_journal {
                match self.svc.compact_journal() {
                    Ok(compaction) => report.compaction = Some(compaction),
                    Err(e) => report.errors.push(format!("final compaction failed: {e}")),
                }
            }
        }

        let journal = self.svc.journal_stats();
        report.final_seq = journal.map(|j| j.last_seq).unwrap_or(0);
        report.journal = journal;
        report.final_epoch = self.svc.epoch();
        let mut stats = self.stats.lock();
        report.ticks = stats.ticks;
        report.shed_items_total = stats.shed_items;
        for e in &report.errors {
            stats.errors.push(e.clone());
        }
        report
    }

    /// The watchdog view: daemon queue/admission/feed state folded with
    /// the wrapped service's [`ServiceHealth`] (which carries breaker,
    /// quarantine, recovery-warning, and journal state).
    pub fn health(&self) -> DaemonHealth {
        let service = self.svc.health();
        let queue_depth = self.queue.lock().items;
        let feeds = self
            .feeds
            .lock()
            .iter()
            .map(|slot| FeedStatus {
                name: slot.source.name().to_string(),
                done: slot.done,
                fed_total: slot.fed_total,
                quarantined_total: slot.quarantined_total,
            })
            .collect();
        let stats = self.stats.lock();
        DaemonHealth {
            ticks: stats.ticks,
            queue_depth,
            queue_capacity: self.cfg.queue_capacity,
            submitted_items_total: stats.submitted_items,
            shed_items_total: stats.shed_items,
            rejected_batches_total: stats.rejected_batches,
            draining: self.draining.load(Ordering::SeqCst),
            checkpoints: stats.checkpoints,
            last_compaction: stats.last_compaction,
            feeds,
            errors: stats.errors.to_vec(),
            errors_dropped: stats.errors.dropped(),
            service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Clock, VirtualClock};
    use conference::dataset::{generate, DatasetConfig};
    use social::post::Forum;

    fn small_service(workers: usize) -> Arc<UsaasService> {
        let dataset = generate(&DatasetConfig::small(40, 7));
        Arc::new(UsaasService::build(
            dataset,
            Forum { posts: Vec::new() },
            workers,
        ))
    }

    fn session_items(n: usize) -> Vec<RawItem> {
        generate(&DatasetConfig::small(n.max(4), 11))
            .sessions
            .into_iter()
            .take(n)
            .map(|s| RawItem::Session(Box::new(s)))
            .collect()
    }

    fn virtual_config(workers: usize, clock: Arc<VirtualClock>) -> DaemonConfig {
        let mut cfg = DaemonConfig::with_workers(workers);
        cfg.ingest = cfg.ingest.with_clock(clock);
        cfg.checkpoint_every_ms = 0;
        cfg
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, clock);
        cfg.queue_capacity = 10;
        cfg.admission = AdmissionPolicy::Reject;
        let daemon = Daemon::new(small_service(2), cfg);
        assert!(matches!(
            daemon.submit(session_items(8)),
            SubmitOutcome::Queued { depth: 8 }
        ));
        assert_eq!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Rejected {
                reason: RejectReason::QueueFull
            }
        );
        let health = daemon.health();
        assert_eq!(health.queue_depth, 8);
        assert_eq!(health.rejected_batches_total, 1);
        // The next tick drains the queue and commits.
        let report = daemon.tick();
        assert_eq!(report.queued_items, 8);
        assert!(report.committed);
        assert_eq!(daemon.health().queue_depth, 0);
    }

    #[test]
    fn shed_policy_drops_and_counts() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, clock);
        cfg.queue_capacity = 6;
        cfg.admission = AdmissionPolicy::Shed;
        let daemon = Daemon::new(small_service(2), cfg);
        assert!(matches!(
            daemon.submit(session_items(6)),
            SubmitOutcome::Queued { .. }
        ));
        assert_eq!(
            daemon.submit(session_items(5)),
            SubmitOutcome::Shed { items: 5 }
        );
        let health = daemon.health();
        assert_eq!(health.shed_items_total, 5);
        assert_eq!(health.queue_depth, 6, "the queued batch is untouched");
    }

    #[test]
    fn block_policy_times_out_deterministically_on_the_virtual_clock() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, Arc::clone(&clock));
        cfg.queue_capacity = 4;
        cfg.admission = AdmissionPolicy::Block;
        cfg.block_timeout_ms = 100;
        cfg.block_poll_ms = 10;
        let daemon = Daemon::new(small_service(2), cfg);
        assert!(matches!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Queued { .. }
        ));
        let before = clock.now_ms();
        assert_eq!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Rejected {
                reason: RejectReason::BlockTimeout
            }
        );
        assert_eq!(
            clock.now_ms() - before,
            100,
            "blocked exactly the configured timeout on the virtual clock"
        );
    }

    #[test]
    fn draining_daemon_rejects_submissions() {
        let clock = Arc::new(VirtualClock::new());
        let daemon = Daemon::new(small_service(2), virtual_config(2, clock));
        assert!(matches!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Queued { .. }
        ));
        let drain = daemon.shutdown();
        assert_eq!(drain.drained_items, 4);
        assert_eq!(drain.fed, 4);
        assert_eq!(
            daemon.submit(session_items(1)),
            SubmitOutcome::Rejected {
                reason: RejectReason::Draining
            }
        );
        assert!(daemon.health().draining);
    }

    #[test]
    fn take_source_windows_a_long_stream() {
        let mut inner = ItemSource::new("feed", session_items(10));
        for expected in [4usize, 4, 2, 0] {
            let mut window = TakeSource::new(&mut inner, 4);
            let mut got = 0;
            while let Some(item) = window.next_item() {
                assert!(item.is_ok());
                got += 1;
            }
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn oversized_batch_is_rejected_not_blocked() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, Arc::clone(&clock));
        cfg.queue_capacity = 4;
        cfg.admission = AdmissionPolicy::Block;
        let daemon = Daemon::new(small_service(2), cfg);
        let before = clock.now_ms();
        assert_eq!(
            daemon.submit(session_items(5)),
            SubmitOutcome::Rejected {
                reason: RejectReason::QueueFull
            }
        );
        assert_eq!(clock.now_ms(), before, "no blocking on an impossible fit");
    }
}
