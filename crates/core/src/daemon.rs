//! The continuous-serving daemon: an always-on loop around a
//! [`ServeTarget`] — a single [`UsaasService`] or a whole
//! [`PartitionedService`](crate::cluster::PartitionedService) cluster
//! (§5's "service" read literally, at either scale).
//!
//! The paper's USaaS is not a batch job — it continuously folds user
//! signals into operator-facing answers. This module supplies the missing
//! runtime: registered [`Source`] feeds are pulled through the resilient
//! ingest engine a bounded window per tick, callers push ad-hoc batches
//! through a **bounded submit queue** with explicit admission control
//! (block / shed / reject), a periodic checkpointer drives each persist
//! unit (the single service, or every partition on a **staggered
//! cadence** so N fsync-heavy checkpoints never align on one tick) and
//! then compacts that unit's journal — plus, for a cluster, the root
//! cluster log via
//! [`PartitionedService::compact_root_log`](crate::cluster::PartitionedService::compact_root_log)
//! — so disk stays bounded, and [`Daemon::shutdown`] drains the queue to
//! a final checkpoint and reports a structured [`DrainReport`].
//!
//! Every time decision runs on the [`Clock`](crate::fault::Clock) carried
//! by the ingest config — [`crate::fault::WallClock`] in production, a
//! [`crate::fault::VirtualClock`] in tests — so the whole lifecycle
//! (ticks, checkpoint cadences, block-admission timeouts, the adaptive
//! tick's latency EWMA) is deterministically testable under the existing
//! `FaultPlan` injectors. The daemon adds no parallelism of its own: each
//! tick funnels all work through one `ingest_append` call, so the
//! workers-1/4/8 (and partitions-1/2/4/8) bit-identity invariant holds
//! exactly as it does for manual appends (`tests/daemon_lifecycle.rs`
//! pins daemon runs against equivalent manual schedules).

use crate::ingest::{IngestConfig, IngestReport};
use crate::persist::{CompactionReport, JournalStats, PersistError};
use crate::service::{BoundedLog, ServiceHealth, UsaasService};
use crate::source::{ItemSource, RawItem, Source, SourceError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Most recent daemon-side errors (failed checkpoints/compactions) kept
/// in [`DaemonHealth::errors`]; older ones are evicted with a count.
const DAEMON_ERROR_CAP: usize = 64;

/// What the daemon needs from the thing it serves. Implemented by
/// [`UsaasService`] (one persist unit) and
/// [`PartitionedService`](crate::cluster::PartitionedService) (one unit
/// per partition, plus a root log), so one daemon implementation runs the
/// full lifecycle — feeds, submit queue, staggered checkpoints, journal
/// and root-log compaction, graceful drain — over either.
pub trait ServeTarget: Send + Sync + 'static {
    /// The health report the daemon embeds in [`DaemonHealth::service`].
    type Health: std::fmt::Debug + Clone + Send;

    /// Ingest `sources` through the resilient streaming engine as one
    /// atomic batch (one journal record, one commit).
    fn ingest_append<'a>(
        &self,
        sources: Vec<Box<dyn Source + 'a>>,
        cfg: &IngestConfig,
    ) -> IngestReport;

    /// Committed appends since the build.
    fn epoch(&self) -> u64;

    /// True when the target persists to disk (checkpoints/compactions
    /// are meaningful).
    fn is_persistent(&self) -> bool;

    /// The target's own health report.
    fn health(&self) -> Self::Health;

    /// Aggregate journal stats (`None` for an in-memory target).
    fn journal_stats(&self) -> Option<JournalStats>;

    /// Independently checkpointable units: 1 for a single service, the
    /// partition count for a cluster. The daemon staggers one cadence
    /// offset per unit.
    fn persist_units(&self) -> usize;

    /// Durably checkpoint one unit; returns the snapshot path.
    fn checkpoint_unit(&self, unit: usize) -> Result<PathBuf, PersistError>;

    /// Compact one unit's write-ahead journal.
    fn compact_unit(&self, unit: usize) -> Result<CompactionReport, PersistError>;

    /// Compact the shared root log, when the target has one (`None` for a
    /// single service — its only journal is already per-unit).
    fn compact_root(&self) -> Option<Result<CompactionReport, PersistError>>;
}

/// What [`Daemon::submit`] does when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Wait (on the daemon's clock) for space, up to
    /// [`DaemonConfig::block_timeout_ms`]; reject after that.
    Block,
    /// Drop the batch, count it, and remember it in the daemon's shed
    /// ring — load-shedding that never stalls the caller.
    Shed,
    /// Refuse immediately; the caller keeps the batch and decides.
    Reject,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue had no room (and the policy does not wait or shed).
    QueueFull,
    /// The daemon is draining; admission is closed for good.
    Draining,
    /// A [`AdmissionPolicy::Block`] submission waited out
    /// [`DaemonConfig::block_timeout_ms`] without space appearing.
    BlockTimeout,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::QueueFull => "queue full",
            RejectReason::Draining => "daemon draining",
            RejectReason::BlockTimeout => "block timeout",
        })
    }
}

/// Outcome of one [`Daemon::submit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted; the queue now holds `depth` pending items.
    Queued {
        /// Queued items after this batch was enqueued.
        depth: usize,
    },
    /// The shed policy dropped the whole batch (`items` of them).
    Shed {
        /// Items dropped.
        items: usize,
    },
    /// The batch was refused; the caller still owns nothing — submitted
    /// items are consumed either way, so a rejecting daemon returns the
    /// reason and drops the batch.
    Rejected {
        /// Why admission refused the batch.
        reason: RejectReason,
    },
}

/// Adaptive tick sizing: scale the per-feed pull window so the observed
/// per-tick ingest latency converges on `target_ms`.
///
/// The controller is a pure function of daemon-clock samples — see
/// [`ewma_ms`] and [`adaptive_budget`] — so it is exactly reproducible on
/// a [`crate::fault::VirtualClock`] (where in-tick latency is whatever
/// the test's fault plan makes the engine sleep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveTick {
    /// Ingest latency the controller steers toward, per tick.
    pub target_ms: u64,
    /// EWMA smoothing factor in percent (0–100): weight of the newest
    /// sample. 100 tracks the last tick only; small values smooth hard.
    pub alpha_pct: u32,
    /// Floor for the adapted window (clamped to ≥ 1).
    pub min_items: usize,
    /// Ceiling for the adapted window.
    pub max_items: usize,
}

impl Default for AdaptiveTick {
    fn default() -> AdaptiveTick {
        AdaptiveTick {
            target_ms: 500,
            alpha_pct: 20,
            min_items: 64,
            max_items: 16_384,
        }
    }
}

/// One EWMA step: `alpha_pct`% of `sample_ms` plus the rest of `prev`
/// (`sample_ms` itself when there is no history). Integer arithmetic,
/// widened internally, so the result is identical on every platform.
pub fn ewma_ms(alpha_pct: u32, prev: Option<u64>, sample_ms: u64) -> u64 {
    let a = u128::from(alpha_pct.min(100));
    match prev {
        None => sample_ms,
        Some(p) => {
            let num = a * u128::from(sample_ms) + (100 - a) * u128::from(p);
            (num / 100) as u64
        }
    }
}

/// The next per-tick item budget: scale `current` by
/// `target_ms / ewma_ms` (double it while the EWMA still reads zero — an
/// idle or instant-clock tick carries no latency signal), clamped to
/// `[min_items, max_items]`.
pub fn adaptive_budget(cfg: &AdaptiveTick, ewma_ms: u64, current: usize) -> usize {
    let lo = cfg.min_items.max(1);
    let hi = cfg.max_items.max(lo);
    let next = if ewma_ms == 0 {
        current.saturating_mul(2)
    } else {
        let scaled = u128::from(current as u64) * u128::from(cfg.target_ms) / u128::from(ewma_ms);
        usize::try_from(scaled).unwrap_or(usize::MAX)
    };
    next.clamp(lo, hi)
}

/// Daemon tuning. All durations are on the ingest config's
/// [`Clock`](crate::fault::Clock).
#[derive(Clone)]
pub struct DaemonConfig {
    /// Sleep between ticks in [`Daemon::run`]/[`Daemon::run_ticks`].
    pub tick_ms: u64,
    /// Per-feed pull window: at most this many items are consumed from
    /// each registered feed per tick (transient errors retry within the
    /// window without counting against it). The starting value when
    /// [`DaemonConfig::adaptive`] is set.
    pub max_items_per_tick: usize,
    /// Submit-queue capacity in items. A single batch larger than this
    /// can never be admitted and is refused (or shed) immediately.
    pub queue_capacity: usize,
    /// What [`Daemon::submit`] does when the queue is full.
    pub admission: AdmissionPolicy,
    /// How long a [`AdmissionPolicy::Block`] submission waits before
    /// giving up.
    pub block_timeout_ms: u64,
    /// Polling step for blocked submissions (clamped to ≥ 1 ms); the
    /// final poll is clamped to the remaining budget so the timeout is
    /// exact.
    pub block_poll_ms: u64,
    /// Granularity of the run loop's between-tick sleep (clamped to
    /// ≥ 1 ms): [`Daemon::stop`]/[`Daemon::shutdown`] latency is bounded
    /// by this step, not by a whole [`DaemonConfig::tick_ms`].
    pub stop_poll_ms: u64,
    /// Checkpoint each persist unit when this much clock time has passed
    /// since its last one; `0` disables periodic checkpointing. Units
    /// start on staggered offsets (unit `k` of `n` first fires at
    /// `(k+1)/n` of the cadence) so multi-unit targets never fsync every
    /// unit on the same tick.
    pub checkpoint_every_ms: u64,
    /// Run journal compaction (and, for targets that have one, root-log
    /// compaction) after periodic checkpoints.
    pub compact_journal: bool,
    /// Adaptive per-tick item budget; `None` keeps the fixed
    /// [`DaemonConfig::max_items_per_tick`] window.
    pub adaptive: Option<AdaptiveTick>,
    /// Engine config for every tick's ingest run: worker count,
    /// retry/breaker policy, and — crucially — the clock the whole daemon
    /// runs on.
    pub ingest: IngestConfig,
}

impl std::fmt::Debug for DaemonConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonConfig")
            .field("tick_ms", &self.tick_ms)
            .field("max_items_per_tick", &self.max_items_per_tick)
            .field("queue_capacity", &self.queue_capacity)
            .field("admission", &self.admission)
            .field("block_timeout_ms", &self.block_timeout_ms)
            .field("block_poll_ms", &self.block_poll_ms)
            .field("stop_poll_ms", &self.stop_poll_ms)
            .field("checkpoint_every_ms", &self.checkpoint_every_ms)
            .field("compact_journal", &self.compact_journal)
            .field("adaptive", &self.adaptive)
            .field("ingest", &self.ingest)
            .finish()
    }
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            tick_ms: 1_000,
            max_items_per_tick: 1_024,
            queue_capacity: 8_192,
            admission: AdmissionPolicy::Block,
            block_timeout_ms: 5_000,
            block_poll_ms: 10,
            stop_poll_ms: 10,
            checkpoint_every_ms: 60_000,
            compact_journal: true,
            adaptive: None,
            ingest: IngestConfig::default(),
        }
    }
}

impl DaemonConfig {
    /// A config with `workers` ingest threads and defaults everywhere
    /// else.
    pub fn with_workers(workers: usize) -> DaemonConfig {
        DaemonConfig {
            ingest: IngestConfig::with_workers(workers),
            ..DaemonConfig::default()
        }
    }
}

/// A per-tick window over a long-lived source: passes through at most
/// `budget` consumed items (accepted pulls and permanent errors), then
/// reports end-of-stream without touching the inner source further.
/// Transient errors pass through *without* counting against the budget so
/// the engine's retry/backoff machinery sees them exactly as it would on
/// the bare source.
///
/// Public so tests can mirror a daemon's tick schedule manually: pulling
/// the same source through the same sequence of `TakeSource` windows is,
/// by construction, the same item stream the daemon fed the engine.
pub struct TakeSource<'a> {
    inner: &'a mut dyn Source,
    left: usize,
    /// `inner.dropped()` accumulates across ticks; the engine reads it
    /// once per run, so this window reports only the delta.
    base_dropped: usize,
}

impl<'a> TakeSource<'a> {
    /// Wrap `inner`, allowing at most `budget` consumed items.
    pub fn new(inner: &'a mut dyn Source, budget: usize) -> TakeSource<'a> {
        let base_dropped = inner.dropped();
        TakeSource {
            inner,
            left: budget,
            base_dropped,
        }
    }
}

impl Source for TakeSource<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_item(&mut self) -> Option<Result<RawItem, SourceError>> {
        if self.left == 0 {
            return None;
        }
        let item = self.inner.next_item()?;
        match &item {
            Ok(_) | Err(SourceError::Permanent { .. }) => self.left -= 1,
            Err(_) => {}
        }
        Some(item)
    }

    fn take_pending(&mut self) -> Option<RawItem> {
        self.inner.take_pending()
    }

    fn dropped(&self) -> usize {
        // Saturating: a re-registered or reconnecting feed may reset its
        // cumulative counter below the window's baseline, which must read
        // as "no new drops", not a debug-build underflow panic.
        self.inner.dropped().saturating_sub(self.base_dropped)
    }

    fn remaining_hint(&self) -> usize {
        self.inner.remaining_hint().min(self.left)
    }
}

/// One registered feed's slot in the daemon.
struct FeedSlot {
    source: Box<dyn Source>,
    done: bool,
    fed_total: usize,
    quarantined_total: usize,
}

/// The bounded submit queue: whole batches in arrival order, plus the
/// running item count the capacity check is against.
#[derive(Default)]
struct SubmitQueue {
    batches: VecDeque<Vec<RawItem>>,
    items: usize,
}

/// One persist unit's checkpoint schedule.
struct UnitCadence {
    /// Clock time the unit's next periodic checkpoint is due.
    next_due_ms: u64,
    /// Consecutive failed checkpoint attempts; drives the capped
    /// exponential backoff and resets on success.
    failures: u32,
}

/// Counters and rings the watchdog folds into [`DaemonHealth`].
struct DaemonStats {
    ticks: u64,
    submitted_items: usize,
    shed_items: usize,
    shed_batches: usize,
    rejected_batches: usize,
    checkpoints: u64,
    /// Per-unit checkpoint schedules, staggered at construction.
    cadences: Vec<UnitCadence>,
    last_compaction: Option<CompactionReport>,
    last_root_compaction: Option<CompactionReport>,
    /// The live per-feed pull window (equals `cfg.max_items_per_tick`
    /// until the adaptive controller moves it).
    items_per_tick: usize,
    /// EWMA of observed per-tick ingest latency; `None` until the first
    /// tick that actually ingested.
    ewma_tick_ms: Option<u64>,
    /// Failed checkpoints/compactions — the daemon degrades rather than
    /// dying, and the failures surface here.
    errors: BoundedLog<String>,
}

/// Status of one registered feed, surfaced in [`DaemonHealth`].
#[derive(Debug, Clone)]
pub struct FeedStatus {
    /// The source's name.
    pub name: String,
    /// True once the feed disconnected or went a whole tick without any
    /// activity — the daemon stops polling it.
    pub done: bool,
    /// Items this feed contributed across all ticks.
    pub fed_total: usize,
    /// Items from this feed that were quarantined across all ticks.
    pub quarantined_total: usize,
}

/// What one [`Daemon::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// 1-based tick number.
    pub tick: u64,
    /// Submitted batches drained from the queue this tick.
    pub queued_batches: usize,
    /// Items those batches held.
    pub queued_items: usize,
    /// Live feeds polled this tick.
    pub feeds_polled: usize,
    /// Items the ingest run accepted (queue + feeds).
    pub fed: usize,
    /// Items the ingest run quarantined.
    pub quarantined: usize,
    /// True when the run committed a new generation (epoch advanced).
    pub committed: bool,
    /// Path of the last periodic checkpoint this tick, when any unit was
    /// due and succeeded.
    pub checkpointed: Option<PathBuf>,
    /// Persist units that checkpointed this tick, in unit order.
    pub checkpointed_units: Vec<usize>,
    /// Compaction report of the last unit compacted this tick.
    pub compaction: Option<CompactionReport>,
    /// Root-log compaction report, when the target has a root log and a
    /// pass ran this tick.
    pub root_compaction: Option<CompactionReport>,
    /// Checkpoint/compaction failures this tick (also accumulated into
    /// [`DaemonHealth::errors`]).
    pub errors: Vec<String>,
}

/// The daemon's own health, embedding the wrapped target's report — the
/// watchdog view an operator polls. `H` is [`ServiceHealth`] for a single
/// service, [`ClusterHealth`](crate::cluster::ClusterHealth) for a
/// cluster.
#[derive(Debug, Clone)]
pub struct DaemonHealth<H = ServiceHealth> {
    /// Ticks executed so far.
    pub ticks: u64,
    /// Items currently waiting in the submit queue.
    pub queue_depth: usize,
    /// Submit-queue capacity in items.
    pub queue_capacity: usize,
    /// Items admitted through [`Daemon::submit`] across the run.
    pub submitted_items_total: usize,
    /// Items dropped by the shed policy across the run.
    pub shed_items_total: usize,
    /// Batches refused outright across the run.
    pub rejected_batches_total: usize,
    /// True once [`Daemon::shutdown`] closed admission.
    pub draining: bool,
    /// Periodic checkpoints written (unit checkpoints, for a cluster).
    pub checkpoints: u64,
    /// The most recent unit compaction pass that dropped records.
    pub last_compaction: Option<CompactionReport>,
    /// The most recent root-log compaction pass that dropped records.
    pub last_root_compaction: Option<CompactionReport>,
    /// The live per-feed pull window (moves under
    /// [`DaemonConfig::adaptive`]).
    pub items_per_tick: usize,
    /// EWMA of per-tick ingest latency; `None` until the first ingesting
    /// tick.
    pub ewma_tick_ms: Option<u64>,
    /// Per-feed status in registration order.
    pub feeds: Vec<FeedStatus>,
    /// Recent daemon-side errors (failed checkpoints/compactions).
    pub errors: Vec<String>,
    /// Errors evicted from the bounded ring.
    pub errors_dropped: usize,
    /// The wrapped target's health (breakers, quarantine, recovery
    /// warnings, journal stats).
    pub service: H,
}

/// Structured result of a graceful shutdown.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Batches drained from the submit queue after admission closed.
    pub drained_batches: usize,
    /// Items those batches held.
    pub drained_items: usize,
    /// Items the final ingest run accepted.
    pub fed: usize,
    /// Items the final ingest run quarantined.
    pub quarantined: usize,
    /// Service epoch after the drain.
    pub final_epoch: u64,
    /// Journal seq after the drain (0 for an in-memory service).
    pub final_seq: u64,
    /// Path of the final checkpoint — the last unit's, for a cluster
    /// (`None` for an in-memory target or if every write failed — see
    /// `errors`).
    pub checkpoint: Option<PathBuf>,
    /// Final compaction pass of the last unit, when enabled and it ran.
    pub compaction: Option<CompactionReport>,
    /// Final root-log compaction pass, when the target has a root log.
    pub root_compaction: Option<CompactionReport>,
    /// Journal stats after the final checkpoint.
    pub journal: Option<JournalStats>,
    /// Ticks the daemon executed before draining.
    pub ticks: u64,
    /// Items shed over the daemon's lifetime.
    pub shed_items_total: usize,
    /// Failures during the drain (final checkpoint/compaction).
    pub errors: Vec<String>,
}

/// A daemon serving a durable partitioned cluster.
pub type ClusterDaemon = Daemon<crate::cluster::PartitionedService>;

/// [`DaemonHealth`] as a cluster daemon reports it.
pub type ClusterDaemonHealth = DaemonHealth<crate::cluster::ClusterHealth>;

/// The always-on serving loop around an `Arc<T: ServeTarget>`. All
/// methods take `&self`; share the daemon behind an `Arc` to run
/// [`Daemon::run`] on a background thread while other threads submit
/// batches and poll health.
pub struct Daemon<T: ServeTarget = UsaasService> {
    svc: Arc<T>,
    cfg: DaemonConfig,
    feeds: Mutex<Vec<FeedSlot>>,
    queue: Mutex<SubmitQueue>,
    stats: Mutex<DaemonStats>,
    draining: AtomicBool,
    stopped: AtomicBool,
}

impl<T: ServeTarget> Daemon<T> {
    /// Wrap `svc` with the given config. No threads start here — drive
    /// ticks with [`Daemon::run`], [`Daemon::run_ticks`], or
    /// [`Daemon::tick`] directly.
    pub fn new(svc: Arc<T>, cfg: DaemonConfig) -> Daemon<T> {
        let started_ms = cfg.ingest.clock.now_ms();
        let units = svc.persist_units().max(1);
        let period = cfg.checkpoint_every_ms;
        // Stagger unit k of n to (k+1)/n of the cadence: unit n-1 lands a
        // full period out (identical to the single-unit schedule), the
        // rest spread evenly ahead of it, and the spacing persists because
        // every success re-arms exactly one period later.
        let cadences = (0..units)
            .map(|k| UnitCadence {
                next_due_ms: started_ms + period * (k as u64 + 1) / units as u64,
                failures: 0,
            })
            .collect();
        Daemon {
            cfg: cfg.clone(),
            feeds: Mutex::new(Vec::new()),
            queue: Mutex::new(SubmitQueue::default()),
            stats: Mutex::new(DaemonStats {
                ticks: 0,
                submitted_items: 0,
                shed_items: 0,
                shed_batches: 0,
                rejected_batches: 0,
                checkpoints: 0,
                cadences,
                last_compaction: None,
                last_root_compaction: None,
                items_per_tick: cfg.max_items_per_tick,
                ewma_tick_ms: None,
                errors: BoundedLog::new(DAEMON_ERROR_CAP),
            }),
            svc,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        }
    }

    /// The wrapped target.
    pub fn service(&self) -> &Arc<T> {
        &self.svc
    }

    /// Register a long-lived feed. Each tick pulls at most the live
    /// per-tick window ([`DaemonConfig::max_items_per_tick`], moved by
    /// the adaptive controller when configured) from it through the
    /// resilient engine (retry/backoff/breaker semantics apply per tick);
    /// the feed is retired once it disconnects or goes a whole tick
    /// without activity.
    pub fn register_feed(&self, source: Box<dyn Source>) {
        self.feeds.lock().push(FeedSlot {
            source,
            done: false,
            fed_total: 0,
            quarantined_total: 0,
        });
    }

    /// Try to put `items` on the queue; `None` when capacity is exceeded.
    fn try_enqueue(&self, items: &mut Option<Vec<RawItem>>) -> Option<usize> {
        let batch = items.take().expect("batch present until enqueued");
        let mut queue = self.queue.lock();
        if queue.items + batch.len() > self.cfg.queue_capacity {
            *items = Some(batch);
            return None;
        }
        queue.items += batch.len();
        queue.batches.push_back(batch);
        Some(queue.items)
    }

    /// Submit a batch through admission control. Admitted batches are
    /// ingested (in submission order) by the next [`Daemon::tick`].
    pub fn submit(&self, items: Vec<RawItem>) -> SubmitOutcome {
        let n = items.len();
        if self.draining.load(Ordering::SeqCst) {
            self.stats.lock().rejected_batches += 1;
            return SubmitOutcome::Rejected {
                reason: RejectReason::Draining,
            };
        }
        if n == 0 {
            return SubmitOutcome::Queued {
                depth: self.queue.lock().items,
            };
        }
        // A batch that exceeds total capacity can never fit; blocking on
        // it would never return.
        let oversized = n > self.cfg.queue_capacity;
        let mut pending = Some(items);
        if !oversized {
            if let Some(depth) = self.try_enqueue(&mut pending) {
                self.stats.lock().submitted_items += n;
                return SubmitOutcome::Queued { depth };
            }
        }
        match self.cfg.admission {
            AdmissionPolicy::Shed => {
                let mut stats = self.stats.lock();
                stats.shed_items += n;
                stats.shed_batches += 1;
                SubmitOutcome::Shed { items: n }
            }
            AdmissionPolicy::Reject => {
                self.stats.lock().rejected_batches += 1;
                SubmitOutcome::Rejected {
                    reason: RejectReason::QueueFull,
                }
            }
            AdmissionPolicy::Block => {
                if oversized {
                    self.stats.lock().rejected_batches += 1;
                    return SubmitOutcome::Rejected {
                        reason: RejectReason::QueueFull,
                    };
                }
                let clock = &self.cfg.ingest.clock;
                let step = self.cfg.block_poll_ms.max(1);
                let mut waited = 0u64;
                loop {
                    if waited >= self.cfg.block_timeout_ms {
                        self.stats.lock().rejected_batches += 1;
                        return SubmitOutcome::Rejected {
                            reason: RejectReason::BlockTimeout,
                        };
                    }
                    // Clamp the final poll to the remaining budget so the
                    // deadline is exact (a 10 ms step must not stretch a
                    // 5 ms timeout to 10).
                    let sleep = step.min(self.cfg.block_timeout_ms - waited);
                    clock.sleep_ms(sleep);
                    waited += sleep;
                    if self.draining.load(Ordering::SeqCst) {
                        self.stats.lock().rejected_batches += 1;
                        return SubmitOutcome::Rejected {
                            reason: RejectReason::Draining,
                        };
                    }
                    if let Some(depth) = self.try_enqueue(&mut pending) {
                        self.stats.lock().submitted_items += n;
                        return SubmitOutcome::Queued { depth };
                    }
                }
            }
        }
    }

    /// One daemon tick: drain the submit queue and poll every live feed
    /// through **one** `ingest_append` run (one journal record, one
    /// commit), then checkpoint + compact whichever persist units'
    /// cadences say so. Infallible by design — persistence failures
    /// degrade into [`TickReport::errors`] / [`DaemonHealth::errors`]
    /// while serving continues on the last good generation.
    pub fn tick(&self) -> TickReport {
        let (tick, budget) = {
            let mut stats = self.stats.lock();
            stats.ticks += 1;
            (stats.ticks, stats.items_per_tick)
        };
        let mut report = TickReport {
            tick,
            ..TickReport::default()
        };

        let batches: Vec<Vec<RawItem>> = {
            let mut queue = self.queue.lock();
            queue.items = 0;
            queue.batches.drain(..).collect()
        };
        report.queued_batches = batches.len();
        report.queued_items = batches.iter().map(Vec::len).sum();

        let epoch_before = self.svc.epoch();
        {
            let mut feeds = self.feeds.lock();
            let mut sources: Vec<Box<dyn Source + '_>> = Vec::new();
            for batch in batches {
                sources.push(Box::new(ItemSource::new("daemon-submit", batch)));
            }
            let queue_sources = sources.len();
            let mut polled: Vec<usize> = Vec::new();
            for (i, slot) in feeds.iter_mut().enumerate() {
                if slot.done {
                    continue;
                }
                polled.push(i);
                sources.push(Box::new(TakeSource::new(slot.source.as_mut(), budget)));
            }
            report.feeds_polled = polled.len();
            if !sources.is_empty() {
                let clock = &self.cfg.ingest.clock;
                let ingest_started = clock.now_ms();
                let ingest = self.svc.ingest_append(sources, &self.cfg.ingest);
                let ingest_ms = clock.now_ms().saturating_sub(ingest_started);
                report.fed = ingest.fed;
                report.quarantined = ingest.quarantined.len();
                for (k, &i) in polled.iter().enumerate() {
                    let health = &ingest.sources[queue_sources + k];
                    let slot = &mut feeds[i];
                    slot.fed_total += health.fed;
                    slot.quarantined_total += health.quarantined;
                    let active = health.fed
                        + health.quarantined
                        + health.retries
                        + health.dropped
                        + health.skipped
                        > 0;
                    if health.disconnected || !active {
                        slot.done = true;
                    }
                }
                if let Some(adaptive) = &self.cfg.adaptive {
                    let mut stats = self.stats.lock();
                    let ewma = ewma_ms(adaptive.alpha_pct, stats.ewma_tick_ms, ingest_ms);
                    stats.ewma_tick_ms = Some(ewma);
                    stats.items_per_tick = adaptive_budget(adaptive, ewma, budget);
                }
            }
        }
        report.committed = self.svc.epoch() != epoch_before;

        self.maybe_checkpoint(&mut report);
        if !report.errors.is_empty() {
            let mut stats = self.stats.lock();
            for e in &report.errors {
                stats.errors.push(e.clone());
            }
        }
        report
    }

    /// Periodic per-unit checkpoints + compactions, for every unit whose
    /// cadence is due on the clock; after any unit succeeds, a root-log
    /// compaction pass for targets that have one. A failed unit re-arms
    /// with a capped exponential backoff (1×, 2×, 4×, then 8× the
    /// cadence) instead of retrying the fsync-heavy work every tick.
    fn maybe_checkpoint(&self, report: &mut TickReport) {
        if self.cfg.checkpoint_every_ms == 0 || !self.svc.is_persistent() {
            return;
        }
        let period = self.cfg.checkpoint_every_ms;
        let now = self.cfg.ingest.clock.now_ms();
        let due: Vec<usize> = {
            let stats = self.stats.lock();
            stats
                .cadences
                .iter()
                .enumerate()
                .filter(|(_, c)| now >= c.next_due_ms)
                .map(|(k, _)| k)
                .collect()
        };
        if due.is_empty() {
            return;
        }
        let units = self.svc.persist_units().max(1);
        let unit_label = |unit: usize, what: &str, e: &dyn std::fmt::Display| {
            if units == 1 {
                format!("{what} failed: {e}")
            } else {
                format!("{what} (part-{unit}) failed: {e}")
            }
        };
        let mut any_success = false;
        for unit in due {
            match self.svc.checkpoint_unit(unit) {
                Ok(path) => {
                    any_success = true;
                    {
                        let mut stats = self.stats.lock();
                        stats.checkpoints += 1;
                        stats.cadences[unit] = UnitCadence {
                            next_due_ms: now + period,
                            failures: 0,
                        };
                    }
                    report.checkpointed = Some(path);
                    report.checkpointed_units.push(unit);
                    if self.cfg.compact_journal {
                        match self.svc.compact_unit(unit) {
                            Ok(compaction) => {
                                if compaction.dropped_records > 0 {
                                    self.stats.lock().last_compaction = Some(compaction);
                                }
                                report.compaction = Some(compaction);
                            }
                            Err(e) => {
                                report
                                    .errors
                                    .push(unit_label(unit, "journal compaction", &e))
                            }
                        }
                    }
                }
                Err(e) => {
                    {
                        let mut stats = self.stats.lock();
                        let cadence = &mut stats.cadences[unit];
                        cadence.failures += 1;
                        let backoff = period.saturating_mul(1u64 << (cadence.failures - 1).min(3));
                        cadence.next_due_ms = now + backoff;
                    }
                    report
                        .errors
                        .push(unit_label(unit, "periodic checkpoint", &e));
                }
            }
        }
        if any_success && self.cfg.compact_journal {
            if let Some(result) = self.svc.compact_root() {
                match result {
                    Ok(compaction) => {
                        if compaction.dropped_records > 0 {
                            self.stats.lock().last_root_compaction = Some(compaction);
                        }
                        report.root_compaction = Some(compaction);
                    }
                    Err(e) => report
                        .errors
                        .push(format!("root-log compaction failed: {e}")),
                }
            }
        }
    }

    /// Sleep `total_ms` on the daemon's clock in
    /// [`DaemonConfig::stop_poll_ms`] slices, returning early once
    /// [`Daemon::stop`] is observed — so stop/shutdown latency is bounded
    /// by the poll step, not a whole tick.
    fn sleep_interruptible(&self, total_ms: u64) {
        let step = self.cfg.stop_poll_ms.max(1);
        let clock = &self.cfg.ingest.clock;
        let mut slept = 0u64;
        while slept < total_ms {
            if self.stopped.load(Ordering::SeqCst) {
                return;
            }
            let chunk = step.min(total_ms - slept);
            clock.sleep_ms(chunk);
            slept += chunk;
        }
    }

    /// Run `n` ticks, sleeping [`DaemonConfig::tick_ms`] on the daemon's
    /// clock after each — the deterministic test harness's entry point (a
    /// `VirtualClock` makes the sleeps instant but still advances the
    /// checkpoint cadence). Stops early if [`Daemon::stop`] was called.
    pub fn run_ticks(&self, n: u64) -> Vec<TickReport> {
        let mut reports = Vec::new();
        for _ in 0..n {
            if self.stopped.load(Ordering::SeqCst) {
                break;
            }
            reports.push(self.tick());
            self.sleep_interruptible(self.cfg.tick_ms);
        }
        reports
    }

    /// Run until [`Daemon::stop`] (or [`Daemon::shutdown`]) — the
    /// production loop for a `WallClock` daemon on a background thread.
    pub fn run(&self) {
        while !self.stopped.load(Ordering::SeqCst) {
            self.tick();
            if self.stopped.load(Ordering::SeqCst) {
                break;
            }
            self.sleep_interruptible(self.cfg.tick_ms);
        }
    }

    /// Spawn [`Daemon::run`] on a background thread.
    pub fn spawn(self: &Arc<Daemon<T>>) -> std::thread::JoinHandle<()> {
        let daemon = Arc::clone(self);
        std::thread::spawn(move || daemon.run())
    }

    /// Ask the run loop to exit after its current tick (does not drain;
    /// use [`Daemon::shutdown`] for the graceful path). A loop parked in
    /// its between-tick sleep wakes within
    /// [`DaemonConfig::stop_poll_ms`].
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: close admission (subsequent [`Daemon::submit`]
    /// calls are rejected with [`RejectReason::Draining`]), stop the run
    /// loop, ingest everything still queued in one final run, write a
    /// final checkpoint of every persist unit (+ compaction and root-log
    /// compaction when enabled), and report what happened. Registered
    /// feeds are left wherever they are — a drain flushes accepted work,
    /// it does not chase open-ended streams.
    pub fn shutdown(&self) -> DrainReport {
        self.draining.store(true, Ordering::SeqCst);
        self.stopped.store(true, Ordering::SeqCst);
        let mut report = DrainReport::default();

        let batches: Vec<Vec<RawItem>> = {
            let mut queue = self.queue.lock();
            queue.items = 0;
            queue.batches.drain(..).collect()
        };
        report.drained_batches = batches.len();
        report.drained_items = batches.iter().map(Vec::len).sum();
        if !batches.is_empty() {
            let sources: Vec<Box<dyn Source + '_>> = batches
                .into_iter()
                .map(|batch| {
                    Box::new(ItemSource::new("daemon-drain", batch)) as Box<dyn Source + '_>
                })
                .collect();
            let ingest = self.svc.ingest_append(sources, &self.cfg.ingest);
            report.fed = ingest.fed;
            report.quarantined = ingest.quarantined.len();
        }

        if self.svc.is_persistent() {
            for unit in 0..self.svc.persist_units() {
                match self.svc.checkpoint_unit(unit) {
                    Ok(path) => {
                        self.stats.lock().checkpoints += 1;
                        report.checkpoint = Some(path);
                    }
                    Err(e) => report.errors.push(format!("final checkpoint failed: {e}")),
                }
                if self.cfg.compact_journal {
                    match self.svc.compact_unit(unit) {
                        Ok(compaction) => report.compaction = Some(compaction),
                        Err(e) => report.errors.push(format!("final compaction failed: {e}")),
                    }
                }
            }
            if self.cfg.compact_journal {
                if let Some(result) = self.svc.compact_root() {
                    match result {
                        Ok(compaction) => report.root_compaction = Some(compaction),
                        Err(e) => report
                            .errors
                            .push(format!("final root-log compaction failed: {e}")),
                    }
                }
            }
        }

        let journal = self.svc.journal_stats();
        report.final_seq = journal.map(|j| j.last_seq).unwrap_or(0);
        report.journal = journal;
        report.final_epoch = self.svc.epoch();
        let mut stats = self.stats.lock();
        report.ticks = stats.ticks;
        report.shed_items_total = stats.shed_items;
        for e in &report.errors {
            stats.errors.push(e.clone());
        }
        report
    }

    /// The watchdog view: daemon queue/admission/feed state folded with
    /// the wrapped target's health report (which carries breaker,
    /// quarantine, recovery-warning, and journal state).
    pub fn health(&self) -> DaemonHealth<T::Health> {
        let service = self.svc.health();
        let queue_depth = self.queue.lock().items;
        let feeds = self
            .feeds
            .lock()
            .iter()
            .map(|slot| FeedStatus {
                name: slot.source.name().to_string(),
                done: slot.done,
                fed_total: slot.fed_total,
                quarantined_total: slot.quarantined_total,
            })
            .collect();
        let stats = self.stats.lock();
        DaemonHealth {
            ticks: stats.ticks,
            queue_depth,
            queue_capacity: self.cfg.queue_capacity,
            submitted_items_total: stats.submitted_items,
            shed_items_total: stats.shed_items,
            rejected_batches_total: stats.rejected_batches,
            draining: self.draining.load(Ordering::SeqCst),
            checkpoints: stats.checkpoints,
            last_compaction: stats.last_compaction,
            last_root_compaction: stats.last_root_compaction,
            items_per_tick: stats.items_per_tick,
            ewma_tick_ms: stats.ewma_tick_ms,
            feeds,
            errors: stats.errors.to_vec(),
            errors_dropped: stats.errors.dropped(),
            service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Clock, VirtualClock};
    use conference::dataset::{generate, DatasetConfig};
    use social::post::Forum;

    fn small_service(workers: usize) -> Arc<UsaasService> {
        let dataset = generate(&DatasetConfig::small(40, 7));
        Arc::new(UsaasService::build(
            dataset,
            Forum { posts: Vec::new() },
            workers,
        ))
    }

    fn session_items(n: usize) -> Vec<RawItem> {
        generate(&DatasetConfig::small(n.max(4), 11))
            .sessions
            .into_iter()
            .take(n)
            .map(|s| RawItem::Session(Box::new(s)))
            .collect()
    }

    fn virtual_config(workers: usize, clock: Arc<VirtualClock>) -> DaemonConfig {
        let mut cfg = DaemonConfig::with_workers(workers);
        cfg.ingest = cfg.ingest.with_clock(clock);
        cfg.checkpoint_every_ms = 0;
        cfg
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, clock);
        cfg.queue_capacity = 10;
        cfg.admission = AdmissionPolicy::Reject;
        let daemon = Daemon::new(small_service(2), cfg);
        assert!(matches!(
            daemon.submit(session_items(8)),
            SubmitOutcome::Queued { depth: 8 }
        ));
        assert_eq!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Rejected {
                reason: RejectReason::QueueFull
            }
        );
        let health = daemon.health();
        assert_eq!(health.queue_depth, 8);
        assert_eq!(health.rejected_batches_total, 1);
        // The next tick drains the queue and commits.
        let report = daemon.tick();
        assert_eq!(report.queued_items, 8);
        assert!(report.committed);
        assert_eq!(daemon.health().queue_depth, 0);
    }

    #[test]
    fn shed_policy_drops_and_counts() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, clock);
        cfg.queue_capacity = 6;
        cfg.admission = AdmissionPolicy::Shed;
        let daemon = Daemon::new(small_service(2), cfg);
        assert!(matches!(
            daemon.submit(session_items(6)),
            SubmitOutcome::Queued { .. }
        ));
        assert_eq!(
            daemon.submit(session_items(5)),
            SubmitOutcome::Shed { items: 5 }
        );
        let health = daemon.health();
        assert_eq!(health.shed_items_total, 5);
        assert_eq!(health.queue_depth, 6, "the queued batch is untouched");
    }

    #[test]
    fn block_policy_times_out_deterministically_on_the_virtual_clock() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, Arc::clone(&clock));
        cfg.queue_capacity = 4;
        cfg.admission = AdmissionPolicy::Block;
        cfg.block_timeout_ms = 100;
        cfg.block_poll_ms = 10;
        let daemon = Daemon::new(small_service(2), cfg);
        assert!(matches!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Queued { .. }
        ));
        let before = clock.now_ms();
        assert_eq!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Rejected {
                reason: RejectReason::BlockTimeout
            }
        );
        assert_eq!(
            clock.now_ms() - before,
            100,
            "blocked exactly the configured timeout on the virtual clock"
        );
    }

    #[test]
    fn block_timeout_shorter_than_poll_step_is_exact() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, Arc::clone(&clock));
        cfg.queue_capacity = 4;
        cfg.admission = AdmissionPolicy::Block;
        cfg.block_timeout_ms = 5;
        cfg.block_poll_ms = 10;
        let daemon = Daemon::new(small_service(2), cfg);
        assert!(matches!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Queued { .. }
        ));
        let before = clock.now_ms();
        assert_eq!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Rejected {
                reason: RejectReason::BlockTimeout
            }
        );
        assert_eq!(
            clock.now_ms() - before,
            5,
            "the final poll is clamped to the remaining budget"
        );
    }

    #[test]
    fn draining_daemon_rejects_submissions() {
        let clock = Arc::new(VirtualClock::new());
        let daemon = Daemon::new(small_service(2), virtual_config(2, clock));
        assert!(matches!(
            daemon.submit(session_items(4)),
            SubmitOutcome::Queued { .. }
        ));
        let drain = daemon.shutdown();
        assert_eq!(drain.drained_items, 4);
        assert_eq!(drain.fed, 4);
        assert_eq!(
            daemon.submit(session_items(1)),
            SubmitOutcome::Rejected {
                reason: RejectReason::Draining
            }
        );
        assert!(daemon.health().draining);
    }

    #[test]
    fn take_source_windows_a_long_stream() {
        let mut inner = ItemSource::new("feed", session_items(10));
        for expected in [4usize, 4, 2, 0] {
            let mut window = TakeSource::new(&mut inner, 4);
            let mut got = 0;
            while let Some(item) = window.next_item() {
                assert!(item.is_ok());
                got += 1;
            }
            assert_eq!(got, expected);
        }
    }

    /// A source whose cumulative `dropped()` counter resets mid-stream,
    /// like a feed that reconnects and re-registers its internals.
    struct ResettingSource {
        drops: usize,
    }

    impl Source for ResettingSource {
        fn name(&self) -> &str {
            "resetting"
        }

        fn next_item(&mut self) -> Option<Result<RawItem, SourceError>> {
            None
        }

        fn dropped(&self) -> usize {
            self.drops
        }
    }

    #[test]
    fn take_source_dropped_survives_a_counter_reset() {
        let mut inner = ResettingSource { drops: 7 };
        let window_baseline = {
            let window = TakeSource::new(&mut inner, 4);
            assert_eq!(window.dropped(), 0, "no new drops since the window opened");
            window.base_dropped
        };
        assert_eq!(window_baseline, 7);
        // The feed reconnects and its counter resets below the baseline.
        inner.drops = 2;
        let window = TakeSource::new(&mut inner, 4);
        assert_eq!(window.base_dropped, 2);
        inner.drops = 0; // resets again while a window is... simulated via a fresh window
        let stale_window = TakeSource {
            inner: &mut inner,
            left: 4,
            base_dropped: 5,
        };
        assert_eq!(
            stale_window.dropped(),
            0,
            "a reset below the baseline reads as zero, not an underflow"
        );
    }

    #[test]
    fn oversized_batch_is_rejected_not_blocked() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, Arc::clone(&clock));
        cfg.queue_capacity = 4;
        cfg.admission = AdmissionPolicy::Block;
        let daemon = Daemon::new(small_service(2), cfg);
        let before = clock.now_ms();
        assert_eq!(
            daemon.submit(session_items(5)),
            SubmitOutcome::Rejected {
                reason: RejectReason::QueueFull
            }
        );
        assert_eq!(clock.now_ms(), before, "no blocking on an impossible fit");
    }

    #[test]
    fn ewma_tracks_and_smooths() {
        assert_eq!(ewma_ms(20, None, 400), 400, "first sample seeds the EWMA");
        assert_eq!(ewma_ms(20, Some(400), 400), 400, "steady state is stable");
        // 20% of 900 + 80% of 400 = 180 + 320.
        assert_eq!(ewma_ms(20, Some(400), 900), 500);
        assert_eq!(ewma_ms(100, Some(400), 900), 900, "alpha=100 tracks");
        assert_eq!(ewma_ms(0, Some(400), 900), 400, "alpha=0 freezes");
        assert_eq!(
            ewma_ms(50, Some(u64::MAX), u64::MAX),
            u64::MAX,
            "widened arithmetic cannot overflow"
        );
    }

    #[test]
    fn adaptive_budget_steers_toward_target() {
        let cfg = AdaptiveTick {
            target_ms: 500,
            alpha_pct: 20,
            min_items: 64,
            max_items: 16_384,
        };
        assert_eq!(
            adaptive_budget(&cfg, 1_000, 1_024),
            512,
            "a tick twice as slow as target halves the window"
        );
        assert_eq!(
            adaptive_budget(&cfg, 250, 1_024),
            2_048,
            "a tick twice as fast doubles it"
        );
        assert_eq!(adaptive_budget(&cfg, 0, 1_024), 2_048, "idle ticks ramp up");
        assert_eq!(adaptive_budget(&cfg, 500_000, 1_024), 64, "floor clamps");
        assert_eq!(adaptive_budget(&cfg, 1, 16_000), 16_384, "ceiling clamps");
        let degenerate = AdaptiveTick {
            min_items: 0,
            max_items: 0,
            ..cfg
        };
        assert_eq!(
            adaptive_budget(&degenerate, 500, 10),
            1,
            "a zero floor still leaves one item per tick"
        );
    }

    #[test]
    fn adaptive_daemon_ramps_on_instant_ticks() {
        let clock = Arc::new(VirtualClock::new());
        let mut cfg = virtual_config(2, clock);
        cfg.max_items_per_tick = 4;
        cfg.adaptive = Some(AdaptiveTick {
            target_ms: 100,
            alpha_pct: 50,
            min_items: 2,
            max_items: 16,
        });
        let daemon = Daemon::new(small_service(2), cfg);
        daemon.register_feed(Box::new(ItemSource::new("feed", session_items(40))));
        assert_eq!(daemon.health().items_per_tick, 4);
        daemon.tick();
        // VirtualClock ingest takes zero clock time, so every tick reads
        // as instant and the budget doubles until the ceiling.
        assert_eq!(daemon.health().items_per_tick, 8);
        daemon.tick();
        assert_eq!(daemon.health().items_per_tick, 16);
        daemon.tick();
        assert_eq!(daemon.health().items_per_tick, 16, "clamped at max_items");
        assert_eq!(daemon.health().ewma_tick_ms, Some(0));
    }
}
