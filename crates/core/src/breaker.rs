//! Per-source circuit breaker and retry policy.
//!
//! Ingestion treats every source as unreliable. Transient failures are
//! retried with exponential backoff plus deterministic jitter; a run of
//! consecutive failures trips a closed → open → half-open circuit breaker
//! so a hard-down source stops being hammered and the rest of the pipeline
//! keeps flowing. All timing runs against the [`crate::fault::Clock`]
//! abstraction, so the full state machine is testable on a virtual clock
//! with zero wall-time sleeps.

use crate::fault::{mix, u01};

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Tripped: calls are refused until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probe calls are allowed through; a success quota
    /// re-closes the breaker, any failure re-opens it.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: usize,
    /// How long the breaker stays open before allowing probes, in clock
    /// milliseconds.
    pub cooldown_ms: u64,
    /// Consecutive probe successes (while half-open) that re-close it.
    pub half_open_successes: usize,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 30_000,
            half_open_successes: 1,
        }
    }
}

/// One source's circuit breaker. Time is always supplied by the caller
/// (`now` in clock milliseconds) — the breaker itself never reads a clock,
/// which keeps it trivially deterministic.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    consecutive_failures: usize,
    half_open_successes: usize,
    /// Set while the breaker is open (or half-open, which is "open long
    /// enough ago").
    opened_at_ms: Option<u64>,
    trips: usize,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            consecutive_failures: 0,
            half_open_successes: 0,
            opened_at_ms: None,
            trips: 0,
        }
    }

    /// Current state at time `now`.
    pub fn state(&self, now_ms: u64) -> BreakerState {
        match self.opened_at_ms {
            None => BreakerState::Closed,
            Some(at) if now_ms >= at.saturating_add(self.cfg.cooldown_ms) => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Milliseconds until the open breaker starts admitting probes (zero
    /// when closed or already half-open).
    pub fn remaining_open_ms(&self, now_ms: u64) -> u64 {
        match self.opened_at_ms {
            None => 0,
            Some(at) => at
                .saturating_add(self.cfg.cooldown_ms)
                .saturating_sub(now_ms),
        }
    }

    /// Record a successful call at time `now`.
    pub fn record_success(&mut self, now_ms: u64) {
        match self.state(now_ms) {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.cfg.half_open_successes {
                    self.opened_at_ms = None;
                    self.half_open_successes = 0;
                    self.consecutive_failures = 0;
                }
            }
            // A success while open (caller raced the cooldown) is ignored:
            // the breaker only re-closes through the half-open probe path.
            BreakerState::Open => {}
        }
    }

    /// Record a failed call at time `now`.
    pub fn record_failure(&mut self, now_ms: u64) {
        match self.state(now_ms) {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now_ms);
                }
            }
            // A failed probe re-opens immediately — one bad call proves the
            // source is still down.
            BreakerState::HalfOpen => self.trip(now_ms),
            // Failures while open just refresh the cooldown window.
            BreakerState::Open => self.opened_at_ms = Some(now_ms),
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.opened_at_ms = Some(now_ms);
        self.consecutive_failures = 0;
        self.half_open_successes = 0;
        self.trips += 1;
    }

    /// How many times the breaker has tripped closed → open (or re-opened
    /// from half-open) over its lifetime.
    pub fn trips(&self) -> usize {
        self.trips
    }
}

/// Retry policy: bounded attempts with exponential backoff and
/// deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt before the item is
    /// dead-lettered.
    pub max_retries: u32,
    /// Backoff before retry 1, in clock milliseconds; doubles per retry.
    pub base_ms: u64,
    /// Backoff ceiling.
    pub max_ms: u64,
    /// Jitter fraction in `[0, 1]`: retry `n` sleeps
    /// `backoff * (1 + jitter * u)` with `u` drawn from `hash(seed, salt,
    /// n)` — deterministic, but decorrelated across items and sources.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_ms: 100,
            max_ms: 5_000,
            jitter: 0.2,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based) of the work unit identified
    /// by `salt`. Pure in `(self, attempt, salt)`.
    pub fn backoff_ms(&self, attempt: u32, salt: u64) -> u64 {
        let attempt = attempt.max(1);
        let doublings = (attempt - 1).min(20);
        let exp = self
            .base_ms
            .saturating_mul(1u64 << doublings)
            .min(self.max_ms)
            .max(1);
        let jitter_draw = u01(mix(self.seed, salt, u64::from(attempt)));
        let extra = (exp as f64 * self.jitter.clamp(0.0, 1.0) * jitter_draw) as u64;
        exp.saturating_add(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            half_open_successes: 2,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(1), BreakerState::Closed);
        b.record_failure(2);
        assert_eq!(b.state(2), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.remaining_open_ms(2), 1_000);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_failure(0);
        b.record_failure(1);
        b.record_success(2);
        b.record_failure(3);
        b.record_failure(4);
        assert_eq!(b.state(4), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn cooldown_admits_probes_and_successes_reclose() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.state(10), BreakerState::Open);
        assert_eq!(b.state(1_001), BreakerState::Open, "tripped at t=2");
        assert_eq!(b.state(1_002), BreakerState::HalfOpen);
        b.record_success(1_002);
        assert_eq!(b.state(1_002), BreakerState::HalfOpen, "quota is 2");
        b.record_success(1_003);
        assert_eq!(b.state(1_003), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.state(1_500), BreakerState::HalfOpen);
        b.record_failure(1_500);
        assert_eq!(b.state(1_500), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert_eq!(b.remaining_open_ms(1_500), 1_000, "cooldown restarts");
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let p = RetryPolicy {
            max_retries: 10,
            base_ms: 100,
            max_ms: 1_000,
            jitter: 0.0,
            seed: 1,
        };
        assert_eq!(p.backoff_ms(1, 0), 100);
        assert_eq!(p.backoff_ms(2, 0), 200);
        assert_eq!(p.backoff_ms(3, 0), 400);
        assert_eq!(p.backoff_ms(9, 0), 1_000, "capped at max_ms");
        let jittered = RetryPolicy { jitter: 0.5, ..p };
        assert_eq!(jittered.backoff_ms(2, 7), jittered.backoff_ms(2, 7));
        let lo = jittered.backoff_ms(2, 7);
        assert!((200..=300).contains(&lo), "jitter stays in [0, 50%]: {lo}");
    }
}
