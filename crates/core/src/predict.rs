//! The §5 MOS predictor.
//!
//! *"We are currently also using AI/ML techniques to predict MOS scores from
//! user engagement and network conditions for MS Teams (omitted for
//! brevity)."* — we build it. A ridge-regularised linear model over
//! engagement (Presence / Cam On / Mic On) and network means (latency, loss,
//! jitter, bandwidth) is trained on the rated sliver and evaluated against
//! two baselines: predict-the-mean, and a network-only model — quantifying
//! exactly the paper's claim that engagement carries signal beyond the raw
//! network metrics.

use crate::frame::SessionFrame;
use analytics::kernels;
use analytics::regression::{mae, rmse, LinearModel};
use analytics::AnalyticsError;
use conference::records::{CallDataset, EngagementMetric, NetworkMetric, SessionRecord};
use serde::{Deserialize, Serialize};

/// Feature sets the predictor can use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSet {
    /// Network means only.
    NetworkOnly,
    /// Engagement metrics only.
    EngagementOnly,
    /// Both (the paper's proposal).
    Full,
}

pub(crate) fn features(session: &SessionRecord, set: FeatureSet) -> Vec<f64> {
    let mut out = Vec::with_capacity(7);
    if matches!(set, FeatureSet::EngagementOnly | FeatureSet::Full) {
        for m in EngagementMetric::ALL {
            out.push(session.engagement(m) / 100.0);
        }
    }
    if matches!(set, FeatureSet::NetworkOnly | FeatureSet::Full) {
        // Scale features to comparable magnitudes.
        out.push(session.network_mean(NetworkMetric::LatencyMs) / 100.0);
        out.push(session.network_mean(NetworkMetric::LossPct));
        out.push(session.network_mean(NetworkMetric::JitterMs) / 10.0);
        out.push(session.network_mean(NetworkMetric::BandwidthMbps));
    }
    out
}

/// The rated sliver's feature columns, gathered and scaled column-wise:
/// one [`kernels::gather`] per feature column (a pure bit move), then one
/// streaming division over the gathered sliver where [`features`] scales.
/// Same values, same per-element operations, same order as the row-wise
/// record walk, so frame-trained models are bit-identical to record-trained
/// ones.
fn feature_columns(frame: &SessionFrame, rated: &[usize], set: FeatureSet) -> Vec<Vec<f64>> {
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(7);
    let mut gather_scaled = |col: &[f64], scale: Option<f64>| {
        let mut out = kernels::gather(col, rated);
        if let Some(d) = scale {
            for v in &mut out {
                *v /= d;
            }
        }
        cols.push(out);
    };
    if matches!(set, FeatureSet::EngagementOnly | FeatureSet::Full) {
        for m in EngagementMetric::ALL {
            gather_scaled(frame.engagement(m), Some(100.0));
        }
    }
    if matches!(set, FeatureSet::NetworkOnly | FeatureSet::Full) {
        // Scale features to comparable magnitudes (matching [`features`]).
        gather_scaled(frame.net_mean(NetworkMetric::LatencyMs), Some(100.0));
        gather_scaled(frame.net_mean(NetworkMetric::LossPct), None);
        gather_scaled(frame.net_mean(NetworkMetric::JitterMs), Some(10.0));
        gather_scaled(frame.net_mean(NetworkMetric::BandwidthMbps), None);
    }
    cols
}

/// Evaluation of one trained predictor on held-out data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Feature set used.
    pub feature_set: FeatureSet,
    /// Training rows.
    pub train_rows: usize,
    /// Test rows.
    pub test_rows: usize,
    /// Mean absolute error (stars).
    pub mae: f64,
    /// Root-mean-square error (stars).
    pub rmse: f64,
    /// Pearson correlation between prediction and truth.
    pub correlation: f64,
    /// MAE of the predict-the-training-mean baseline.
    pub baseline_mae: f64,
}

impl Evaluation {
    /// Skill over the mean baseline: `1 - mae/baseline_mae` (positive =
    /// better than baseline).
    pub fn skill(&self) -> f64 {
        if self.baseline_mae == 0.0 {
            0.0
        } else {
            1.0 - self.mae / self.baseline_mae
        }
    }
}

/// A trained MOS predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosPredictor {
    /// Feature set the model was trained with.
    pub feature_set: FeatureSet,
    /// Underlying linear model.
    pub model: LinearModel,
}

impl MosPredictor {
    /// Predict the MOS of one (possibly unrated) session.
    pub fn predict(&self, session: &SessionRecord) -> Result<f64, AnalyticsError> {
        Ok(self
            .model
            .predict(&features(session, self.feature_set))?
            .clamp(1.0, 5.0))
    }
}

/// Train on a deterministic split (every `holdout`-th rated session is held
/// out) and evaluate. `holdout = 4` → 75 % train / 25 % test.
pub fn train_and_evaluate(
    dataset: &CallDataset,
    set: FeatureSet,
    holdout: usize,
) -> Result<(MosPredictor, Evaluation), AnalyticsError> {
    let holdout = holdout.max(2);
    let rated: Vec<&SessionRecord> = dataset.rated_sessions().collect();
    if rated.len() < 2 * holdout {
        return Err(AnalyticsError::Empty);
    }
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    let mut test: Vec<&SessionRecord> = Vec::new();
    for (i, s) in rated.iter().enumerate() {
        if i % holdout == 0 {
            test.push(s);
        } else {
            train_x.push(features(s, set));
            train_y.push(f64::from(s.rating.expect("rated")));
        }
    }
    let model = LinearModel::fit(&train_x, &train_y, 1e-4)?;
    let predictor = MosPredictor {
        feature_set: set,
        model,
    };

    let truth: Vec<f64> = test
        .iter()
        .map(|s| f64::from(s.rating.expect("rated")))
        .collect();
    let preds: Vec<f64> = test
        .iter()
        .map(|s| predictor.predict(s))
        .collect::<Result<_, _>>()?;
    let train_mean = train_y.iter().sum::<f64>() / train_y.len() as f64;
    let baseline: Vec<f64> = vec![train_mean; truth.len()];
    let eval = Evaluation {
        feature_set: set,
        train_rows: train_y.len(),
        test_rows: truth.len(),
        mae: mae(&preds, &truth)?,
        rmse: rmse(&preds, &truth)?,
        correlation: analytics::correlation::pearson(&preds, &truth)?,
        baseline_mae: mae(&baseline, &truth)?,
    };
    Ok((predictor, eval))
}

/// [`train_and_evaluate`] over frame columns: the same deterministic
/// holdout split over the rated sliver, features gathered from dense
/// columns. Model weights and every evaluation statistic are bit-identical
/// to the per-record reference (asserted by the parity suite).
pub fn train_and_evaluate_frame(
    frame: &SessionFrame,
    set: FeatureSet,
    holdout: usize,
) -> Result<(MosPredictor, Evaluation), AnalyticsError> {
    train_and_evaluate_on(frame, frame.rated_indices(), set, holdout)
}

/// [`train_and_evaluate_frame`] over a caller-supplied rated-index list (in
/// ascending session order — the order `SessionFrame::rated_indices`
/// produces). The incremental MOS view carries this list across epochs:
/// appends extend it at the end, which keeps every existing row's
/// train/test assignment (`k % holdout` over the rated enumeration) stable,
/// so the result is bit-identical to a cold rebuild.
pub(crate) fn train_and_evaluate_on(
    frame: &SessionFrame,
    rated: &[usize],
    set: FeatureSet,
    holdout: usize,
) -> Result<(MosPredictor, Evaluation), AnalyticsError> {
    let (feats, ratings) = rated_features(frame, rated, set);
    train_and_evaluate_vals(&feats, &ratings, set, holdout)
}

/// Gather the rated rows' feature vectors and ratings from frame columns, in
/// rated-row order — the incremental predictor view carries these values
/// across epochs so its finishing pass never touches the frame.
pub(crate) fn rated_features(
    frame: &SessionFrame,
    rated: &[usize],
    set: FeatureSet,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let cols = feature_columns(frame, rated, set);
    let feats = (0..rated.len())
        .map(|k| cols.iter().map(|c| c[k]).collect())
        .collect();
    let ratings_col = frame.rating();
    let ratings = rated
        .iter()
        .map(|&i| f64::from(ratings_col[i].expect("rated")))
        .collect();
    (feats, ratings)
}

/// [`train_and_evaluate_on`] over pre-gathered rated-row values. The
/// deterministic split runs over positions in the rated enumeration, so
/// appending new rated rows at the end keeps every existing row's train/test
/// assignment stable and the result bit-identical to a cold rebuild.
pub(crate) fn train_and_evaluate_vals(
    feats: &[Vec<f64>],
    ratings: &[f64],
    set: FeatureSet,
    holdout: usize,
) -> Result<(MosPredictor, Evaluation), AnalyticsError> {
    let holdout = holdout.max(2);
    if feats.len() < 2 * holdout {
        return Err(AnalyticsError::Empty);
    }
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    let mut test: Vec<usize> = Vec::new();
    for (k, f) in feats.iter().enumerate() {
        if k % holdout == 0 {
            test.push(k);
        } else {
            train_x.push(f.clone());
            train_y.push(ratings[k]);
        }
    }
    let model = LinearModel::fit(&train_x, &train_y, 1e-4)?;
    let predictor = MosPredictor {
        feature_set: set,
        model,
    };

    let truth: Vec<f64> = test.iter().map(|&k| ratings[k]).collect();
    let preds: Vec<f64> = test
        .iter()
        .map(|&k| {
            predictor
                .model
                .predict(&feats[k])
                .map(|p| p.clamp(1.0, 5.0))
        })
        .collect::<Result<_, _>>()?;
    let train_mean = train_y.iter().sum::<f64>() / train_y.len() as f64;
    let baseline: Vec<f64> = vec![train_mean; truth.len()];
    let eval = Evaluation {
        feature_set: set,
        train_rows: train_y.len(),
        test_rows: truth.len(),
        mae: mae(&preds, &truth)?,
        rmse: rmse(&preds, &truth)?,
        correlation: analytics::correlation::pearson(&preds, &truth)?,
        baseline_mae: mae(&baseline, &truth)?,
    };
    Ok((predictor, eval))
}

/// §3.3's punchline as a service: predict MOS for *every* session (rated or
/// not) — "user engagement could be considered as early and more readily
/// available indication of call quality".
pub fn predict_all(
    dataset: &CallDataset,
    predictor: &MosPredictor,
) -> Result<Vec<f64>, AnalyticsError> {
    dataset
        .sessions
        .iter()
        .map(|s| predictor.predict(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conference::dataset::{generate, DatasetConfig};
    use conference::CallSimulator;
    use std::sync::OnceLock;

    /// A dataset with an elevated feedback rate so the predictor has data.
    fn dataset() -> &'static CallDataset {
        static DS: OnceLock<CallDataset> = OnceLock::new();
        DS.get_or_init(|| {
            let mut sim = CallSimulator::default();
            sim.feedback.rate = 0.2;
            conference::dataset::generate_with(&DatasetConfig::small(1500, 9), &sim)
        })
    }

    #[test]
    fn full_model_beats_mean_baseline() {
        let (_, eval) = train_and_evaluate(dataset(), FeatureSet::Full, 4).unwrap();
        assert!(
            eval.skill() > 0.05,
            "skill {} (mae {} vs {})",
            eval.skill(),
            eval.mae,
            eval.baseline_mae
        );
        assert!(eval.correlation > 0.3, "corr {}", eval.correlation);
        assert!(eval.test_rows > 100);
    }

    #[test]
    fn engagement_adds_signal_over_network_only() {
        let (_, net) = train_and_evaluate(dataset(), FeatureSet::NetworkOnly, 4).unwrap();
        let (_, full) = train_and_evaluate(dataset(), FeatureSet::Full, 4).unwrap();
        assert!(
            full.mae <= net.mae + 0.01,
            "full-model MAE {} should not lose to network-only {}",
            full.mae,
            net.mae
        );
        let (_, eng) = train_and_evaluate(dataset(), FeatureSet::EngagementOnly, 4).unwrap();
        assert!(
            eng.skill() > 0.0,
            "engagement alone must beat the mean baseline"
        );
    }

    #[test]
    fn predictions_in_star_range() {
        let (model, _) = train_and_evaluate(dataset(), FeatureSet::Full, 4).unwrap();
        let preds = predict_all(dataset(), &model).unwrap();
        assert_eq!(preds.len(), dataset().len());
        assert!(preds.iter().all(|p| (1.0..=5.0).contains(p)));
    }

    #[test]
    fn too_few_ratings_errors() {
        let ds = generate(&DatasetConfig::small(5, 1));
        assert!(train_and_evaluate(&ds, FeatureSet::Full, 4).is_err());
    }

    #[test]
    fn evaluation_skill_math() {
        let e = Evaluation {
            feature_set: FeatureSet::Full,
            train_rows: 10,
            test_rows: 10,
            mae: 0.5,
            rmse: 0.6,
            correlation: 0.9,
            baseline_mae: 1.0,
        };
        assert!((e.skill() - 0.5).abs() < 1e-12);
    }
}
