//! The signal store: a thread-safe, time-indexed repository.
//!
//! The store is **sharded**: days are hashed onto `N` lock-striped shards
//! (each a `parking_lot::RwLock<BTreeMap<Date, Vec<Signal>>>`), so
//! concurrent ingestion workers writing different days contend on
//! different locks instead of serialising on one. A day lives in exactly
//! one shard, which keeps per-day queries single-lock and lets window
//! scans merge the shards by date. Per-kind totals are maintained in
//! `AtomicUsize` counters at insert time, making [`SignalStore::len`] and
//! [`SignalStore::count_kind`] O(1) instead of O(signals).
//!
//! [`SignalStore::with_shards(1)`](SignalStore::with_shards) degenerates to
//! the old single-lock store — the `store_contention` bench uses it as the
//! baseline the sharded layout is measured against.

use crate::signals::{Signal, SignalKind};
use analytics::time::Date;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default shard count: enough stripes that 8–16 ingestion workers rarely
/// collide, small enough that window scans stay cheap.
const DEFAULT_SHARDS: usize = 16;

type DayMap = BTreeMap<Date, Vec<Signal>>;

/// Thread-safe signal repository, lock-striped by day.
#[derive(Debug)]
pub struct SignalStore {
    shards: Vec<RwLock<DayMap>>,
    /// Per-[`SignalKind`] totals, indexed by [`kind_index`].
    counts: [AtomicUsize; 3],
}

/// Counter slot of a signal kind.
fn kind_index(kind: SignalKind) -> usize {
    match kind {
        SignalKind::Implicit => 0,
        SignalKind::Explicit => 1,
        SignalKind::Social => 2,
    }
}

impl Default for SignalStore {
    fn default() -> SignalStore {
        SignalStore::new()
    }
}

impl SignalStore {
    /// Empty store with the default shard count.
    pub fn new() -> SignalStore {
        SignalStore::with_shards(DEFAULT_SHARDS)
    }

    /// Empty store with an explicit shard count (≥ 1). `with_shards(1)` is
    /// the single-lock layout.
    pub fn with_shards(shards: usize) -> SignalStore {
        let shards = shards.max(1);
        SignalStore {
            shards: (0..shards).map(|_| RwLock::new(DayMap::new())).collect(),
            counts: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning `date`. Fibonacci hashing scatters consecutive days so
    /// a date-striding producer doesn't walk the shards in lockstep.
    fn shard_index(&self, date: Date) -> usize {
        let h = (date.days() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Insert one signal.
    pub fn insert(&self, signal: Signal) {
        self.counts[kind_index(signal.kind())].fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[self.shard_index(signal.date)];
        shard.write().entry(signal.date).or_default().push(signal);
    }

    /// Insert a batch, locking each involved shard once. Signals are routed
    /// to per-shard buckets first, so a batch spanning many days still takes
    /// one write-lock acquisition per shard rather than one per signal.
    pub fn insert_batch(&self, signals: Vec<Signal>) {
        if signals.is_empty() {
            return;
        }
        let mut buckets: Vec<Vec<Signal>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut kind_deltas = [0usize; 3];
        for s in signals {
            kind_deltas[kind_index(s.kind())] += 1;
            buckets[self.shard_index(s.date)].push(s);
        }
        for (kind, delta) in kind_deltas.into_iter().enumerate() {
            if delta > 0 {
                self.counts[kind].fetch_add(delta, Ordering::Relaxed);
            }
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut guard = shard.write();
            for s in bucket {
                guard.entry(s.date).or_default().push(s);
            }
        }
    }

    /// Total signals stored. O(1): sums the per-kind atomic counters.
    pub fn len(&self) -> usize {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of signals of one kind. O(1): reads the kind's counter.
    pub fn count_kind(&self, kind: SignalKind) -> usize {
        self.counts[kind_index(kind)].load(Ordering::Relaxed)
    }

    /// First and last day with data.
    pub fn date_range(&self) -> Option<(Date, Date)> {
        let mut range: Option<(Date, Date)> = None;
        for shard in &self.shards {
            let guard = shard.read();
            let (Some(&first), Some(&last)) = (guard.keys().next(), guard.keys().next_back())
            else {
                continue;
            };
            range = Some(match range {
                None => (first, last),
                Some((lo, hi)) => (lo.min(first), hi.max(last)),
            });
        }
        range
    }

    /// Clone out the signals of a day (empty if none). Touches exactly the
    /// one shard owning the day.
    pub fn on(&self, date: Date) -> Vec<Signal> {
        self.shards[self.shard_index(date)]
            .read()
            .get(&date)
            .cloned()
            .unwrap_or_default()
    }

    /// Visit every signal in `[from, to]` in date order without cloning.
    ///
    /// All shard read-guards are held for the duration, so the visit sees a
    /// consistent snapshot of completed inserts; per-day buckets are merged
    /// by date across shards (a day lives in exactly one shard, so a sort of
    /// per-day references is a true merge).
    pub fn for_each_between<F: FnMut(&Signal)>(&self, from: Date, to: Date, mut f: F) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut days: Vec<(&Date, &Vec<Signal>)> =
            guards.iter().flat_map(|g| g.range(from..=to)).collect();
        days.sort_by_key(|(date, _)| **date);
        for (_, signals) in days {
            for s in signals {
                f(s);
            }
        }
    }

    /// Visit every non-empty day in date order, handing each day's full
    /// signal bucket to `f` — the snapshot-export path of the persist
    /// layer. Like [`SignalStore::for_each_between`], all shard read
    /// guards are held for the duration so the export is a consistent
    /// point-in-time view of completed inserts.
    pub fn for_each_day<F: FnMut(Date, &[Signal])>(&self, mut f: F) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut days: Vec<(&Date, &Vec<Signal>)> = guards.iter().flat_map(|g| g.iter()).collect();
        days.sort_by_key(|(date, _)| **date);
        for (date, signals) in days {
            f(*date, signals);
        }
    }

    /// Number of distinct days holding at least one signal.
    pub fn day_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Clone out all signals in `[from, to]` — the **allocating
    /// convenience path**, which deep-copies every signal in the window
    /// (including boxed session records and post text).
    ///
    /// Use it when the caller needs owned signals that outlive the store
    /// borrow. Analyses that only *read* the window should use
    /// [`SignalStore::for_each_between`] instead, which visits the same
    /// signals in the same date order with zero copies — the in-crate
    /// consumers ([`crate::bias::extremity_bias_signals`],
    /// [`crate::digest::DigestBuilder::tested_gaps_signals`]) all go
    /// through the visitor.
    pub fn between(&self, from: Date, to: Date) -> Vec<Signal> {
        let mut out = Vec::new();
        self.for_each_between(from, to, |s| out.push(s.clone()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{ExplicitSignal, Payload, SocialSignal};

    fn d(day: u8) -> Date {
        Date::from_ymd(2022, 4, day).unwrap()
    }

    fn signal(day: u8, rating: u8) -> Signal {
        Signal {
            date: d(day),
            network: crate::signals::NetworkHint::Unknown,
            payload: Payload::Explicit(ExplicitSignal {
                rating,
                call_id: 1,
                user_id: 2,
            }),
        }
    }

    fn social(day: u8) -> Signal {
        Signal {
            date: d(day),
            network: crate::signals::NetworkHint::SatelliteLeo,
            payload: Payload::Social(SocialSignal {
                text: "down again".into(),
                upvotes: 1,
                comments: 0,
                country: "US",
                sentiment: sentiment::analyzer::SentimentAnalyzer::default().score("down again"),
                screenshot_text: None,
            }),
        }
    }

    #[test]
    fn insert_and_query() {
        let store = SignalStore::new();
        assert!(store.is_empty());
        store.insert(signal(10, 5));
        store.insert_batch(vec![signal(12, 4), signal(12, 3)]);
        store.insert_batch(vec![]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.on(d(12)).len(), 2);
        assert_eq!(store.on(d(11)).len(), 0);
        assert_eq!(store.between(d(10), d(12)).len(), 3);
        assert_eq!(store.between(d(11), d(11)).len(), 0);
        assert_eq!(store.date_range(), Some((d(10), d(12))));
        assert_eq!(store.count_kind(SignalKind::Explicit), 3);
        assert_eq!(store.count_kind(SignalKind::Social), 0);
    }

    #[test]
    fn kind_counters_track_mixed_batches() {
        let store = SignalStore::new();
        store.insert_batch(vec![signal(3, 4), social(3), social(9), signal(20, 2)]);
        store.insert(social(20));
        assert_eq!(store.count_kind(SignalKind::Explicit), 2);
        assert_eq!(store.count_kind(SignalKind::Social), 3);
        assert_eq!(store.count_kind(SignalKind::Implicit), 0);
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let store = std::sync::Arc::new(SignalStore::new());
        crossbeam::thread::scope(|scope| {
            for t in 0..8 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move |_| {
                    for i in 0..200 {
                        store.insert(signal((1 + (t + i) % 28) as u8, 3));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.len(), 1600);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        // Writers hammer per-shard locks while readers take cross-shard
        // snapshots; totals and window scans must stay coherent throughout.
        let store = std::sync::Arc::new(SignalStore::with_shards(8));
        crossbeam::thread::scope(|scope| {
            for t in 0..8u64 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move |_| {
                    for i in 0..100 {
                        let day = (1 + (t as usize + i) % 28) as u8;
                        if i % 4 == 0 {
                            store.insert_batch(vec![signal(day, 5), social(day)]);
                        } else {
                            store.insert(signal(day, 1));
                        }
                    }
                });
            }
            for _ in 0..4 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move |_| {
                    for _ in 0..50 {
                        // A snapshot is internally consistent: the window
                        // scan never observes more than the counters admit
                        // once writers are done, and intermediate reads
                        // never panic or tear.
                        let seen = store.between(d(1), d(28)).len();
                        assert!(seen <= 8 * 125);
                        let _ = store.date_range();
                        let _ = store.on(d(7));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.len(), 8 * 125);
        assert_eq!(store.count_kind(SignalKind::Social), 8 * 25);
        assert_eq!(store.between(d(1), d(28)).len(), 8 * 125);
    }

    #[test]
    fn day_export_covers_every_signal_in_order() {
        let store = SignalStore::new();
        store.insert(signal(20, 1));
        store.insert_batch(vec![signal(5, 2), social(5), signal(12, 3)]);
        assert_eq!(store.day_count(), 3);
        let mut seen = Vec::new();
        store.for_each_day(|date, signals| seen.push((date, signals.len())));
        assert_eq!(seen, vec![(d(5), 2), (d(12), 1), (d(20), 1)]);
        let empty = SignalStore::new();
        assert_eq!(empty.day_count(), 0);
        empty.for_each_day(|_, _| panic!("no days to visit"));
    }

    #[test]
    fn for_each_visits_in_date_order() {
        let store = SignalStore::new();
        store.insert(signal(20, 1));
        store.insert(signal(5, 2));
        store.insert(signal(12, 3));
        let mut dates = Vec::new();
        store.for_each_between(d(1), d(28), |s| dates.push(s.date));
        assert_eq!(dates, vec![d(5), d(12), d(20)]);
    }

    #[test]
    fn sharded_and_single_lock_agree() {
        let sharded = SignalStore::with_shards(16);
        let single = SignalStore::with_shards(1);
        assert_eq!(single.shard_count(), 1);
        for day in 1..=28u8 {
            for (n, rating) in [(day, 1), (29 - day, 5)] {
                sharded.insert(signal(n, rating));
                single.insert(signal(n, rating));
            }
        }
        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.date_range(), single.date_range());
        let a: Vec<Date> = sharded
            .between(d(1), d(28))
            .iter()
            .map(|s| s.date)
            .collect();
        let b: Vec<Date> = single.between(d(1), d(28)).iter().map(|s| s.date).collect();
        assert_eq!(a, b, "window scans must agree regardless of sharding");
    }

    #[test]
    fn zero_shards_is_clamped() {
        let store = SignalStore::with_shards(0);
        assert_eq!(store.shard_count(), 1);
        store.insert(signal(1, 3));
        assert_eq!(store.len(), 1);
    }
}
