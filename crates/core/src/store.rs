//! The signal store: a thread-safe, time-indexed repository.
//!
//! Ingestion workers append concurrently ([`SignalStore::insert_batch`]
//! behind a `parking_lot::RwLock`), queries read concurrently. Signals are
//! bucketed per day so window queries and daily aggregations (the Fig. 5/6
//! series) stay cheap.

use crate::signals::{Signal, SignalKind};
use analytics::time::Date;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Thread-safe signal repository.
#[derive(Debug, Default)]
pub struct SignalStore {
    inner: RwLock<BTreeMap<Date, Vec<Signal>>>,
}

impl SignalStore {
    /// Empty store.
    pub fn new() -> SignalStore {
        SignalStore::default()
    }

    /// Insert one signal.
    pub fn insert(&self, signal: Signal) {
        self.inner.write().entry(signal.date).or_default().push(signal);
    }

    /// Insert a batch under one lock acquisition.
    pub fn insert_batch(&self, signals: Vec<Signal>) {
        if signals.is_empty() {
            return;
        }
        let mut guard = self.inner.write();
        for s in signals {
            guard.entry(s.date).or_default().push(s);
        }
    }

    /// Total signals stored.
    pub fn len(&self) -> usize {
        self.inner.read().values().map(Vec::len).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of signals of one kind.
    pub fn count_kind(&self, kind: SignalKind) -> usize {
        self.inner
            .read()
            .values()
            .flat_map(|v| v.iter())
            .filter(|s| s.kind() == kind)
            .count()
    }

    /// First and last day with data.
    pub fn date_range(&self) -> Option<(Date, Date)> {
        let guard = self.inner.read();
        let first = *guard.keys().next()?;
        let last = *guard.keys().next_back()?;
        Some((first, last))
    }

    /// Clone out the signals of a day (empty if none).
    pub fn on(&self, date: Date) -> Vec<Signal> {
        self.inner.read().get(&date).cloned().unwrap_or_default()
    }

    /// Visit every signal in `[from, to]` without cloning.
    pub fn for_each_between<F: FnMut(&Signal)>(&self, from: Date, to: Date, mut f: F) {
        let guard = self.inner.read();
        for (_, signals) in guard.range(from..=to) {
            for s in signals {
                f(s);
            }
        }
    }

    /// Clone out all signals in `[from, to]`.
    pub fn between(&self, from: Date, to: Date) -> Vec<Signal> {
        let mut out = Vec::new();
        self.for_each_between(from, to, |s| out.push(s.clone()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{ExplicitSignal, Payload};

    fn d(day: u8) -> Date {
        Date::from_ymd(2022, 4, day).unwrap()
    }

    fn signal(day: u8, rating: u8) -> Signal {
        Signal {
            date: d(day),
            network: crate::signals::NetworkHint::Unknown,
            payload: Payload::Explicit(ExplicitSignal { rating, call_id: 1, user_id: 2 }),
        }
    }

    #[test]
    fn insert_and_query() {
        let store = SignalStore::new();
        assert!(store.is_empty());
        store.insert(signal(10, 5));
        store.insert_batch(vec![signal(12, 4), signal(12, 3)]);
        store.insert_batch(vec![]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.on(d(12)).len(), 2);
        assert_eq!(store.on(d(11)).len(), 0);
        assert_eq!(store.between(d(10), d(12)).len(), 3);
        assert_eq!(store.between(d(11), d(11)).len(), 0);
        assert_eq!(store.date_range(), Some((d(10), d(12))));
        assert_eq!(store.count_kind(SignalKind::Explicit), 3);
        assert_eq!(store.count_kind(SignalKind::Social), 0);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let store = std::sync::Arc::new(SignalStore::new());
        crossbeam::thread::scope(|scope| {
            for t in 0..8 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move |_| {
                    for i in 0..200 {
                        store.insert(signal((1 + (t + i) % 28) as u8, 3));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.len(), 1600);
    }

    #[test]
    fn for_each_visits_in_date_order() {
        let store = SignalStore::new();
        store.insert(signal(20, 1));
        store.insert(signal(5, 2));
        store.insert(signal(12, 3));
        let mut dates = Vec::new();
        store.for_each_between(d(1), d(28), |s| dates.push(s.date));
        assert_eq!(dates, vec![d(5), d(12), d(20)]);
    }
}
