//! Emerging-topic mining — the roaming early-detection pipeline (§4.1).
//!
//! *"We were also able to detect Redditors discussing the roaming feature of
//! Starlink almost ~2 weeks before Elon Musk announced it on Twitter … using
//! a systematic pipeline which mines popular discussions (using upvotes and
//! comment numbers)."*
//!
//! The miner slides a window over the corpus, counts engagement-weighted
//! unigrams, and flags terms whose current weight is a large multiple of
//! their historical average — surfacing vocabulary the community suddenly
//! cares about. It reports the first flag date per term so lead times
//! against official announcements can be measured.

use analytics::time::Date;
use analytics::AnalyticsError;
use sentiment::analyzer::SentimentAnalyzer;
use sentiment::corpus::{IdNgramCounts, TokenCorpus};
use sentiment::ngram::NgramCounts;
use serde::{Deserialize, Serialize};
use social::post::{Forum, Post};
use std::collections::HashMap;

/// Miner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmergingTopicMiner {
    /// Length of the current window (days).
    pub window_days: i32,
    /// Step between evaluations (days).
    pub step_days: i32,
    /// Novelty ratio a term must reach: current weight vs historical daily
    /// average (+1 smoothing).
    pub min_novelty: f64,
    /// Minimum absolute engagement weight in the window (filters one-off
    /// posts).
    pub min_weight: f64,
}

impl Default for EmergingTopicMiner {
    fn default() -> EmergingTopicMiner {
        EmergingTopicMiner {
            window_days: 7,
            step_days: 1,
            min_novelty: 8.0,
            min_weight: 150.0,
        }
    }
}

/// One emerging-topic detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergingTopic {
    /// The term.
    pub term: String,
    /// First day the term was flagged.
    pub first_flagged: Date,
    /// Engagement weight in the triggering window.
    pub window_weight: f64,
    /// Novelty ratio at the trigger.
    pub novelty: f64,
    /// Mean sentiment polarity of the window's posts containing the term.
    pub polarity: f64,
}

impl EmergingTopicMiner {
    /// Mine the corpus; returns the first detection per term, ordered by
    /// flag date.
    pub fn mine(&self, forum: &Forum) -> Result<Vec<EmergingTopic>, AnalyticsError> {
        let (start, end) = forum.date_range().ok_or(AnalyticsError::Empty)?;
        let analyzer = SentimentAnalyzer::default();
        // Historical cumulative engagement weight per term and in total.
        // Novelty compares the term's *share* of engagement-weighted counts
        // now vs historically, so an event that inflates all posting (and
        // therefore every term's absolute weight) does not flag established
        // vocabulary.
        let mut history: HashMap<String, f64> = HashMap::new();
        let mut history_total = 0.0f64;
        let mut detected: HashMap<String, EmergingTopic> = HashMap::new();
        /// Share floor: the share a never-seen term is treated as having had.
        const SHARE_FLOOR: f64 = 0.002;

        let mut cursor = start.offset(self.window_days);
        // Pre-load history with the first window.
        let mut pre = NgramCounts::new();
        for p in forum.between(start, cursor.offset(-1)) {
            pre.add_weighted(&p.text(), p.engagement_weight());
        }
        for (term, w) in pre.iter() {
            *history.entry(term.to_string()).or_insert(0.0) += w;
            history_total += w;
        }

        while cursor.offset(self.window_days - 1) <= end {
            let win_start = cursor;
            let win_end = cursor.offset(self.window_days - 1);
            let mut counts = NgramCounts::new();
            let posts: Vec<&social::post::Post> = forum.between(win_start, win_end).collect();
            for p in &posts {
                counts.add_weighted(&p.text(), p.engagement_weight());
            }
            let window_total: f64 = counts.iter().map(|(_, w)| w).sum::<f64>().max(1.0);
            for (term, weight) in counts.iter() {
                if weight < self.min_weight || detected.contains_key(term) {
                    continue;
                }
                let hist_share = history.get(term).copied().unwrap_or(0.0) / history_total.max(1.0);
                let window_share = weight / window_total;
                let novelty = window_share / (hist_share + SHARE_FLOOR);
                if novelty >= self.min_novelty {
                    // Sentiment of the posts mentioning the term.
                    let polarities: Vec<f64> = posts
                        .iter()
                        .filter(|p| p.text().to_lowercase().contains(term))
                        .map(|p| analyzer.score(&p.text()).polarity())
                        .collect();
                    let polarity = analytics::mean(&polarities).unwrap_or(0.0);
                    detected.insert(
                        term.to_string(),
                        EmergingTopic {
                            term: term.to_string(),
                            first_flagged: win_end,
                            window_weight: weight,
                            novelty,
                            polarity,
                        },
                    );
                }
            }
            // Roll the oldest step into history.
            let mut rolled = NgramCounts::new();
            for p in forum.between(win_start, win_start.offset(self.step_days - 1)) {
                rolled.add_weighted(&p.text(), p.engagement_weight());
            }
            for (term, w) in rolled.iter() {
                *history.entry(term.to_string()).or_insert(0.0) += w;
                history_total += w;
            }
            cursor = cursor.offset(self.step_days);
        }
        let mut out: Vec<EmergingTopic> = detected.into_values().collect();
        sort_detections(&mut out);
        Ok(out)
    }

    /// [`EmergingTopicMiner::mine`] over a pre-tokenized corpus: windows
    /// count engagement-weighted unigrams by interned id, history is a
    /// `HashMap<u32, f64>`, and polarity scoring runs on token ids. All
    /// window/history weights are sums of integer-valued engagement
    /// weights, so every share and novelty ratio is computed on exactly
    /// the same values as the string path; detections are identical, and
    /// same-day flags are ordered by term (both paths sort with
    /// [`sort_detections`]).
    ///
    /// Implemented as [`EmergingTopicMiner::mine_start`] +
    /// [`EmergingTopicMiner::mine_run`] — the resumable core the
    /// incremental [`crate::views::EmergingTopicsView`] carries across
    /// epochs.
    pub fn mine_interned(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
    ) -> Result<Vec<EmergingTopic>, AnalyticsError> {
        let mut state = self.mine_start(forum, corpus)?;
        self.mine_run(forum, corpus, &mut state);
        Ok(state.detections())
    }

    /// Initialise a [`MineState`] for the interned miner: validate the
    /// corpus, fix the forum's date range, and pre-load history with the
    /// first window. No windows are evaluated yet.
    pub(crate) fn mine_start(
        &self,
        forum: &Forum,
        corpus: &TokenCorpus,
    ) -> Result<MineState, AnalyticsError> {
        if corpus.docs() != forum.len() {
            return Err(AnalyticsError::LengthMismatch {
                left: corpus.docs(),
                right: forum.len(),
            });
        }
        let (start, end) = forum.date_range().ok_or(AnalyticsError::Empty)?;
        let mut state = MineState {
            start,
            end,
            cursor: start.offset(self.window_days),
            history: HashMap::new(),
            history_total: 0.0,
            detected: HashMap::new(),
        };
        // Pre-load history with the first window.
        let mut pre = IdNgramCounts::new();
        for (i, p) in between(forum, start, state.cursor.offset(-1)) {
            pre.add_unigrams(corpus, i, p.engagement_weight());
        }
        for (id, w) in pre.iter_unigrams() {
            *state.history.entry(id).or_insert(0.0) += w;
            state.history_total += w;
        }
        Ok(state)
    }

    /// Evaluate every window from `state.cursor` through `state.end`,
    /// updating the carried history/detections and leaving the cursor at
    /// the first unevaluated window. Because the loop only ever reads
    /// posts dated `<= state.end`, a state paused here and resumed after
    /// an append of strictly-later posts (with `state.end` raised to the
    /// new maximum) walks exactly the windows a cold run over the full
    /// forum would — the incremental contract of
    /// [`crate::views::EmergingTopicsView`].
    pub(crate) fn mine_run(&self, forum: &Forum, corpus: &TokenCorpus, state: &mut MineState) {
        let analyzer = SentimentAnalyzer::default();
        let vocab = corpus.vocab();
        /// Share floor: the share a never-seen term is treated as having had.
        const SHARE_FLOOR: f64 = 0.002;

        while state.cursor.offset(self.window_days - 1) <= state.end {
            let win_start = state.cursor;
            let win_end = state.cursor.offset(self.window_days - 1);
            let mut counts = IdNgramCounts::new();
            let posts: Vec<(usize, &Post)> = between(forum, win_start, win_end).collect();
            for &(i, p) in &posts {
                counts.add_unigrams(corpus, i, p.engagement_weight());
            }
            let window_total: f64 = counts.iter_unigrams().map(|(_, w)| w).sum::<f64>().max(1.0);
            for (id, weight) in counts.iter_unigrams() {
                if weight < self.min_weight || state.detected.contains_key(&id) {
                    continue;
                }
                let hist_share =
                    state.history.get(&id).copied().unwrap_or(0.0) / state.history_total.max(1.0);
                let window_share = weight / window_total;
                let novelty = window_share / (hist_share + SHARE_FLOOR);
                if novelty >= self.min_novelty {
                    // Sentiment of the posts mentioning the term. The
                    // string path substring-matches the lowercased full
                    // text; terms never contain the title/body joiner, so
                    // checking the parts separately is equivalent.
                    let term = vocab.word(id);
                    let polarities: Vec<f64> = posts
                        .iter()
                        .filter(|(_, p)| {
                            p.title.to_lowercase().contains(term)
                                || p.body.to_lowercase().contains(term)
                        })
                        .map(|&(i, _)| analyzer.score_ids(corpus.doc(i), vocab).polarity())
                        .collect();
                    let polarity = analytics::mean(&polarities).unwrap_or(0.0);
                    state.detected.insert(
                        id,
                        EmergingTopic {
                            term: term.to_string(),
                            first_flagged: win_end,
                            window_weight: weight,
                            novelty,
                            polarity,
                        },
                    );
                }
            }
            // Roll the oldest step into history.
            let mut rolled = IdNgramCounts::new();
            for (i, p) in between(forum, win_start, win_start.offset(self.step_days - 1)) {
                rolled.add_unigrams(corpus, i, p.engagement_weight());
            }
            for (id, w) in rolled.iter_unigrams() {
                *state.history.entry(id).or_insert(0.0) += w;
                state.history_total += w;
            }
            state.cursor = state.cursor.offset(self.step_days);
        }
    }

    /// Convenience: the first detection of one term, if any.
    pub fn first_detection(
        &self,
        forum: &Forum,
        term: &str,
    ) -> Result<Option<EmergingTopic>, AnalyticsError> {
        Ok(self.mine(forum)?.into_iter().find(|t| t.term == term))
    }
}

/// The interned miner's resumable position: everything
/// [`EmergingTopicMiner::mine_run`] needs to evaluate the next window.
/// Dates strictly after `end` have not influenced any of it, which is what
/// lets [`crate::views::EmergingTopicsView`] carry one of these across an
/// append of later-dated posts and resume instead of re-mining history.
#[derive(Debug, Clone)]
pub(crate) struct MineState {
    /// First forum day (fixed; an earlier-dated append invalidates the
    /// state, because the pre-load window would have differed).
    pub start: Date,
    /// Last forum day covered; windows end at or before it.
    pub end: Date,
    /// Start of the first window not yet evaluated.
    pub cursor: Date,
    /// Historical cumulative engagement weight per term id.
    pub history: HashMap<u32, f64>,
    /// Total historical engagement weight.
    pub history_total: f64,
    /// First detection per term id.
    pub detected: HashMap<u32, EmergingTopic>,
}

impl MineState {
    /// The detections so far, in the output order of
    /// [`EmergingTopicMiner::mine_interned`].
    pub fn detections(&self) -> Vec<EmergingTopic> {
        let mut out: Vec<EmergingTopic> = self.detected.values().cloned().collect();
        sort_detections(&mut out);
        out
    }
}

/// `Forum::between` by document index, so windows address the corpus.
fn between(forum: &Forum, from: Date, to: Date) -> impl Iterator<Item = (usize, &Post)> {
    forum
        .posts
        .iter()
        .enumerate()
        .filter(move |(_, p)| p.date >= from && p.date <= to)
}

/// Canonical detection order: flag date, then term. Pinning the tie order
/// (the maps above iterate in hash order) keeps every producer —
/// string-path mine, interned mine, carried view — byte-identical.
pub(crate) fn sort_detections(out: &mut [EmergingTopic]) {
    out.sort_by(|a, b| {
        a.first_flagged
            .cmp(&b.first_flagged)
            .then_with(|| a.term.cmp(&b.term))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use social::generator::{generate, ForumConfig};
    use std::sync::OnceLock;

    fn forum() -> &'static Forum {
        static F: OnceLock<Forum> = OnceLock::new();
        F.get_or_init(|| {
            generate(&ForumConfig {
                authors: 4000,
                ..ForumConfig::default()
            })
        })
    }

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn roaming_detected_two_weeks_before_ceo_tweet() {
        let miner = EmergingTopicMiner::default();
        let hit = miner
            .first_detection(forum(), "roaming")
            .unwrap()
            .expect("roaming must be flagged");
        let tweet = d(2022, 3, 3);
        let lead = tweet.days_since(hit.first_flagged);
        assert!(
            lead >= 10,
            "roaming flagged {} — only {lead} days before the tweet (paper: ~2 weeks)",
            hit.first_flagged
        );
        assert!(
            hit.first_flagged >= d(2022, 2, 14),
            "cannot flag before users discover it"
        );
        assert!(
            hit.polarity > 0.0,
            "roaming chatter should be positive: {}",
            hit.polarity
        );
    }

    #[test]
    fn established_vocabulary_is_not_flagged() {
        let miner = EmergingTopicMiner::default();
        let topics = miner.mine(forum()).unwrap();
        // Words present from day one can never be novel.
        for term in ["service", "speeds", "dish"] {
            assert!(
                topics.iter().all(|t| t.term != term),
                "{term} wrongly flagged as emerging"
            );
        }
    }

    #[test]
    fn detections_are_first_occurrences_in_order() {
        let miner = EmergingTopicMiner::default();
        let topics = miner.mine(forum()).unwrap();
        assert!(!topics.is_empty());
        assert!(topics
            .windows(2)
            .all(|w| w[0].first_flagged <= w[1].first_flagged));
        let mut terms: Vec<&str> = topics.iter().map(|t| t.term.as_str()).collect();
        terms.sort_unstable();
        let before = terms.len();
        terms.dedup();
        assert_eq!(before, terms.len(), "one detection per term");
    }

    #[test]
    fn empty_forum_errors() {
        let miner = EmergingTopicMiner::default();
        assert!(miner.mine(&Forum::default()).is_err());
    }
}
