//! Resilient parallel ingestion pipeline.
//!
//! [`Source`]s (conferencing telemetry, forum crawls) produce raw items; a
//! pool of normalisation workers scores sentiment and converts to
//! [`Signal`]s; batches land in the shared [`SignalStore`]. Built on
//! `crossbeam` bounded channels + scoped threads — the workload is
//! CPU-bound batch processing, so plain threads (not an async runtime) are
//! the right tool.
//!
//! Unlike the original all-or-nothing pipeline, ingestion now degrades
//! per item instead of per run:
//!
//! * **Transient** source errors are retried with exponential backoff +
//!   deterministic jitter ([`RetryPolicy`]), sleeping against a pluggable
//!   [`Clock`] so tests use virtual time.
//! * A run of consecutive failures trips a per-source [`CircuitBreaker`];
//!   while open, the producer waits out the cooldown on the clock, then
//!   probes (half-open) before resuming.
//! * Items that exhaust their retries, arrive **permanently** broken, or
//!   panic the normaliser (poison pills, caught per item via
//!   `catch_unwind` under [`PanicPolicy::Quarantine`]) are dead-lettered
//!   into the report's quarantine with the item description and reason —
//!   the pool keeps running.
//! * The run returns a structured [`IngestReport`] — stored/fed/retried/
//!   quarantined counts, breaker trips, and per-source [`SourceHealth`] —
//!   instead of a bare count.
//!
//! **Determinism:** faults, retries, and breaker transitions all happen in
//! the single-threaded producer, and fault decisions are pure functions of
//! `(seed, item index)` — so stored totals and the quarantine set are
//! bit-identical across worker counts (pinned by
//! `tests/ingest_resilience.rs`).
//!
//! Failure behaviour for *genuine invariant violations* is unchanged: a
//! worker panic outside the per-item normalisation guard (e.g. inside the
//! store) still kills the run, and the **original** panic payload is
//! re-raised once the scope is joined. If every worker dies, the
//! producer's sends start failing; the producer stops feeding, records how
//! many items went unfed (no more silent `break`), and the scope join
//! reports the real cause.

use crate::breaker::{BreakerState, CircuitBreaker, RetryPolicy};
use crate::fault::{Clock, VirtualClock};
use crate::signals::Signal;
use crate::source::{PostSource, SessionSource, Source, SourceError};
use crate::store::SignalStore;

pub use crate::source::RawItem;
use conference::records::CallDataset;
use crossbeam::channel;
use parking_lot::Mutex;
use sentiment::analyzer::SentimentAnalyzer;
use social::post::Forum;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// What to do when normalising one item panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicPolicy {
    /// Catch the panic per item and quarantine the item as a poison pill;
    /// the worker pool keeps running. Panics *outside* the normalisation
    /// call (batch inserts, channel plumbing) still propagate — those are
    /// invariant violations, not bad data.
    Quarantine,
    /// Let any normalisation panic kill the worker and re-raise its
    /// original payload to the caller — the legacy all-or-nothing
    /// behaviour, kept for build-time ingestion where a poison item in a
    /// trusted dataset *is* an invariant violation.
    Propagate,
}

/// Ingestion tuning: worker count, retry/breaker policy, clock, and panic
/// handling.
#[derive(Clone)]
pub struct IngestConfig {
    /// Normalisation worker threads (min 1).
    pub workers: usize,
    /// Retry/backoff policy for transient source errors.
    pub retry: RetryPolicy,
    /// Per-source circuit-breaker tuning.
    pub breaker: crate::breaker::BreakerConfig,
    /// Time source for backoff sleeps and breaker cooldowns. Defaults to a
    /// [`VirtualClock`] (healthy sources never sleep); production feeds
    /// with real flakiness would pass a [`crate::fault::WallClock`].
    pub clock: Arc<dyn Clock>,
    /// Poison-pill handling.
    pub panics: PanicPolicy,
}

impl std::fmt::Debug for IngestConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestConfig")
            .field("workers", &self.workers)
            .field("retry", &self.retry)
            .field("breaker", &self.breaker)
            .field("panics", &self.panics)
            .finish_non_exhaustive()
    }
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            workers: 4,
            retry: RetryPolicy::default(),
            breaker: crate::breaker::BreakerConfig::default(),
            clock: Arc::new(VirtualClock::new()),
            panics: PanicPolicy::Quarantine,
        }
    }
}

impl IngestConfig {
    /// A config with `workers` threads and defaults everywhere else.
    pub fn with_workers(workers: usize) -> IngestConfig {
        IngestConfig {
            workers,
            ..IngestConfig::default()
        }
    }

    /// The same config driven by a different clock — how a daemon shares
    /// its tick clock with the engine's retry/backoff/breaker timing
    /// (`WallClock` in production, a `VirtualClock` in tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> IngestConfig {
        self.clock = clock;
        self
    }
}

/// Why an item was dead-lettered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Transient failures outlived the retry budget.
    RetriesExhausted,
    /// The source reported the item permanently unfetchable (corrupt).
    PermanentError,
    /// Normalising the item panicked; the panic was caught per item.
    PoisonPill,
}

impl QuarantineReason {
    /// Stable on-disk tag of the reason — part of the persist layer's
    /// journal format, so the mapping must never be reordered (append new
    /// variants with new tags instead).
    pub(crate) fn tag(self) -> u8 {
        match self {
            QuarantineReason::RetriesExhausted => 0,
            QuarantineReason::PermanentError => 1,
            QuarantineReason::PoisonPill => 2,
        }
    }

    /// Inverse of [`QuarantineReason::tag`]; `None` on an unknown tag
    /// (corrupt journal).
    pub(crate) fn from_tag(tag: u8) -> Option<QuarantineReason> {
        match tag {
            0 => Some(QuarantineReason::RetriesExhausted),
            1 => Some(QuarantineReason::PermanentError),
            2 => Some(QuarantineReason::PoisonPill),
            _ => None,
        }
    }
}

/// One dead-lettered item: where it came from, why it was dropped, and a
/// description of the payload for offline inspection.
///
/// Dead letters are durable: the service's journal records each run's
/// quarantine set alongside the accepted items, so they survive a restart
/// and remain inspectable after [`crate::service::UsaasService::open_or_recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// Index of the source in the ingestion run.
    pub source_id: usize,
    /// Source name.
    pub source: String,
    /// Deterministic per-source sequence number of the item (assigned by
    /// the producer in stream order, so the quarantine set is identical
    /// across worker counts).
    pub seq: usize,
    /// Why the item was quarantined.
    pub reason: QuarantineReason,
    /// Error or panic detail.
    pub detail: String,
    /// Short description of the item, when recoverable.
    pub item: String,
}

/// Health of one source after an ingestion run.
#[derive(Debug, Clone)]
pub struct SourceHealth {
    /// Source name.
    pub name: String,
    /// Items successfully handed to the worker pool.
    pub fed: usize,
    /// Retry attempts spent on this source.
    pub retries: usize,
    /// Items dead-lettered (all reasons).
    pub quarantined: usize,
    /// Items the source silently lost (fault-layer drops).
    pub dropped: usize,
    /// Times the source's breaker tripped open.
    pub breaker_trips: usize,
    /// Breaker state when the run finished.
    pub breaker_state: BreakerState,
    /// Whether the stream disconnected mid-flight.
    pub disconnected: bool,
    /// Items never reached because of a disconnect or an aborted run.
    pub skipped: usize,
}

impl SourceHealth {
    fn new(name: String) -> SourceHealth {
        SourceHealth {
            name,
            fed: 0,
            retries: 0,
            quarantined: 0,
            dropped: 0,
            breaker_trips: 0,
            breaker_state: BreakerState::Closed,
            disconnected: false,
            skipped: 0,
        }
    }

    /// True when the source ended the run fully operational: breaker
    /// closed and stream intact.
    pub fn is_healthy(&self) -> bool {
        self.breaker_state == BreakerState::Closed && !self.disconnected
    }
}

/// Structured result of an ingestion run.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Signals stored (one session may yield several signals).
    pub stored: usize,
    /// Items handed to the worker pool.
    pub fed: usize,
    /// Items the producer failed to hand off because the pool was gone.
    pub unfed: usize,
    /// Total retry attempts across all sources.
    pub retries: usize,
    /// Total breaker trips across all sources.
    pub breaker_trips: usize,
    /// Dead-lettered items, sorted by `(source_id, seq)`.
    pub quarantined: Vec<QuarantineEntry>,
    /// Per-source health, in source order.
    pub sources: Vec<SourceHealth>,
    /// Set when the run stopped early because the worker pool disappeared;
    /// carries the best available explanation.
    pub aborted: Option<String>,
}

impl IngestReport {
    /// `(source_id, seq)` of every quarantined item — the deterministic
    /// identity the fault-matrix tests compare across worker counts.
    pub fn quarantined_keys(&self) -> Vec<(usize, usize)> {
        self.quarantined
            .iter()
            .map(|q| (q.source_id, q.seq))
            .collect()
    }

    /// Names of sources whose breaker ended the run open or half-open.
    pub fn open_breakers(&self) -> Vec<String> {
        self.sources
            .iter()
            .filter(|s| s.breaker_state != BreakerState::Closed)
            .map(|s| s.name.clone())
            .collect()
    }

    /// True when anything degraded the run: quarantined items, open
    /// breakers, disconnects, or unfed items.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
            || self.unfed > 0
            || self.aborted.is_some()
            || self.sources.iter().any(|s| !s.is_healthy())
    }
}

/// Normalise one raw item into signals.
///
/// # Panics
///
/// Panics on [`RawItem::Poison`] — by design, so the per-item
/// `catch_unwind` guard and the quarantine path can be exercised
/// end to end.
pub fn normalise(item: &RawItem, analyzer: &SentimentAnalyzer) -> Vec<Signal> {
    match item {
        RawItem::Session(s) => Signal::from_session(s),
        RawItem::Post(p) => vec![Signal::from_post(p, analyzer)],
        RawItem::Poison(msg) => panic!("poison pill: {msg}"),
    }
}

/// Ingest a call dataset and a forum corpus into the store using `workers`
/// normalisation threads — the build-time path over trusted in-memory
/// sources (no retries needed, panics propagate).
///
/// # Panics
///
/// Re-raises the original panic of any normalisation worker that died.
pub fn ingest_all(
    store: &SignalStore,
    dataset: &CallDataset,
    forum: &Forum,
    workers: usize,
) -> IngestReport {
    let cfg = IngestConfig {
        workers,
        panics: PanicPolicy::Propagate,
        ..IngestConfig::default()
    };
    let sources: Vec<Box<dyn Source + '_>> = vec![
        Box::new(SessionSource::new(
            "conference-telemetry",
            &dataset.sessions,
        )),
        Box::new(PostSource::new("forum-crawl", &forum.posts)),
    ];
    ingest_stream(store, sources, &cfg)
}

/// Run the resilient streaming pipeline over `sources` into `store`.
///
/// # Panics
///
/// Re-raises a worker panic when it escapes the per-item guard (always
/// under [`PanicPolicy::Propagate`]; only for non-normalisation panics
/// under [`PanicPolicy::Quarantine`]).
pub fn ingest_stream<'a>(
    store: &SignalStore,
    sources: Vec<Box<dyn Source + 'a>>,
    cfg: &IngestConfig,
) -> IngestReport {
    ingest_stream_with(store, sources, cfg, normalise, None)
}

/// [`ingest_stream`] that additionally collects every accepted item (fed
/// and successfully normalised), returned in deterministic feed order —
/// the append-while-serving path uses this to know exactly which items
/// made it in.
pub(crate) fn ingest_stream_collect<'a>(
    store: &SignalStore,
    sources: Vec<Box<dyn Source + 'a>>,
    cfg: &IngestConfig,
) -> (IngestReport, Vec<RawItem>) {
    let sink = Mutex::new(Vec::new());
    let report = ingest_stream_with(store, sources, cfg, normalise, Some(&sink));
    let mut accepted = sink.into_inner();
    // Workers interleave arbitrarily; the producer's global sequence
    // restores feed order.
    accepted.sort_by_key(|(global, _)| *global);
    (report, accepted.into_iter().map(|(_, item)| item).collect())
}

/// One channel message: the item plus the producer-assigned identity that
/// keeps quarantine records and collected appends deterministic.
struct Envelope {
    source: usize,
    seq: usize,
    global: u64,
    item: RawItem,
}

/// What the producer accomplished before the channel closed.
struct FeedOutcome {
    healths: Vec<SourceHealth>,
    fed: usize,
    unfed: usize,
    retries: usize,
    breaker_trips: usize,
    aborted: Option<String>,
}

/// Drive every source to exhaustion, applying retry/backoff and the
/// circuit breaker, handing live items to the worker pool via `tx` and
/// dead-lettering the rest into `quarantine`.
///
/// Separated from the scope plumbing so the dead-pool path (every `send`
/// failing) is unit-testable by dropping the receiver.
fn feed_sources(
    tx: &channel::Sender<Envelope>,
    sources: &mut [Box<dyn Source + '_>],
    cfg: &IngestConfig,
    quarantine: &Mutex<Vec<QuarantineEntry>>,
) -> FeedOutcome {
    let clock = &*cfg.clock;
    let mut out = FeedOutcome {
        healths: Vec::with_capacity(sources.len()),
        fed: 0,
        unfed: 0,
        retries: 0,
        breaker_trips: 0,
        aborted: None,
    };
    let mut global: u64 = 0;

    for (si, src) in sources.iter_mut().enumerate() {
        let mut health = SourceHealth::new(src.name().to_string());
        if out.aborted.is_some() {
            // The pool is gone; everything this source holds goes unfed.
            health.skipped = src.remaining_hint();
            out.unfed += health.skipped;
            out.healths.push(health);
            continue;
        }
        let mut breaker = CircuitBreaker::new(cfg.breaker);
        let mut seq = 0usize;
        let mut attempts = 0u32;
        loop {
            let now = clock.now_ms();
            if breaker.state(now) == BreakerState::Open {
                // Wait out the cooldown on the (virtual) clock, then probe.
                clock.sleep_ms(breaker.remaining_open_ms(now).max(1));
                continue;
            }
            match src.next_item() {
                None => break,
                Some(Ok(item)) => {
                    breaker.record_success(clock.now_ms());
                    attempts = 0;
                    let env = Envelope {
                        source: si,
                        seq,
                        global,
                        item,
                    };
                    if tx.send(env).is_err() {
                        // Every worker is gone. Count this item and the
                        // rest of the stream as unfed and stop — the scope
                        // join will surface the real cause if it was a
                        // panic.
                        out.unfed += 1 + src.remaining_hint();
                        out.aborted =
                            Some("worker pool disconnected; producer stopped feeding".to_string());
                        break;
                    }
                    global += 1;
                    seq += 1;
                    health.fed += 1;
                }
                Some(Err(SourceError::Transient { reason })) => {
                    breaker.record_failure(clock.now_ms());
                    if attempts >= cfg.retry.max_retries {
                        // Retry budget spent: dead-letter the stuck item.
                        let item = src
                            .take_pending()
                            .map(|i| i.describe())
                            .unwrap_or_else(|| "<item unavailable>".to_string());
                        quarantine.lock().push(QuarantineEntry {
                            source_id: si,
                            source: health.name.clone(),
                            seq,
                            reason: QuarantineReason::RetriesExhausted,
                            detail: reason.to_string(),
                            item,
                        });
                        health.quarantined += 1;
                        seq += 1;
                        attempts = 0;
                    } else {
                        attempts += 1;
                        health.retries += 1;
                        let salt = ((si as u64) << 32) | seq as u64;
                        clock.sleep_ms(cfg.retry.backoff_ms(attempts, salt));
                    }
                }
                Some(Err(SourceError::Permanent { reason, item })) => {
                    breaker.record_failure(clock.now_ms());
                    quarantine.lock().push(QuarantineEntry {
                        source_id: si,
                        source: health.name.clone(),
                        seq,
                        reason: QuarantineReason::PermanentError,
                        detail: reason.to_string(),
                        item: item
                            .map(|i| i.describe())
                            .unwrap_or_else(|| "<item unavailable>".to_string()),
                    });
                    health.quarantined += 1;
                    seq += 1;
                    attempts = 0;
                }
                Some(Err(SourceError::Disconnected)) => {
                    health.disconnected = true;
                    health.skipped = src.remaining_hint();
                    break;
                }
            }
        }
        health.dropped = src.dropped();
        health.breaker_trips = breaker.trips();
        health.breaker_state = breaker.state(clock.now_ms());
        out.fed += health.fed;
        out.retries += health.retries;
        out.breaker_trips += health.breaker_trips;
        out.healths.push(health);
    }
    out
}

/// Extract a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// The engine: spawn the worker pool, run the producer, assemble the
/// report. Generic over the normalisation function so tests can inject a
/// faulty worker.
fn ingest_stream_with<'a, N>(
    store: &SignalStore,
    mut sources: Vec<Box<dyn Source + 'a>>,
    cfg: &IngestConfig,
    normalise_fn: N,
    sink: Option<&Mutex<Vec<(u64, RawItem)>>>,
) -> IngestReport
where
    N: Fn(&RawItem, &SentimentAnalyzer) -> Vec<Signal> + Sync,
{
    let workers = cfg.workers.max(1);
    let (tx, rx) = channel::bounded::<Envelope>(4096);
    let before = store.len();
    let quarantine: Mutex<Vec<QuarantineEntry>> = Mutex::new(Vec::new());
    let names: Vec<String> = sources.iter().map(|s| s.name().to_string()).collect();
    let mut outcome: Option<FeedOutcome> = None;

    let joined = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let normalise_fn = &normalise_fn;
            let quarantine = &quarantine;
            let names = &names;
            let panics = cfg.panics;
            scope.spawn(move |_| {
                let analyzer = SentimentAnalyzer::default();
                let mut batch: Vec<Signal> = Vec::with_capacity(256);
                for env in rx.iter() {
                    // Only the normalisation call is guarded: a poison item
                    // is data, a panic anywhere else is a bug and must
                    // still take the run down.
                    let result = match panics {
                        PanicPolicy::Propagate => Ok(normalise_fn(&env.item, &analyzer)),
                        PanicPolicy::Quarantine => {
                            catch_unwind(AssertUnwindSafe(|| normalise_fn(&env.item, &analyzer)))
                        }
                    };
                    match result {
                        Ok(signals) => {
                            batch.extend(signals);
                            if batch.len() >= 256 {
                                store.insert_batch(std::mem::take(&mut batch));
                            }
                            if let Some(sink) = sink {
                                sink.lock().push((env.global, env.item));
                            }
                        }
                        Err(payload) => {
                            quarantine.lock().push(QuarantineEntry {
                                source_id: env.source,
                                source: names[env.source].clone(),
                                seq: env.seq,
                                reason: QuarantineReason::PoisonPill,
                                detail: panic_message(payload.as_ref()),
                                item: env.item.describe(),
                            });
                        }
                    }
                }
                if !batch.is_empty() {
                    store.insert_batch(batch);
                }
            });
        }
        drop(rx);

        let fed = feed_sources(&tx, &mut sources, cfg, &quarantine);
        // Hang up so workers drain and exit before the scope joins them.
        drop(tx);
        outcome = Some(fed);
    });
    if let Err(payload) = joined {
        // A worker panicked outside the per-item guard (or under
        // `Propagate`) — an invariant violation. Hand the caller its
        // payload, not ours.
        std::panic::resume_unwind(payload);
    }

    let outcome = outcome.expect("producer ran inside the scope");
    let mut quarantined = quarantine.into_inner();
    quarantined.sort_by_key(|q| (q.source_id, q.seq));
    let mut healths = outcome.healths;
    for q in &quarantined {
        // Producer-side reasons were counted inline; poison pills are
        // recorded by workers and folded in here.
        if q.reason == QuarantineReason::PoisonPill {
            if let Some(h) = healths.get_mut(q.source_id) {
                h.quarantined += 1;
            }
        }
    }
    IngestReport {
        stored: store.len() - before,
        fed: outcome.fed,
        unfed: outcome.unfed,
        retries: outcome.retries,
        breaker_trips: outcome.breaker_trips,
        quarantined,
        sources: healths,
        aborted: outcome.aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultPlan};
    use crate::signals::SignalKind;
    use crate::source::ItemSource;
    use conference::dataset::{generate, DatasetConfig};
    use social::generator::{generate as gen_forum, ForumConfig};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn small_forum() -> Forum {
        let mut cfg = ForumConfig::default();
        cfg.end = cfg.start.offset(20);
        cfg.authors = 500;
        gen_forum(&cfg)
    }

    /// Legacy-shaped helper: build-time ingest with an injected normaliser.
    fn ingest_with<N>(
        store: &SignalStore,
        dataset: &CallDataset,
        forum: &Forum,
        workers: usize,
        normalise_fn: N,
    ) -> IngestReport
    where
        N: Fn(&RawItem, &SentimentAnalyzer) -> Vec<Signal> + Sync,
    {
        let cfg = IngestConfig {
            workers,
            panics: PanicPolicy::Propagate,
            ..IngestConfig::default()
        };
        let sources: Vec<Box<dyn Source + '_>> = vec![
            Box::new(SessionSource::new(
                "conference-telemetry",
                &dataset.sessions,
            )),
            Box::new(PostSource::new("forum-crawl", &forum.posts)),
        ];
        ingest_stream_with(store, sources, &cfg, normalise_fn, None)
    }

    #[test]
    fn ingests_both_sources() {
        let store = SignalStore::new();
        let dataset = generate(&DatasetConfig::small(40, 5));
        let forum = small_forum();
        let report = ingest_all(&store, &dataset, &forum, 4);
        let expected = dataset.len() + dataset.rated_sessions().count() + forum.len();
        assert_eq!(report.stored, expected);
        assert_eq!(report.fed, dataset.len() + forum.len());
        assert_eq!(report.unfed, 0);
        assert_eq!(report.retries, 0);
        assert!(report.quarantined.is_empty());
        assert!(!report.is_degraded());
        assert_eq!(report.sources.len(), 2);
        assert!(report.sources.iter().all(|s| s.is_healthy()));
        assert_eq!(store.count_kind(SignalKind::Implicit), dataset.len());
        assert_eq!(store.count_kind(SignalKind::Social), forum.len());
        assert_eq!(
            store.count_kind(SignalKind::Explicit),
            dataset.rated_sessions().count()
        );
    }

    #[test]
    fn worker_count_does_not_change_totals() {
        let dataset = generate(&DatasetConfig::small(25, 6));
        let forum = small_forum();
        let one = SignalStore::new();
        let eight = SignalStore::new();
        assert_eq!(
            ingest_all(&one, &dataset, &forum, 1).stored,
            ingest_all(&eight, &dataset, &forum, 8).stored
        );
        assert_eq!(one.len(), eight.len());
        assert_eq!(one.date_range(), eight.date_range());
    }

    #[test]
    fn empty_sources_ingest_nothing() {
        let store = SignalStore::new();
        let report = ingest_all(&store, &CallDataset::default(), &Forum::default(), 2);
        assert_eq!(report.stored, 0);
        assert!(store.is_empty());
        assert!(!report.is_degraded());
    }

    #[test]
    fn worker_panic_is_surfaced_not_a_send_error() {
        // Regression: a dead worker pool used to make the *producer* panic
        // on `send(..).expect("workers alive")`, hiding the real cause. Now
        // the producer backs off and the worker's own panic reaches the
        // caller.
        let store = SignalStore::new();
        let dataset = generate(&DatasetConfig::small(200, 9));
        let forum = Forum::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            ingest_with(&store, &dataset, &forum, 2, |item, _| match item {
                RawItem::Session(_) => panic!("normaliser exploded"),
                RawItem::Post(p) => vec![Signal::from_post(p, &SentimentAnalyzer::default())],
                RawItem::Poison(msg) => panic!("poison pill: {msg}"),
            })
        }));
        let payload = result.expect_err("a worker panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(
            msg, "normaliser exploded",
            "caller must see the worker's original panic, got: {msg:?}"
        );
    }

    #[test]
    fn dead_pool_records_unfed_items_instead_of_a_silent_break() {
        // Unit-test the producer's dead-pool path directly: a channel whose
        // receiver is gone makes every send fail, which must be *counted*,
        // not silently dropped (the old code just `break`ed).
        let dataset = generate(&DatasetConfig::small(30, 5));
        let (tx, rx) = channel::bounded::<Envelope>(8);
        drop(rx);
        let mut sources: Vec<Box<dyn Source + '_>> = vec![
            Box::new(SessionSource::new("telemetry", &dataset.sessions)),
            Box::new(SessionSource::new("telemetry-2", &dataset.sessions)),
        ];
        let cfg = IngestConfig::default();
        let quarantine = Mutex::new(Vec::new());
        let out = feed_sources(&tx, &mut sources, &cfg, &quarantine);
        assert_eq!(out.fed, 0);
        assert_eq!(
            out.unfed,
            2 * dataset.len(),
            "every item of both sources is accounted as unfed"
        );
        assert!(out.aborted.is_some());
        assert_eq!(out.healths.len(), 2, "untouched sources still report");
        assert_eq!(out.healths[1].skipped, dataset.len());
    }

    #[test]
    fn poison_pill_is_quarantined_not_fatal() {
        let store = SignalStore::new();
        let dataset = generate(&DatasetConfig::small(10, 5));
        let n = dataset.len();
        let items: Vec<RawItem> = dataset
            .sessions
            .iter()
            .map(|s| RawItem::Session(Box::new(s.clone())))
            .collect();
        let plan = FaultPlan::seeded(1).with_poison(3);
        let cfg = IngestConfig::with_workers(4);
        let sources: Vec<Box<dyn Source>> = vec![Box::new(FaultInjector::new(
            ItemSource::new("flaky", items),
            plan,
            cfg.clock.clone(),
        ))];
        let report = ingest_stream(&store, sources, &cfg);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.reason, QuarantineReason::PoisonPill);
        assert_eq!(q.seq, 3);
        assert!(q.detail.contains("poison pill"), "detail: {}", q.detail);
        assert_eq!(report.fed, n, "the pill was fed, then caught in a worker");
        assert!(report.is_degraded());
        assert!(
            report.stored >= n - 1,
            "all non-poisoned sessions stored ({} of {n})",
            report.stored
        );
    }
}
