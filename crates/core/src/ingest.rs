//! Parallel ingestion pipeline.
//!
//! Sources (conferencing telemetry, forum crawls) produce raw items; a pool
//! of normalisation workers scores sentiment and converts to [`Signal`]s;
//! batches land in the shared [`SignalStore`]. Built on `crossbeam` bounded
//! channels + scoped threads — the workload is CPU-bound batch processing,
//! so plain threads (not an async runtime) are the right tool.
//!
//! Failure behaviour: if every worker dies (a panic in normalisation), the
//! producer's sends start failing with a disconnected-channel error. The
//! producer stops feeding instead of panicking on the send itself, and the
//! *original* worker panic payload is re-raised once the scope is joined —
//! so the cause that reaches the caller is the real one, not a misleading
//! `SendError`.

use crate::signals::Signal;
use crate::store::SignalStore;
use conference::records::CallDataset;
use crossbeam::channel;
use sentiment::analyzer::SentimentAnalyzer;
use social::post::Forum;

/// A raw item awaiting normalisation.
pub enum RawItem {
    /// One conferencing session record.
    Session(Box<conference::records::SessionRecord>),
    /// One forum post.
    Post(Box<social::post::Post>),
}

/// Normalise one raw item into signals.
pub fn normalise(item: &RawItem, analyzer: &SentimentAnalyzer) -> Vec<Signal> {
    match item {
        RawItem::Session(s) => Signal::from_session(s),
        RawItem::Post(p) => vec![Signal::from_post(p, analyzer)],
    }
}

/// Ingest a call dataset and a forum corpus into the store using `workers`
/// normalisation threads. Returns the number of signals stored.
///
/// # Panics
///
/// Re-raises the original panic of any normalisation worker that died.
pub fn ingest_all(
    store: &SignalStore,
    dataset: &CallDataset,
    forum: &Forum,
    workers: usize,
) -> usize {
    ingest_with(store, dataset, forum, workers, normalise)
}

/// [`ingest_all`] generic over the normalisation function, so tests can
/// inject a faulty worker and exercise the failure path.
fn ingest_with<N>(
    store: &SignalStore,
    dataset: &CallDataset,
    forum: &Forum,
    workers: usize,
    normalise_fn: N,
) -> usize
where
    N: Fn(&RawItem, &SentimentAnalyzer) -> Vec<Signal> + Sync,
{
    let workers = workers.max(1);
    let (tx, rx) = channel::bounded::<RawItem>(4096);
    let before = store.len();

    let joined = crossbeam::thread::scope(|scope| {
        // Normalisation workers.
        for _ in 0..workers {
            let rx = rx.clone();
            let normalise_fn = &normalise_fn;
            scope.spawn(move |_| {
                let analyzer = SentimentAnalyzer::default();
                let mut batch: Vec<Signal> = Vec::with_capacity(256);
                for item in rx.iter() {
                    batch.extend(normalise_fn(&item, &analyzer));
                    if batch.len() >= 256 {
                        store.insert_batch(std::mem::take(&mut batch));
                    }
                }
                if !batch.is_empty() {
                    store.insert_batch(batch);
                }
            });
        }
        drop(rx);

        // Producer: feed both sources. A send only fails when every worker
        // is gone — stop feeding and let the scope join report why.
        let sessions = dataset
            .sessions
            .iter()
            .map(|s| RawItem::Session(Box::new(s.clone())));
        let posts = forum
            .posts
            .iter()
            .map(|p| RawItem::Post(Box::new(p.clone())));
        for item in sessions.chain(posts) {
            if tx.send(item).is_err() {
                break;
            }
        }
        // Hang up so workers drain and exit before the scope joins them.
        drop(tx);
    });
    if let Err(payload) = joined {
        // A worker panicked; hand the caller its payload, not ours.
        std::panic::resume_unwind(payload);
    }

    store.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::SignalKind;
    use conference::dataset::{generate, DatasetConfig};
    use social::generator::{generate as gen_forum, ForumConfig};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn small_forum() -> Forum {
        let mut cfg = ForumConfig::default();
        cfg.end = cfg.start.offset(20);
        cfg.authors = 500;
        gen_forum(&cfg)
    }

    #[test]
    fn ingests_both_sources() {
        let store = SignalStore::new();
        let dataset = generate(&DatasetConfig::small(40, 5));
        let forum = small_forum();
        let n = ingest_all(&store, &dataset, &forum, 4);
        let expected = dataset.len() + dataset.rated_sessions().count() + forum.len();
        assert_eq!(n, expected);
        assert_eq!(store.count_kind(SignalKind::Implicit), dataset.len());
        assert_eq!(store.count_kind(SignalKind::Social), forum.len());
        assert_eq!(
            store.count_kind(SignalKind::Explicit),
            dataset.rated_sessions().count()
        );
    }

    #[test]
    fn worker_count_does_not_change_totals() {
        let dataset = generate(&DatasetConfig::small(25, 6));
        let forum = small_forum();
        let one = SignalStore::new();
        let eight = SignalStore::new();
        assert_eq!(
            ingest_all(&one, &dataset, &forum, 1),
            ingest_all(&eight, &dataset, &forum, 8)
        );
        assert_eq!(one.len(), eight.len());
        assert_eq!(one.date_range(), eight.date_range());
    }

    #[test]
    fn empty_sources_ingest_nothing() {
        let store = SignalStore::new();
        let n = ingest_all(&store, &CallDataset::default(), &Forum::default(), 2);
        assert_eq!(n, 0);
        assert!(store.is_empty());
    }

    #[test]
    fn worker_panic_is_surfaced_not_a_send_error() {
        // Regression: a dead worker pool used to make the *producer* panic
        // on `send(..).expect("workers alive")`, hiding the real cause. Now
        // the producer backs off and the worker's own panic reaches the
        // caller.
        let store = SignalStore::new();
        let dataset = generate(&DatasetConfig::small(200, 9));
        let forum = Forum::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            ingest_with(&store, &dataset, &forum, 2, |item, _| match item {
                RawItem::Session(_) => panic!("normaliser exploded"),
                RawItem::Post(p) => vec![Signal::from_post(p, &SentimentAnalyzer::default())],
            })
        }));
        let payload = result.expect_err("a worker panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(
            msg, "normaliser exploded",
            "caller must see the worker's original panic, got: {msg:?}"
        );
    }
}
