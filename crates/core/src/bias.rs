//! Social-network bias measurement and correction (§6).
//!
//! *"Social media is known to have its own bias (users reporting only
//! good/bad things, over-enthusiasm, bias due to socio-demographics). USaaS
//! aims to address such bias by leveraging multi-modal insights (like online
//! user signals, MOS) and aggregation of data across online (social)
//! media."*
//!
//! Two concrete instruments:
//!
//! * **Extremity bias** — people post when they feel strongly, so the share
//!   of strong-sentiment posts on a forum overstates how often real
//!   experience is extreme. [`extremity_bias`] quantifies it by comparing
//!   the forum's strong-post share against a multi-modal reference: the
//!   share of conferencing sessions whose (implicit-signal-predicted)
//!   experience is comparably extreme.
//! * **Geographic skew** — the poster population over-represents some
//!   countries. [`reweight_by_country`] recomputes any per-post score under
//!   weights that equalise each country's influence toward a target
//!   distribution (e.g. the subscriber footprint), the standard
//!   post-stratification fix.

use crate::signals::Payload;
use crate::store::SignalStore;
use analytics::AnalyticsError;
use sentiment::analyzer::SentimentAnalyzer;
use serde::{Deserialize, Serialize};
use social::post::Forum;
use std::collections::HashMap;

/// Measured extremity bias.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtremityBias {
    /// Share of forum posts with strong (≥ 0.7) sentiment either way.
    pub forum_strong_share: f64,
    /// Share of reference experiences that are comparably extreme.
    pub reference_extreme_share: f64,
    /// `forum_strong_share / reference_extreme_share` (> 1 ⇒ the forum
    /// over-reports extremes).
    pub amplification: f64,
}

/// Quantify extremity bias against a reference extreme-experience share
/// (e.g. the fraction of conferencing sessions with very high or very low
/// latent quality, from the implicit-signal side).
pub fn extremity_bias(
    forum: &Forum,
    reference_extreme_share: f64,
) -> Result<ExtremityBias, AnalyticsError> {
    if forum.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    if !(0.0..=1.0).contains(&reference_extreme_share) {
        return Err(AnalyticsError::InvalidParameter(
            "reference share must be in [0,1]",
        ));
    }
    let analyzer = SentimentAnalyzer::default();
    let strong = forum
        .posts
        .iter()
        .filter(|p| {
            let s = analyzer.score(&p.text());
            s.is_strong_positive() || s.is_strong_negative()
        })
        .count();
    let forum_strong_share = strong as f64 / forum.len() as f64;
    let amplification = if reference_extreme_share > 0.0 {
        forum_strong_share / reference_extreme_share
    } else {
        f64::INFINITY
    };
    Ok(ExtremityBias {
        forum_strong_share,
        reference_extreme_share,
        amplification,
    })
}

/// [`extremity_bias`] measured from the signal store instead of the raw
/// forum: walks the social signals in the store's full window through the
/// zero-copy [`SignalStore::for_each_between`] visitor and reuses the
/// sentiment scored at ingest time — no cloning, no re-analysis. On a store
/// fed by [`crate::ingest::ingest_all`] the result equals the forum path
/// exactly (ingest scores with the same default analyzer).
pub fn extremity_bias_signals(
    store: &SignalStore,
    reference_extreme_share: f64,
) -> Result<ExtremityBias, AnalyticsError> {
    if !(0.0..=1.0).contains(&reference_extreme_share) {
        return Err(AnalyticsError::InvalidParameter(
            "reference share must be in [0,1]",
        ));
    }
    let Some((from, to)) = store.date_range() else {
        return Err(AnalyticsError::Empty);
    };
    let mut total = 0usize;
    let mut strong = 0usize;
    store.for_each_between(from, to, |signal| {
        let Payload::Social(s) = &signal.payload else {
            return;
        };
        total += 1;
        if s.sentiment.is_strong_positive() || s.sentiment.is_strong_negative() {
            strong += 1;
        }
    });
    if total == 0 {
        return Err(AnalyticsError::Empty);
    }
    let forum_strong_share = strong as f64 / total as f64;
    let amplification = if reference_extreme_share > 0.0 {
        forum_strong_share / reference_extreme_share
    } else {
        f64::INFINITY
    };
    Ok(ExtremityBias {
        forum_strong_share,
        reference_extreme_share,
        amplification,
    })
}

/// A per-post score with its country, ready for reweighting.
#[derive(Debug, Clone, Copy)]
pub struct CountryScore<'a> {
    /// Author country.
    pub country: &'a str,
    /// The score (e.g. polarity, or 1.0/0.0 for strong-positive membership).
    pub score: f64,
}

/// Post-stratified mean: reweight per-country means toward a target country
/// distribution (weights normalised internally; countries absent from the
/// sample are dropped from the target and the rest renormalised).
pub fn reweight_by_country(
    scores: &[CountryScore<'_>],
    target_weights: &HashMap<&str, f64>,
) -> Result<f64, AnalyticsError> {
    if scores.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    let mut sums: HashMap<&str, (f64, usize)> = HashMap::new();
    for s in scores {
        let e = sums.entry(s.country).or_insert((0.0, 0));
        e.0 += s.score;
        e.1 += 1;
    }
    let mut total_weight = 0.0;
    let mut acc = 0.0;
    for (country, (sum, n)) in &sums {
        let w = target_weights.get(country).copied().unwrap_or(0.0);
        if w <= 0.0 {
            continue;
        }
        acc += w * (sum / *n as f64);
        total_weight += w;
    }
    if total_weight <= 0.0 {
        return Err(AnalyticsError::InvalidParameter(
            "no overlap between sample and target",
        ));
    }
    Ok(acc / total_weight)
}

/// Raw vs geography-corrected mean polarity of a forum slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoCorrectedPolarity {
    /// Unweighted mean polarity.
    pub raw: f64,
    /// Post-stratified mean polarity.
    pub corrected: f64,
}

/// Compute raw and country-corrected mean polarity over a forum under a
/// target country distribution.
pub fn geo_corrected_polarity(
    forum: &Forum,
    target_weights: &HashMap<&str, f64>,
) -> Result<GeoCorrectedPolarity, AnalyticsError> {
    if forum.is_empty() {
        return Err(AnalyticsError::Empty);
    }
    let analyzer = SentimentAnalyzer::default();
    let scored: Vec<(&str, f64)> = forum
        .posts
        .iter()
        .map(|p| (p.country, analyzer.score(&p.text()).polarity()))
        .collect();
    let raw_values: Vec<f64> = scored.iter().map(|(_, s)| *s).collect();
    let raw = analytics::mean(&raw_values)?;
    let country_scores: Vec<CountryScore<'_>> = scored
        .iter()
        .map(|(c, s)| CountryScore {
            country: c,
            score: *s,
        })
        .collect();
    let corrected = reweight_by_country(&country_scores, target_weights)?;
    Ok(GeoCorrectedPolarity { raw, corrected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use social::generator::{generate, ForumConfig};
    use std::sync::OnceLock;

    fn forum() -> &'static Forum {
        static F: OnceLock<Forum> = OnceLock::new();
        F.get_or_init(|| {
            let mut cfg = ForumConfig::default();
            cfg.end = cfg.start.offset(120);
            cfg.authors = 3000;
            generate(&cfg)
        })
    }

    #[test]
    fn forum_over_reports_extremes() {
        // Reference: say 10 % of real sessions are extreme experiences.
        let bias = extremity_bias(forum(), 0.10).unwrap();
        assert!(bias.forum_strong_share > 0.15, "{bias:?}");
        assert!(bias.amplification > 1.5, "{bias:?}");
    }

    #[test]
    fn extremity_bias_validation() {
        assert!(extremity_bias(&Forum::default(), 0.1).is_err());
        assert!(extremity_bias(forum(), 1.5).is_err());
        let inf = extremity_bias(forum(), 0.0).unwrap();
        assert!(inf.amplification.is_infinite());
    }

    #[test]
    fn store_backed_bias_matches_the_forum_path() {
        // Ingest the same forum into a store; the zero-copy signal walk
        // must reproduce the forum-side measurement exactly (the sentiment
        // was scored once, at ingest).
        let store = SignalStore::new();
        let dataset = conference::records::CallDataset::default();
        crate::ingest::ingest_all(&store, &dataset, forum(), 4);
        let via_store = extremity_bias_signals(&store, 0.10).unwrap();
        let via_forum = extremity_bias(forum(), 0.10).unwrap();
        assert_eq!(via_store, via_forum);
    }

    #[test]
    fn store_backed_bias_validation() {
        assert!(extremity_bias_signals(&SignalStore::new(), 0.1).is_err());
        let store = SignalStore::new();
        let dataset = conference::records::CallDataset::default();
        crate::ingest::ingest_all(&store, &dataset, forum(), 2);
        assert!(extremity_bias_signals(&store, -0.2).is_err());
        assert!(extremity_bias_signals(&store, 0.0)
            .unwrap()
            .amplification
            .is_infinite());
    }

    #[test]
    fn reweighting_shifts_toward_target_country() {
        let scores = vec![
            CountryScore {
                country: "US",
                score: 1.0,
            },
            CountryScore {
                country: "US",
                score: 1.0,
            },
            CountryScore {
                country: "US",
                score: 1.0,
            },
            CountryScore {
                country: "DE",
                score: -1.0,
            },
        ];
        let mut equal = HashMap::new();
        equal.insert("US", 0.5);
        equal.insert("DE", 0.5);
        let m = reweight_by_country(&scores, &equal).unwrap();
        assert!((m - 0.0).abs() < 1e-12, "equal weights should balance: {m}");
        let mut us_only = HashMap::new();
        us_only.insert("US", 1.0);
        assert_eq!(reweight_by_country(&scores, &us_only).unwrap(), 1.0);
    }

    #[test]
    fn reweighting_errors() {
        assert!(reweight_by_country(&[], &HashMap::new()).is_err());
        let scores = vec![CountryScore {
            country: "US",
            score: 1.0,
        }];
        let mut disjoint = HashMap::new();
        disjoint.insert("JP", 1.0);
        assert!(reweight_by_country(&scores, &disjoint).is_err());
    }

    #[test]
    fn geo_correction_runs_on_real_corpus() {
        // Target: flatten the US skew to 30 %.
        let mut target: HashMap<&str, f64> = HashMap::new();
        target.insert("US", 0.3);
        for c in &social::authors::COUNTRIES[1..8] {
            target.insert(c, 0.1);
        }
        let g = geo_corrected_polarity(forum(), &target).unwrap();
        assert!((-1.0..=1.0).contains(&g.raw));
        assert!((-1.0..=1.0).contains(&g.corrected));
        // The corrected value differs (the skew was real).
        assert!((g.raw - g.corrected).abs() > 1e-6, "{g:?}");
    }

    /// Empty inputs must surface as typed errors, never as a division by
    /// `forum.len() == 0` (the share computation divides by the post
    /// count, so the `is_empty` guard is what keeps NaN out).
    #[test]
    fn empty_inputs_are_typed_errors_not_nan() {
        let empty = Forum { posts: Vec::new() };
        assert_eq!(
            extremity_bias(&empty, 0.10).unwrap_err(),
            AnalyticsError::Empty
        );
        let store = SignalStore::new();
        assert_eq!(
            extremity_bias_signals(&store, 0.10).unwrap_err(),
            AnalyticsError::Empty
        );
        // And a zero reference share is the documented INFINITY, not NaN.
        let bias = extremity_bias(forum(), 0.0).unwrap();
        assert!(bias.amplification.is_infinite());
        assert!(bias.forum_strong_share.is_finite());
    }
}
