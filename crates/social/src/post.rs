//! Forum post structures — the `r/Starlink` stand-in corpus schema.

use analytics::time::Date;
use ocr::report::Provider;
use sentiment::corpus::TokenCorpus;
use serde::{Deserialize, Serialize};
use starlink::speedtest::SpeedTestResult;

/// What a post is about (ground truth used for validation; the `usaas`
/// pipelines never read it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PostTopic {
    /// General experience report ("how's your service?").
    Experience,
    /// A shared speed-test screenshot.
    SpeedShare,
    /// Outage report / outage discussion.
    Outage,
    /// Pre-order / availability chatter.
    Availability,
    /// Delivery logistics.
    Delivery,
    /// Roaming / portability discussion.
    Roaming,
    /// Pricing discussion.
    Pricing,
    /// Constellation news (launches, storms).
    Constellation,
    /// Hardware / setup questions.
    Hardware,
    /// Anything else.
    General,
}

/// The sentiment class the generator *intends* a post to carry. Ground truth
/// for calibrating the analyzer; pipelines only ever see the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SentimentClass {
    /// Clearly, strongly positive (should score ≥ 0.7 positive).
    StrongPositive,
    /// Mildly positive.
    MildPositive,
    /// Neutral / informational.
    Neutral,
    /// Mildly negative.
    MildNegative,
    /// Clearly, strongly negative (should score ≥ 0.7 negative).
    StrongNegative,
}

impl SentimentClass {
    /// Scalar polarity of the class.
    pub fn polarity(self) -> f64 {
        match self {
            SentimentClass::StrongPositive => 1.0,
            SentimentClass::MildPositive => 0.4,
            SentimentClass::Neutral => 0.0,
            SentimentClass::MildNegative => -0.4,
            SentimentClass::StrongNegative => -1.0,
        }
    }
}

/// A speed-test screenshot attached to a post: the noisy rendered text the
/// OCR pipeline consumes plus the ground-truth measurement behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Screenshot {
    /// The OCR input (noisy provider-styled text).
    pub ocr_text: String,
    /// Provider of the test.
    pub provider: Provider,
    /// Ground-truth measurement (validation only).
    pub truth: SpeedTestResult,
}

/// One forum post.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Post {
    /// Post id (dense, per-corpus).
    pub id: u64,
    /// Posting day.
    pub date: Date,
    /// Author id.
    pub author_id: u64,
    /// ISO-ish country code of the author.
    pub country: &'static str,
    /// Post title.
    pub title: String,
    /// Post body.
    pub body: String,
    /// Upvote count.
    pub upvotes: u32,
    /// Comment count.
    pub comments: u32,
    /// Attached screenshot, if any.
    pub screenshot: Option<Screenshot>,
    /// Ground-truth topic (validation only).
    pub topic: PostTopic,
    /// Ground-truth intended sentiment (validation only).
    pub intended: SentimentClass,
}

impl Post {
    /// Title and body concatenated — the text the NLP pipelines consume.
    ///
    /// This **allocates a fresh `String` per call**; hot loops should use
    /// [`Post::text_parts`] (borrowed) or, better, run on the tokenize-once
    /// [`Forum::token_corpus`] instead of re-reading post text at all.
    pub fn text(&self) -> String {
        format!("{}\n{}", self.title, self.body)
    }

    /// The post's text as borrowed parts, `[title, body]`, in the order
    /// [`Post::text`] concatenates them. Tokenizing the parts back to back
    /// yields exactly the tokens of `text()` — the `"\n"` joiner is a word
    /// boundary, and so is any title/body seam — without materialising the
    /// concatenated `String`.
    pub fn text_parts(&self) -> [&str; 2] {
        [&self.title, &self.body]
    }

    /// Engagement weight used by the emerging-topic miner (upvotes +
    /// comments).
    pub fn engagement_weight(&self) -> f64 {
        f64::from(self.upvotes) + f64::from(self.comments)
    }
}

/// The full simulated corpus.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Forum {
    /// All posts, sorted by date.
    pub posts: Vec<Post>,
}

impl Forum {
    /// Number of posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Posts on one day.
    pub fn on(&self, date: Date) -> impl Iterator<Item = &Post> {
        self.posts.iter().filter(move |p| p.date == date)
    }

    /// Posts in a closed date range.
    pub fn between(&self, from: Date, to: Date) -> impl Iterator<Item = &Post> {
        self.posts
            .iter()
            .filter(move |p| p.date >= from && p.date <= to)
    }

    /// Posts carrying screenshots.
    pub fn speed_shares(&self) -> impl Iterator<Item = &Post> {
        self.posts.iter().filter(|p| p.screenshot.is_some())
    }

    /// Tokenize the whole forum exactly once into an interned
    /// [`TokenCorpus`] (document `i` = post `i`, title then body), fanning
    /// construction out over up to `workers` threads. The corpus — ids,
    /// offsets, and vocabulary — is identical for every worker count, and
    /// each document's token sequence equals `tokenize(&post.text())`
    /// without allocating any of the intermediate `String`s.
    pub fn token_corpus(&self, workers: usize) -> TokenCorpus {
        TokenCorpus::build_with(self.posts.len(), workers, |i, emit| {
            let [title, body] = self.posts[i].text_parts();
            emit(title);
            emit(body);
        })
    }

    /// Earliest and latest post dates, `None` when empty.
    ///
    /// Scans the whole corpus: `posts` is a public `Vec` with no ordering
    /// guarantee (the generator emits it date-sorted, but callers may build
    /// or reorder forums however they like), so consumers needing the
    /// corpus window must not trust `first()`/`last()`.
    pub fn date_range(&self) -> Option<(Date, Date)> {
        let mut dates = self.posts.iter().map(|p| p.date);
        let first = dates.next()?;
        let (lo, hi) = dates.fold((first, first), |(lo, hi), d| (lo.min(d), hi.max(d)));
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(day: u8) -> Post {
        Post {
            id: 1,
            date: Date::from_ymd(2022, 4, day).unwrap(),
            author_id: 9,
            country: "US",
            title: "Outage?".into(),
            body: "Anyone else down?".into(),
            upvotes: 10,
            comments: 5,
            screenshot: None,
            topic: PostTopic::Outage,
            intended: SentimentClass::StrongNegative,
        }
    }

    #[test]
    fn date_range_ignores_post_order() {
        let mut forum = Forum::default();
        assert_eq!(forum.date_range(), None);
        // Deliberately unsorted: the range must come from min/max, not from
        // the first/last vec positions.
        for day in [17, 3, 25, 9] {
            forum.posts.push(post(day));
        }
        let lo = Date::from_ymd(2022, 4, 3).unwrap();
        let hi = Date::from_ymd(2022, 4, 25).unwrap();
        assert_eq!(forum.date_range(), Some((lo, hi)));
    }

    #[test]
    fn text_concatenates() {
        let p = post(22);
        assert_eq!(p.text(), "Outage?\nAnyone else down?");
        assert_eq!(p.text_parts(), ["Outage?", "Anyone else down?"]);
        assert_eq!(p.engagement_weight(), 15.0);
    }

    #[test]
    fn token_corpus_matches_text_tokenization() {
        let mut forum = Forum::default();
        for day in [21, 22, 23] {
            forum.posts.push(post(day));
        }
        forum.posts[1].title = String::new();
        forum.posts[2].body = "Köln résumé DON'T".into();
        for workers in [1, 4] {
            let corpus = forum.token_corpus(workers);
            assert_eq!(corpus.docs(), forum.len());
            for (i, p) in forum.posts.iter().enumerate() {
                assert_eq!(
                    corpus.doc_words(i),
                    sentiment::tokenize::tokenize(&p.text()),
                    "post {i} workers {workers}"
                );
            }
        }
        assert!(Forum::default().token_corpus(4).is_empty());
    }

    #[test]
    fn forum_filters() {
        let mut forum = Forum::default();
        forum.posts.push(post(21));
        forum.posts.push(post(22));
        forum.posts.push(post(22));
        assert_eq!(forum.len(), 3);
        assert_eq!(forum.on(Date::from_ymd(2022, 4, 22).unwrap()).count(), 2);
        assert_eq!(
            forum
                .between(
                    Date::from_ymd(2022, 4, 21).unwrap(),
                    Date::from_ymd(2022, 4, 21).unwrap()
                )
                .count(),
            1
        );
        assert_eq!(forum.speed_shares().count(), 0);
    }

    #[test]
    fn sentiment_class_polarity_ordering() {
        let ordered = [
            SentimentClass::StrongNegative,
            SentimentClass::MildNegative,
            SentimentClass::Neutral,
            SentimentClass::MildPositive,
            SentimentClass::StrongPositive,
        ];
        for w in ordered.windows(2) {
            assert!(w[0].polarity() < w[1].polarity());
        }
    }
}
