//! # social
//!
//! A Reddit-`r/Starlink`-like forum simulator driven by the ground-truth
//! event timeline in [`starlink`]. Because every post carries its intended
//! sentiment, topic, and (for screenshots) the true measurement, the `usaas`
//! pipelines built on this corpus can be *scored against truth* — precision
//! and recall of outage detection, recovery of the Fig. 7 speed curve,
//! lead-time of the roaming discovery — which the paper itself could not do
//! with real Reddit data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod authors;
pub mod generator;
pub mod perception;
pub mod post;
pub mod textgen;

pub use activity::ActivityParams;
pub use authors::{Author, AuthorPool, COUNTRIES};
pub use generator::{generate, ForumConfig};
pub use perception::{PerceptionModel, PerceptionParams};
pub use post::{Forum, Post, PostTopic, Screenshot, SentimentClass};
