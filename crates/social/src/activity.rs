//! Posting-rate and engagement (upvote/comment) models.
//!
//! §4.1 quotes the subreddit's vital signs: *"372 posts/week (average) …
//! The number of upvotes and comments … are 8,190 and 5,702 per week
//! (average)"*. The baseline posting rate grows with the subscriber base
//! (sub-linearly — most customers never post) and per-post engagement is
//! heavy-tailed (a few threads go viral), with means calibrated to those
//! weekly figures.

use analytics::dist::{Dist, Sampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Calibration constants for forum activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityParams {
    /// Baseline posts/day independent of the subscriber count.
    pub base_posts_per_day: f64,
    /// Additional posts/day per sqrt(thousand subscribers).
    pub posts_per_sqrt_kuser: f64,
    /// Upvote distribution per ordinary post.
    pub upvotes: Dist,
    /// Cap on upvotes (keeps weekly averages finite despite the heavy tail).
    pub upvote_cap: u32,
    /// Comment distribution per ordinary post.
    pub comments: Dist,
    /// Cap on comments.
    pub comment_cap: u32,
    /// Comment distribution for outage megathreads (press-covered outages
    /// collapse into a few threads with enormous comment counts).
    pub megathread_comments: Dist,
    /// Cap on megathread comments.
    pub megathread_comment_cap: u32,
}

impl Default for ActivityParams {
    fn default() -> ActivityParams {
        ActivityParams {
            base_posts_per_day: 24.0,
            posts_per_sqrt_kuser: 1.05,
            upvotes: Dist::Pareto {
                xm: 3.4,
                alpha: 1.16,
            },
            upvote_cap: 5000,
            comments: Dist::Pareto {
                xm: 2.2,
                alpha: 1.17,
            },
            comment_cap: 800,
            megathread_comments: Dist::Pareto {
                xm: 60.0,
                alpha: 1.2,
            },
            megathread_comment_cap: 4000,
        }
    }
}

impl ActivityParams {
    /// Baseline posting intensity (posts/day) for a subscriber base of
    /// `users` (absolute count).
    pub fn baseline_rate(&self, users: f64) -> f64 {
        self.base_posts_per_day + self.posts_per_sqrt_kuser * (users / 1000.0).max(0.0).sqrt()
    }

    /// Sample upvotes for a post; `boost` multiplies the draw (event posts
    /// and trending discoveries attract disproportionate votes).
    pub fn sample_upvotes<R: Rng + ?Sized>(&self, rng: &mut R, boost: f64) -> u32 {
        let v = self.upvotes.sample(rng) * boost.max(0.0);
        v.round().min(f64::from(self.upvote_cap)) as u32
    }

    /// Sample comments for an ordinary post.
    pub fn sample_comments<R: Rng + ?Sized>(&self, rng: &mut R, boost: f64) -> u32 {
        let v = self.comments.sample(rng) * boost.max(0.0);
        v.round().min(f64::from(self.comment_cap)) as u32
    }

    /// Sample comments for an outage megathread.
    pub fn sample_megathread_comments<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let v = self.megathread_comments.sample(rng);
        v.round().min(f64::from(self.megathread_comment_cap)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_rate_grows_with_users() {
        let p = ActivityParams::default();
        assert!(p.baseline_rate(10_000.0) < p.baseline_rate(1_000_000.0));
        // Roughly 27–60 posts/day across the study's subscriber range.
        assert!((24.0..35.0).contains(&p.baseline_rate(10_000.0)));
        assert!((45.0..75.0).contains(&p.baseline_rate(1_000_000.0)));
    }

    #[test]
    fn upvote_mean_calibrated_to_weekly_figure() {
        // 8,190 upvotes over 372 posts ⇒ ≈ 22 upvotes/post.
        let p = ActivityParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..60_000)
            .map(|_| f64::from(p.sample_upvotes(&mut rng, 1.0)))
            .collect();
        let mean = analytics::mean(&xs).unwrap();
        assert!((14.0..30.0).contains(&mean), "upvotes/post mean {mean}");
    }

    #[test]
    fn comment_mean_calibrated_to_weekly_figure() {
        // 5,702 comments over 372 posts ⇒ ≈ 15 comments/post.
        let p = ActivityParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..60_000)
            .map(|_| f64::from(p.sample_comments(&mut rng, 1.0)))
            .collect();
        let mean = analytics::mean(&xs).unwrap();
        assert!((10.0..21.0).contains(&mean), "comments/post mean {mean}");
    }

    #[test]
    fn megathreads_dwarf_ordinary_posts() {
        let p = ActivityParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mega: Vec<f64> = (0..5000)
            .map(|_| f64::from(p.sample_megathread_comments(&mut rng)))
            .collect();
        let normal: Vec<f64> = (0..5000)
            .map(|_| f64::from(p.sample_comments(&mut rng, 1.0)))
            .collect();
        assert!(analytics::mean(&mega).unwrap() > 8.0 * analytics::mean(&normal).unwrap());
    }

    #[test]
    fn boost_scales_and_caps_hold() {
        let p = ActivityParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            assert!(p.sample_upvotes(&mut rng, 100.0) <= p.upvote_cap);
            assert!(p.sample_comments(&mut rng, 100.0) <= p.comment_cap);
            assert_eq!(p.sample_upvotes(&mut rng, 0.0), 0);
        }
    }
}
