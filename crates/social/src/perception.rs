//! The "shifting fulcrum" perception model (§4.2).
//!
//! *"user sentiment is, in general, a reflection of both short-term and
//! long-term conditioning — users get acclimatized to their current network
//! conditions and give negative sentiment for any degradation in network
//! conditions even if such conditions are better than the past."*
//!
//! We model the population's *expectation* as an exponentially-weighted
//! moving average of the network median downlink (time constant ≈ four
//! months). A user's reaction to a measurement is driven by the *relative
//! gap* between the measurement and the expectation — not by the absolute
//! speed. This single mechanism produces both Fig. 7 anomalies:
//!
//! * Dec '21 speeds beat Apr '21 absolutely, but sit *below* the
//!   recently-conditioned expectation (the Sep '21 peak), so sentiment is
//!   drastically lower;
//! * Mar → Dec '22 speeds keep falling, but the *decline decelerates*, so
//!   the gap to the (falling) expectation shrinks and sentiment recovers.

use analytics::time::Date;
use rand::Rng;
use serde::{Deserialize, Serialize};
use starlink::capacity::SpeedModel;

use crate::post::SentimentClass;

/// Perception-model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionParams {
    /// EWMA time constant of the expectation (days).
    pub conditioning_days: f64,
    /// Gain converting relative speed gap to reaction score.
    pub gap_gain: f64,
    /// Std of per-user reaction noise.
    pub noise_std: f64,
    /// Weight of the author's disposition in the reaction score.
    pub disposition_weight: f64,
}

impl Default for PerceptionParams {
    fn default() -> PerceptionParams {
        PerceptionParams {
            conditioning_days: 60.0,
            gap_gain: 3.0,
            noise_std: 0.30,
            disposition_weight: 0.25,
        }
    }
}

/// Precomputed daily expectations over a window.
#[derive(Debug, Clone)]
pub struct PerceptionModel {
    start: Date,
    expectation: Vec<f64>,
    median: Vec<f64>,
    params: PerceptionParams,
}

impl PerceptionModel {
    /// Build the daily expectation series over `[start, end]` from the
    /// network speed model.
    pub fn new(
        model: &SpeedModel,
        start: Date,
        end: Date,
        params: PerceptionParams,
    ) -> PerceptionModel {
        let mut expectation = Vec::new();
        let mut median = Vec::new();
        let mut exp = model.median_downlink(start);
        for date in start.iter_through(end) {
            let med = model.median_downlink(date);
            exp += (med - exp) / params.conditioning_days.max(1.0);
            expectation.push(exp);
            median.push(med);
        }
        PerceptionModel {
            start,
            expectation,
            median,
            params,
        }
    }

    /// The conditioned expectation (Mbps) on `date` (clamped to the window).
    pub fn expectation(&self, date: Date) -> f64 {
        let idx = date
            .days_since(self.start)
            .clamp(0, self.expectation.len() as i32 - 1);
        self.expectation[idx as usize]
    }

    /// The network median (Mbps) on `date` (clamped to the window).
    pub fn network_median(&self, date: Date) -> f64 {
        let idx = date
            .days_since(self.start)
            .clamp(0, self.median.len() as i32 - 1);
        self.median[idx as usize]
    }

    /// Relative gap between an observed speed and the expectation.
    pub fn relative_gap(&self, date: Date, observed_mbps: f64) -> f64 {
        let exp = self.expectation(date).max(1.0);
        (observed_mbps - exp) / exp
    }

    /// Deterministic reaction score for an observation (before noise).
    pub fn reaction_score(&self, date: Date, observed_mbps: f64, disposition: f64) -> f64 {
        self.params.gap_gain * self.relative_gap(date, observed_mbps)
            + self.params.disposition_weight * disposition
    }

    /// Sample the sentiment class of a user reacting to an observed speed.
    pub fn react<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        date: Date,
        observed_mbps: f64,
        disposition: f64,
    ) -> SentimentClass {
        let score = self.reaction_score(date, observed_mbps, disposition)
            + self.params.noise_std * analytics::dist::standard_normal(rng);
        if score > 0.35 {
            SentimentClass::StrongPositive
        } else if score > 0.1 {
            SentimentClass::MildPositive
        } else if score > -0.1 {
            SentimentClass::Neutral
        } else if score > -0.35 {
            SentimentClass::MildNegative
        } else {
            SentimentClass::StrongNegative
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn model() -> PerceptionModel {
        PerceptionModel::new(
            &SpeedModel::default(),
            d(2021, 1, 1),
            d(2022, 12, 31),
            PerceptionParams::default(),
        )
    }

    #[test]
    fn expectation_lags_median() {
        let m = model();
        // During the 2021 ramp the expectation trails below the median…
        let apr = d(2021, 4, 15);
        assert!(m.expectation(apr) < m.network_median(apr));
        // …and during the 2022 decline it trails above.
        let jun = d(2022, 6, 15);
        assert!(m.expectation(jun) > m.network_median(jun));
    }

    #[test]
    fn dec21_feels_worse_than_apr21_despite_faster_network() {
        let m = model();
        let apr = d(2021, 4, 15);
        let dec = d(2021, 12, 15);
        assert!(
            m.network_median(dec) > m.network_median(apr),
            "premise: Dec is faster"
        );
        let apr_score = m.reaction_score(apr, m.network_median(apr), 0.0);
        let dec_score = m.reaction_score(dec, m.network_median(dec), 0.0);
        assert!(
            dec_score < apr_score - 0.1,
            "Dec'21 reaction {dec_score} should be well below Apr'21 {apr_score}"
        );
    }

    #[test]
    fn sentiment_recovers_while_speeds_keep_falling_in_2022() {
        let m = model();
        let mar = d(2022, 3, 15);
        let dec = d(2022, 12, 15);
        assert!(
            m.network_median(dec) < m.network_median(mar),
            "premise: speeds fall"
        );
        let mar_score = m.reaction_score(mar, m.network_median(mar), 0.0);
        let dec_score = m.reaction_score(dec, m.network_median(dec), 0.0);
        assert!(
            dec_score > mar_score,
            "Dec'22 reaction {dec_score} should beat Mar'22 {mar_score}"
        );
    }

    #[test]
    fn reactions_track_observed_speed() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let date = d(2022, 2, 1);
        let exp = m.expectation(date);
        let mut fast_pos = 0;
        let mut slow_neg = 0;
        let n = 500;
        for _ in 0..n {
            if m.react(&mut rng, date, exp * 1.6, 0.0) == SentimentClass::StrongPositive {
                fast_pos += 1;
            }
            if m.react(&mut rng, date, exp * 0.4, 0.0) == SentimentClass::StrongNegative {
                slow_neg += 1;
            }
        }
        assert!(
            fast_pos > n * 6 / 10,
            "fast observations should thrill: {fast_pos}/{n}"
        );
        assert!(
            slow_neg > n * 6 / 10,
            "slow observations should enrage: {slow_neg}/{n}"
        );
    }

    #[test]
    fn disposition_shifts_reactions() {
        let m = model();
        let date = d(2022, 2, 1);
        let exp = m.expectation(date);
        let fan = m.reaction_score(date, exp, 1.0);
        let hater = m.reaction_score(date, exp, -1.0);
        assert!(fan > hater);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn reaction_score_monotone_in_speed(
                days in 0i32..720, a in 1.0..300.0f64, b in 1.0..300.0f64
            ) {
                let m = model();
                let date = d(2021, 1, 1).offset(days);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(
                    m.reaction_score(date, lo, 0.0) <= m.reaction_score(date, hi, 0.0) + 1e-12
                );
            }

            #[test]
            fn expectation_positive(days in -100i32..1000) {
                let m = model();
                prop_assert!(m.expectation(d(2021, 1, 1).offset(days)) > 0.0);
            }
        }
    }

    #[test]
    fn clamps_outside_window() {
        let m = model();
        assert!(m.expectation(d(2019, 1, 1)) > 0.0);
        assert!(m.expectation(d(2024, 1, 1)) > 0.0);
    }
}
