//! Template-based post text generation.
//!
//! The corpus must be *analyzable*: the sentiment analyzer, keyword matcher,
//! n-gram counters, and OCR extractor all consume the generated text, so the
//! generator composes real sentences from phrase banks whose valence is
//! recoverable by the `sentiment` lexicon. Ground truth (intended class,
//! topic) is kept alongside each post so the pipelines can be *scored*.
//!
//! Outage posts come in two shapes, which is what reconciles Fig. 5a with
//! Fig. 6: press-covered outages collapse into a few keyword-dense megathread
//! style posts (heavy Fig. 6 keyword counts), while unreported outages spawn
//! floods of short, angry "is it down for anyone else?" posts (heavy Fig. 5a
//! strong-negative counts).

use crate::post::{PostTopic, SentimentClass};
use rand::Rng;

/// Strongly positive phrases (≥ two strong lexicon words each).
const STRONG_POS: &[&str] = &[
    "absolutely love it, amazing speeds tonight",
    "incredibly fast and totally reliable",
    "this service is fantastic, flawless streaming all week",
    "best internet we have ever had, rock solid",
    "blazing fast downloads, super impressed",
    "stellar performance, perfect for remote work",
];

/// Mildly positive phrases.
const MILD_POS: &[&str] = &[
    "works fine for our family",
    "pretty decent speeds overall",
    "happy with the service so far",
    "solid enough for video calls",
    "nice improvement over our old provider",
    "stable connection most evenings",
];

/// Neutral filler sentences.
const NEUTRAL: &[&str] = &[
    "installed the dish on the north side of the roof",
    "checking in from our cabin after the firmware update",
    "router placement took a while to figure out",
    "the kit arrived in a big cardboard box on tuesday",
    "curious what everyone else is seeing this month",
    "posting from the app while the cable run gets finished",
];

/// Mildly negative phrases.
const MILD_NEG: &[&str] = &[
    "bit slow during the evening hours",
    "somewhat disappointed with the speeds this week",
    "speeds dipped again around dinner",
    "a few annoying dropouts here and there",
    "not great during peak hours lately",
    "obstruction warnings keep popping up",
];

/// Strongly negative phrases (≥ two strong lexicon words each).
const STRONG_NEG: &[&str] = &[
    "absolutely terrible tonight, completely unusable",
    "constant disconnects all evening, this is awful",
    "worst service ever, totally broken again",
    "horrible lag and endless buffering, unacceptable",
    "this is a nightmare, everything keeps failing",
    "garbage performance, extremely frustrating",
];

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, bank: &[&'a str]) -> &'a str {
    bank[rng.gen_range(0..bank.len())]
}

/// Compose body sentences realising the intended sentiment class.
fn sentiment_sentences<R: Rng + ?Sized>(rng: &mut R, class: SentimentClass) -> Vec<String> {
    match class {
        SentimentClass::StrongPositive => vec![
            pick(rng, STRONG_POS).to_string(),
            pick(rng, STRONG_POS).to_string(),
        ],
        SentimentClass::MildPositive => vec![
            pick(rng, MILD_POS).to_string(),
            pick(rng, NEUTRAL).to_string(),
        ],
        SentimentClass::Neutral => vec![
            pick(rng, NEUTRAL).to_string(),
            pick(rng, NEUTRAL).to_string(),
        ],
        SentimentClass::MildNegative => vec![
            pick(rng, MILD_NEG).to_string(),
            pick(rng, NEUTRAL).to_string(),
        ],
        SentimentClass::StrongNegative => vec![
            pick(rng, STRONG_NEG).to_string(),
            pick(rng, STRONG_NEG).to_string(),
        ],
    }
}

/// A generated title/body pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedText {
    /// Post title.
    pub title: String,
    /// Post body.
    pub body: String,
}

/// Compose a generic post for a topic, sentiment class, and topic words.
pub fn compose<R: Rng + ?Sized>(
    rng: &mut R,
    topic: PostTopic,
    class: SentimentClass,
    topic_words: &[&str],
) -> GeneratedText {
    let title = match topic {
        PostTopic::Experience => "Starlink experience update".to_string(),
        PostTopic::SpeedShare => "Sharing my speed test results".to_string(),
        PostTopic::Outage => "Service problems right now?".to_string(),
        PostTopic::Availability => "Ordering and availability".to_string(),
        PostTopic::Delivery => "Terminal delivery status".to_string(),
        PostTopic::Roaming => "Using the dish away from home".to_string(),
        PostTopic::Pricing => "Subscription pricing thoughts".to_string(),
        PostTopic::Constellation => "Constellation news".to_string(),
        PostTopic::Hardware => "Hardware and setup question".to_string(),
        PostTopic::General => "General discussion".to_string(),
    };
    let mut sentences = sentiment_sentences(rng, class);
    if !topic_words.is_empty() {
        let a = topic_words[rng.gen_range(0..topic_words.len())];
        let b = topic_words[rng.gen_range(0..topic_words.len())];
        sentences.push(format!("everyone here keeps talking about {a} and {b}"));
    }
    GeneratedText {
        title,
        body: sentences.join(". "),
    }
}

/// Compose a megathread-style post for a **press-covered** outage: long,
/// keyword-dense status updates (this is what dominates Fig. 6).
pub fn compose_reported_outage<R: Rng + ?Sized>(rng: &mut R) -> GeneratedText {
    let hour = rng.gen_range(6..23);
    let title = "Outage megathread: service down worldwide".to_string();
    let body = format!(
        "official outage thread. the service went down around {hour}:00 and stayed down for \
         hours. downdetector shows a massive outage and the dish reports offline with no signal. \
         many regions are still disconnected and the app keeps showing the network as down. \
         terrible timing, completely unusable until things are restored. updates below as the \
         outage develops."
    );
    GeneratedText { title, body }
}

/// Compose a short confused/angry post for an **unreported** outage: the
/// Apr 22 '22 flood (this is what dominates the Fig. 5a third peak).
pub fn compose_unreported_outage<R: Rng + ?Sized>(rng: &mut R) -> GeneratedText {
    let titles = [
        "Is it down for anyone else??",
        "Dish says offline, nothing works",
        "Connection just died",
        "No internet all of a sudden",
    ];
    // NOTE: phrasing deliberately avoids negator words ("nothing", "no",
    // "without") within three tokens before a sentiment word — the analyzer
    // would flip the valence, which is correct behaviour but wrong intent.
    let bodies = [
        "everything died at once, completely unusable right now. dish went offline and the \
         whole evening is ruined",
        "service dropped with zero warning, this is terrible and support is useless. \
         absolutely furious right now",
        "dish shows disconnected, horrible timing during my meeting. totally broken",
        "our connection is offline and support is silent. this is frustrating and totally \
         unacceptable",
    ];
    GeneratedText {
        title: titles[rng.gen_range(0..titles.len())].to_string(),
        body: bodies[rng.gen_range(0..bodies.len())].to_string(),
    }
}

/// Compose a roaming-discovery post (the §4.1 early-detection target): the
/// exact phrases the paper observed trending — "roaming" and "roaming
/// enabled" — with positive sentiment.
pub fn compose_roaming<R: Rng + ?Sized>(rng: &mut R, class: SentimentClass) -> GeneratedText {
    let titles = [
        "Roaming is working!",
        "Took the dish on the road - roaming enabled?",
        "Roaming works across the state line",
        "Mobile roaming seems enabled now",
    ];
    let mut sentences = sentiment_sentences(rng, class);
    sentences.push("roaming enabled on our account and roaming works far from home".to_string());
    GeneratedText {
        title: titles[rng.gen_range(0..titles.len())].to_string(),
        body: sentences.join(". "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sentiment::analyzer::SentimentAnalyzer;
    use sentiment::keywords::KeywordDictionary;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn strong_classes_are_recovered_by_analyzer() {
        let mut r = rng();
        let analyzer = SentimentAnalyzer::default();
        let mut pos_hits = 0;
        let mut neg_hits = 0;
        let n = 300;
        for _ in 0..n {
            let pos = compose(
                &mut r,
                PostTopic::Experience,
                SentimentClass::StrongPositive,
                &[],
            );
            if analyzer
                .score(&format!("{}\n{}", pos.title, pos.body))
                .is_strong_positive()
            {
                pos_hits += 1;
            }
            let neg = compose(
                &mut r,
                PostTopic::Experience,
                SentimentClass::StrongNegative,
                &[],
            );
            if analyzer
                .score(&format!("{}\n{}", neg.title, neg.body))
                .is_strong_negative()
            {
                neg_hits += 1;
            }
        }
        assert!(
            pos_hits as f64 / n as f64 > 0.85,
            "strong-pos recovery {pos_hits}/{n}"
        );
        assert!(
            neg_hits as f64 / n as f64 > 0.85,
            "strong-neg recovery {neg_hits}/{n}"
        );
    }

    #[test]
    fn neutral_posts_stay_neutral() {
        let mut r = rng();
        let analyzer = SentimentAnalyzer::default();
        let mut strong = 0;
        for _ in 0..200 {
            let t = compose(&mut r, PostTopic::Hardware, SentimentClass::Neutral, &[]);
            let s = analyzer.score(&t.body);
            if s.is_strong_positive() || s.is_strong_negative() {
                strong += 1;
            }
        }
        assert!(strong < 10, "neutral posts misread as strong: {strong}");
    }

    #[test]
    fn reported_outage_is_keyword_dense() {
        let mut r = rng();
        let dict = KeywordDictionary::outages();
        let counts: Vec<usize> = (0..50)
            .map(|_| {
                let t = compose_reported_outage(&mut r);
                dict.count_matches(&format!("{}\n{}", t.title, t.body))
            })
            .collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(mean >= 6.0, "megathread keyword density {mean}");
    }

    #[test]
    fn unreported_outage_fewer_keywords_but_strongly_negative() {
        let mut r = rng();
        let dict = KeywordDictionary::outages();
        let analyzer = SentimentAnalyzer::default();
        let mut strong = 0;
        let mut kw_total = 0usize;
        let n = 100;
        for _ in 0..n {
            let t = compose_unreported_outage(&mut r);
            let text = format!("{}\n{}", t.title, t.body);
            kw_total += dict.count_matches(&text);
            if analyzer.score(&text).is_strong_negative() {
                strong += 1;
            }
        }
        let kw_mean = kw_total as f64 / n as f64;
        assert!(
            (1.0..=5.0).contains(&kw_mean),
            "flood-post keyword density {kw_mean}"
        );
        assert!(
            strong as f64 / n as f64 > 0.7,
            "flood posts strong-neg rate {strong}/{n}"
        );
    }

    #[test]
    fn roaming_posts_carry_the_trending_bigram() {
        let mut r = rng();
        let analyzer = SentimentAnalyzer::default();
        for _ in 0..50 {
            let t = compose_roaming(&mut r, SentimentClass::StrongPositive);
            let text = format!("{} {}", t.title, t.body).to_lowercase();
            assert!(text.contains("roaming"), "{text}");
            assert!(analyzer.score(&text).polarity() > 0.0);
        }
    }

    #[test]
    fn topic_words_injected() {
        let mut r = rng();
        let t = compose(
            &mut r,
            PostTopic::Pricing,
            SentimentClass::MildNegative,
            &["price"],
        );
        assert!(t.body.contains("price"));
    }
}
