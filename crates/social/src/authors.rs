//! The author population and its biases.
//!
//! §6 of the paper flags *"the social network bias (users reporting only
//! good/bad things, over-enthusiasm, bias due to socio-demographics)"*. The
//! author pool models that explicitly: each author has a disposition that
//! shifts the sentiment of what they write, an extremity bias (people post
//! when they have something strong to say), and a home country — the
//! subreddit skews heavily toward the US and other early-coverage markets.

use analytics::dist::{weighted_index, Dist, Sampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Canonical country list (ordered by subreddit share; outage scopes take
/// prefixes of this list).
pub const COUNTRIES: &[&str] = &[
    "US", "CA", "UK", "DE", "AU", "FR", "NZ", "MX", "BR", "CL", "IT", "ES", "NL", "BE", "AT", "PT",
    "IE", "PL", "SE", "NO", "DK", "FI", "CH", "JP",
];

/// Share of posts from each country (US-heavy, long tail).
pub fn country_weights() -> Vec<f64> {
    let mut w = vec![0.60, 0.10, 0.07];
    // Long tail splits the remaining 23 % geometrically.
    let mut rest = 0.23;
    for _ in 3..COUNTRIES.len() {
        let share = rest * 0.22;
        w.push(share);
        rest -= share;
    }
    // Dump the remainder on the last entry.
    let last = w.len() - 1;
    w[last] += rest;
    w
}

/// One forum author.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Author {
    /// Stable author id.
    pub id: u64,
    /// Home country (index into [`COUNTRIES`]).
    pub country_idx: usize,
    /// Disposition in `[-1, 1]`: shifts the sentiment of everything they
    /// write (fanboys and haters both exist).
    pub disposition: f64,
    /// Extremity bias ≥ 0: how much the author amplifies whatever sentiment
    /// they express.
    pub extremity: f64,
}

impl Author {
    /// Country code.
    pub fn country(&self) -> &'static str {
        COUNTRIES[self.country_idx]
    }
}

/// A fixed pool of authors sampled once per corpus.
#[derive(Debug, Clone)]
pub struct AuthorPool {
    authors: Vec<Author>,
}

impl AuthorPool {
    /// Sample a pool of `n` authors.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, n: usize) -> AuthorPool {
        let weights = country_weights();
        let disposition = Dist::Normal {
            mean: 0.05,
            std: 0.35,
        };
        let extremity = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.4,
        };
        let authors = (0..n.max(1))
            .map(|id| Author {
                id: id as u64,
                country_idx: weighted_index(rng, &weights).unwrap_or(0),
                disposition: disposition.sample(rng).clamp(-1.0, 1.0),
                extremity: extremity.sample(rng).clamp(0.3, 4.0),
            })
            .collect();
        AuthorPool { authors }
    }

    /// Number of authors.
    pub fn len(&self) -> usize {
        self.authors.len()
    }

    /// True when empty (cannot happen via [`AuthorPool::sample`]).
    pub fn is_empty(&self) -> bool {
        self.authors.is_empty()
    }

    /// Pick a random author.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> &Author {
        &self.authors[rng.gen_range(0..self.authors.len())]
    }

    /// Pick a random author from one of the given countries (used for
    /// outage posts scoped to affected countries). Falls back to any author
    /// if the pool has nobody there.
    pub fn pick_from_countries<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        countries: &[&'static str],
    ) -> &Author {
        let candidates: Vec<&Author> = self
            .authors
            .iter()
            .filter(|a| countries.contains(&a.country()))
            .collect();
        if candidates.is_empty() {
            self.pick(rng)
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn country_weights_sum_to_one() {
        let w = country_weights();
        assert_eq!(w.len(), COUNTRIES.len());
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sum {s}");
        assert!(w[0] > 0.5, "US-heavy skew expected");
    }

    #[test]
    fn pool_covers_many_countries() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = AuthorPool::sample(&mut rng, 5000);
        assert_eq!(pool.len(), 5000);
        let distinct: std::collections::HashSet<&str> =
            (0..2000).map(|_| pool.pick(&mut rng).country()).collect();
        assert!(distinct.len() >= 10, "only {} countries", distinct.len());
        let us = (0..5000)
            .filter(|_| pool.pick(&mut rng).country() == "US")
            .count();
        let share = us as f64 / 5000.0;
        assert!((0.5..0.7).contains(&share), "US share {share}");
    }

    #[test]
    fn scoped_pick_respects_countries() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = AuthorPool::sample(&mut rng, 3000);
        for _ in 0..200 {
            let a = pool.pick_from_countries(&mut rng, &["DE", "FR"]);
            assert!(a.country() == "DE" || a.country() == "FR");
        }
        // Impossible scope falls back gracefully.
        let a = pool.pick_from_countries(&mut rng, &["XX"]);
        assert!(COUNTRIES.contains(&a.country()));
    }

    #[test]
    fn dispositions_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = AuthorPool::sample(&mut rng, 2000);
        let positive = (0..2000)
            .filter(|_| pool.pick(&mut rng).disposition > 0.0)
            .count();
        assert!(
            positive > 600 && positive < 1600,
            "positive dispositions {positive}"
        );
    }
}
