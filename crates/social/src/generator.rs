//! The end-to-end forum simulation (Jan '21 – Dec '22).
//!
//! Each day's posting intensity is the subscriber-driven baseline times
//! `1 + Σ buzz` over the active ground-truth events; each post is either
//! event-driven (topic, sentiment, and author scope taken from the event) or
//! baseline (experience reports and speed-test shares driven by the
//! perception model, plus neutral hardware/general chatter). The calibration
//! constants reproduce the paper's §4.1 activity figures and the Fig. 5a
//! peak ordering (pre-orders > delay e-mail > unreported Apr 22 outage >
//! press-covered outages, whose discussion collapses into keyword-dense
//! megathreads that instead dominate Fig. 6).

use crate::activity::ActivityParams;
use crate::authors::{AuthorPool, COUNTRIES};
use crate::perception::{PerceptionModel, PerceptionParams};
use crate::post::{Forum, Post, PostTopic, Screenshot, SentimentClass};
use crate::textgen;
use analytics::dist::{poisson, standard_normal, weighted_index};
use analytics::time::Date;
use ocr::noise::NoiseModel;
use ocr::report::{Provider, SpeedTestReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use starlink::capacity::SpeedModel;
use starlink::events::{named_events, EventKind, TimelineEvent};
use starlink::outages::{outage_timeline, Outage, TransientOutageConfig};
use starlink::speedtest::sample_speed_test;

/// Buzz coefficient for press-covered outages (megathread consolidation
/// keeps the *post* count low).
const REPORTED_OUTAGE_BUZZ: f64 = 0.9;
/// Buzz coefficient for unreported outages (everyone posts "is it down?").
const UNREPORTED_OUTAGE_BUZZ: f64 = 2.7;

/// Forum-simulation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForumConfig {
    /// RNG seed; the corpus is a pure function of the config.
    pub seed: u64,
    /// First day (paper: Jan '21).
    pub start: Date,
    /// Last day (paper: Dec '22).
    pub end: Date,
    /// Author-pool size.
    pub authors: usize,
    /// Transient-outage generator config.
    pub transients: TransientOutageConfig,
    /// Perception-model constants.
    pub perception: PerceptionParams,
    /// Activity constants.
    pub activity: ActivityParams,
    /// Probability a baseline post is a speed-test share (tuned to the
    /// paper's ~1750 shares over the window).
    pub speedshare_prob: f64,
    /// OCR noise applied to screenshot renders.
    pub ocr_noise: NoiseModel,
    /// Ablation switch: when `false`, no ground-truth events (named events
    /// or outages) drive the corpus — only baseline chatter. The detection
    /// pipelines must then find *nothing*, which is the falsifiability check
    /// for the whole §4 reproduction.
    pub events_enabled: bool,
}

impl Default for ForumConfig {
    fn default() -> ForumConfig {
        ForumConfig {
            seed: 0x50C1A2,
            start: Date::from_ymd(2021, 1, 1).expect("valid date"),
            end: Date::from_ymd(2022, 12, 31).expect("valid date"),
            authors: 20_000,
            transients: TransientOutageConfig::default(),
            perception: PerceptionParams::default(),
            activity: ActivityParams::default(),
            speedshare_prob: 0.062,
            ocr_noise: NoiseModel::light(),
            events_enabled: true,
        }
    }
}

/// One active buzz source on a given day.
enum Driving<'a> {
    Named(&'a TimelineEvent),
    Outage(&'a Outage),
}

fn outage_buzz(outage: &Outage) -> f64 {
    let scale = outage.severity * (1.0 + f64::from(outage.countries) / 15.0);
    if outage.reported_in_press {
        REPORTED_OUTAGE_BUZZ * scale
    } else {
        UNREPORTED_OUTAGE_BUZZ * scale
    }
}

fn decayed(buzz: f64, event_date: Date, date: Date, decay_days: f64) -> f64 {
    let days = date.days_since(event_date);
    if days < 0 {
        0.0
    } else {
        buzz * (-(days as f64) / decay_days.max(0.1)).exp()
    }
}

/// Map a ground-truth event kind to a post topic.
fn topic_for(kind: EventKind) -> PostTopic {
    match kind {
        EventKind::Availability => PostTopic::Availability,
        EventKind::Delivery => PostTopic::Delivery,
        EventKind::Outage => PostTopic::Outage,
        EventKind::FeatureDiscovery | EventKind::FeatureAnnouncement => PostTopic::Roaming,
        EventKind::Pricing => PostTopic::Pricing,
        EventKind::Constellation => PostTopic::Constellation,
        EventKind::Expansion => PostTopic::General,
    }
}

/// Sample a sentiment class around a target polarity.
fn class_from_polarity<R: Rng + ?Sized>(rng: &mut R, polarity: f64) -> SentimentClass {
    let score = polarity + 0.25 * standard_normal(rng);
    if score > 0.5 {
        SentimentClass::StrongPositive
    } else if score > 0.15 {
        SentimentClass::MildPositive
    } else if score > -0.15 {
        SentimentClass::Neutral
    } else if score > -0.5 {
        SentimentClass::MildNegative
    } else {
        SentimentClass::StrongNegative
    }
}

/// Generate the full corpus.
pub fn generate(config: &ForumConfig) -> Forum {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let speed_model = SpeedModel::default();
    let perception =
        PerceptionModel::new(&speed_model, config.start, config.end, config.perception);
    let authors = AuthorPool::sample(&mut rng, config.authors);
    let named: Vec<TimelineEvent> = if config.events_enabled {
        named_events()
            .into_iter()
            .filter(|e| e.date >= config.start && e.date <= config.end)
            .collect()
    } else {
        Vec::new()
    };
    let outages = if config.events_enabled {
        outage_timeline(config.start, config.end, &config.transients)
    } else {
        Vec::new()
    };

    let mut posts: Vec<Post> = Vec::new();
    let mut next_id = 0u64;
    for date in config.start.iter_through(config.end) {
        // Active buzz sources (within a 14-day tail of their event date).
        let mut driving: Vec<(Driving<'_>, f64)> = Vec::new();
        for e in &named {
            let b = decayed(e.buzz, e.date, date, e.decay_days);
            if b > 0.02 {
                driving.push((Driving::Named(e), b));
            }
        }
        for o in &outages {
            let b = decayed(outage_buzz(o), o.date, date, 1.5);
            if b > 0.02 {
                driving.push((Driving::Outage(o), b));
            }
        }
        let total_buzz: f64 = driving.iter().map(|(_, b)| b).sum();
        let users = speed_model.subscribers.users_at(date);
        let lambda = config.activity.baseline_rate(users) * (1.0 + total_buzz);
        let n = poisson(&mut rng, lambda);

        for _ in 0..n {
            let event_driven = rng.gen::<f64>() < total_buzz / (1.0 + total_buzz);
            let post = if event_driven {
                let weights: Vec<f64> = driving.iter().map(|(_, b)| *b).collect();
                let idx = weighted_index(&mut rng, &weights).unwrap_or(0);
                match driving[idx].0 {
                    Driving::Named(e) => {
                        compose_named_event_post(&mut rng, config, &authors, date, e, next_id)
                    }
                    Driving::Outage(o) => {
                        compose_outage_post(&mut rng, config, &authors, date, o, next_id)
                    }
                }
            } else {
                compose_baseline_post(
                    &mut rng,
                    config,
                    &authors,
                    &perception,
                    &speed_model,
                    date,
                    next_id,
                )
            };
            next_id += 1;
            posts.push(post);
        }
    }
    Forum { posts }
}

fn compose_named_event_post(
    rng: &mut StdRng,
    config: &ForumConfig,
    authors: &AuthorPool,
    date: Date,
    event: &TimelineEvent,
    id: u64,
) -> Post {
    let author = *authors.pick(rng);
    let class = class_from_polarity(rng, event.polarity + 0.2 * author.disposition);
    let is_roaming = event.topics.contains(&"roaming");
    let text = if is_roaming {
        textgen::compose_roaming(rng, class)
    } else {
        textgen::compose(rng, topic_for(event.kind), class, event.topics)
    };
    // Trending discoveries attract disproportionate engagement — the signal
    // the paper's upvote/comment-weighted miner keys on.
    let boost = if event.kind == EventKind::FeatureDiscovery {
        4.0
    } else {
        2.0
    };
    Post {
        id,
        date,
        author_id: author.id,
        country: author.country(),
        title: text.title,
        body: text.body,
        upvotes: config.activity.sample_upvotes(rng, boost),
        comments: config.activity.sample_comments(rng, boost),
        screenshot: None,
        topic: topic_for(event.kind),
        intended: class,
    }
}

fn compose_outage_post(
    rng: &mut StdRng,
    config: &ForumConfig,
    authors: &AuthorPool,
    date: Date,
    outage: &Outage,
    id: u64,
) -> Post {
    let affected = &COUNTRIES[..(outage.countries as usize).clamp(1, COUNTRIES.len())];
    let author = *authors.pick_from_countries(rng, affected);
    let (text, comments) = if outage.reported_in_press {
        (
            textgen::compose_reported_outage(rng),
            config.activity.sample_megathread_comments(rng),
        )
    } else {
        (
            textgen::compose_unreported_outage(rng),
            config.activity.sample_comments(rng, 1.5),
        )
    };
    Post {
        id,
        date,
        author_id: author.id,
        country: author.country(),
        title: text.title,
        body: text.body,
        upvotes: config.activity.sample_upvotes(rng, 2.0),
        comments,
        screenshot: None,
        topic: PostTopic::Outage,
        intended: SentimentClass::StrongNegative,
    }
}

fn compose_baseline_post(
    rng: &mut StdRng,
    config: &ForumConfig,
    authors: &AuthorPool,
    perception: &PerceptionModel,
    speed_model: &SpeedModel,
    date: Date,
    id: u64,
) -> Post {
    let author = *authors.pick(rng);
    // Baseline topic roulette.
    let r: f64 = rng.gen();
    let speedshare = r < config.speedshare_prob;
    let topic = if speedshare {
        PostTopic::SpeedShare
    } else if r < config.speedshare_prob + 0.32 {
        PostTopic::Experience
    } else if r < config.speedshare_prob + 0.57 {
        PostTopic::Hardware
    } else if r < config.speedshare_prob + 0.70 {
        PostTopic::Constellation
    } else if r < config.speedshare_prob + 0.75 {
        PostTopic::Pricing
    } else {
        PostTopic::General
    };

    let mut screenshot = None;
    let class = match topic {
        PostTopic::SpeedShare => {
            let truth = sample_speed_test(rng, speed_model, date);
            let provider_idx =
                weighted_index(rng, &Provider::ALL.map(|p| p.mixture_weight())).unwrap_or(0);
            let provider = Provider::ALL[provider_idx];
            let report = SpeedTestReport {
                provider,
                date,
                downlink_mbps: truth.downlink_mbps,
                uplink_mbps: truth.uplink_mbps,
                latency_ms: truth.latency_ms,
            };
            let rendered = ocr::render::render(rng, &report);
            let ocr_text = config.ocr_noise.apply(rng, &rendered);
            screenshot = Some(Screenshot {
                ocr_text,
                provider,
                truth,
            });
            // The poster's sentiment reflects their sustained experience,
            // of which the shared one-off measurement is only a part.
            let experienced = 0.3 * truth.downlink_mbps + 0.7 * perception.network_median(date);
            perception.react(rng, date, experienced, author.disposition)
        }
        PostTopic::Experience => {
            // Experience reports react to the poster's own (noisy) sense of
            // recent speeds.
            let observed = perception.network_median(date)
                * (1.0 + 0.15 * standard_normal(rng)).clamp(0.3, 2.5);
            perception.react(rng, date, observed, author.disposition)
        }
        PostTopic::Pricing => class_from_polarity(rng, -0.25 + 0.2 * author.disposition),
        PostTopic::Hardware | PostTopic::General | PostTopic::Constellation => {
            class_from_polarity(rng, 0.2 * author.disposition)
        }
        _ => SentimentClass::Neutral,
    };

    let text = textgen::compose(
        rng,
        topic,
        class,
        match topic {
            PostTopic::SpeedShare => &["speedtest", "results", "download"],
            PostTopic::Experience => &["service", "speeds"],
            PostTopic::Hardware => &["dish", "router", "mount"],
            PostTopic::Pricing => &["price", "monthly"],
            PostTopic::Constellation => &["launch", "satellites"],
            _ => &[],
        },
    );
    Post {
        id,
        date,
        author_id: author.id,
        country: author.country(),
        title: text.title,
        body: text.body,
        upvotes: config.activity.sample_upvotes(rng, 1.0),
        comments: config.activity.sample_comments(rng, 1.0),
        screenshot,
        topic,
        intended: class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ForumConfig {
        ForumConfig {
            authors: 3000,
            ..ForumConfig::default()
        }
    }

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    #[test]
    fn weekly_activity_matches_paper() {
        let forum = generate(&small_config());
        let weeks = 104.4;
        let posts_per_week = forum.len() as f64 / weeks;
        assert!(
            (300.0..460.0).contains(&posts_per_week),
            "posts/week {posts_per_week} (paper: 372)"
        );
        let upvotes: f64 = forum.posts.iter().map(|p| f64::from(p.upvotes)).sum();
        let comments: f64 = forum.posts.iter().map(|p| f64::from(p.comments)).sum();
        let up_week = upvotes / weeks;
        let com_week = comments / weeks;
        assert!(
            (4500.0..14000.0).contains(&up_week),
            "upvotes/week {up_week} (paper: 8190)"
        );
        assert!(
            (3000.0..11000.0).contains(&com_week),
            "comments/week {com_week} (paper: 5702)"
        );
    }

    #[test]
    fn speedshare_volume_matches_paper() {
        let forum = generate(&small_config());
        let shares = forum.speed_shares().count();
        assert!(
            (1300..2400).contains(&shares),
            "speed shares {shares} (paper: ~1750)"
        );
    }

    #[test]
    fn event_days_spike() {
        let forum = generate(&small_config());
        let preorder_day = forum.on(d(2021, 2, 9)).count();
        let ordinary_day = forum.on(d(2021, 3, 16)).count();
        assert!(
            preorder_day > ordinary_day * 4,
            "pre-order day {preorder_day} vs ordinary {ordinary_day}"
        );
    }

    #[test]
    fn unreported_outage_floods_posts_reported_floods_comments() {
        let forum = generate(&small_config());
        let apr22: Vec<&Post> = forum
            .on(d(2022, 4, 22))
            .filter(|p| p.topic == PostTopic::Outage)
            .collect();
        let jan7: Vec<&Post> = forum
            .on(d(2022, 1, 7))
            .filter(|p| p.topic == PostTopic::Outage)
            .collect();
        assert!(
            apr22.len() > jan7.len(),
            "Apr 22 outage posts {} should exceed Jan 7 {}",
            apr22.len(),
            jan7.len()
        );
        let apr_comments: f64 =
            apr22.iter().map(|p| f64::from(p.comments)).sum::<f64>() / apr22.len() as f64;
        let jan_comments: f64 =
            jan7.iter().map(|p| f64::from(p.comments)).sum::<f64>() / jan7.len() as f64;
        assert!(
            jan_comments > 3.0 * apr_comments,
            "megathread comments {jan_comments} vs flood {apr_comments}"
        );
    }

    #[test]
    fn apr22_posts_come_from_fourteen_countries() {
        let forum = generate(&small_config());
        let countries: std::collections::HashSet<&str> = forum
            .on(d(2022, 4, 22))
            .filter(|p| p.topic == PostTopic::Outage)
            .map(|p| p.country)
            .collect();
        assert!(
            (8..=14).contains(&countries.len()),
            "Apr 22 outage countries {} (paper: 14)",
            countries.len()
        );
        let us_reports = forum
            .on(d(2022, 4, 22))
            .filter(|p| p.topic == PostTopic::Outage && p.country == "US")
            .count();
        assert!(us_reports >= 80, "US reports {us_reports} (paper: ~190)");
    }

    #[test]
    fn roaming_chatter_precedes_ceo_tweet() {
        let forum = generate(&small_config());
        let before_discovery = forum
            .between(d(2022, 1, 1), d(2022, 2, 13))
            .filter(|p| p.text().to_lowercase().contains("roaming"))
            .count();
        let discovery_window = forum
            .between(d(2022, 2, 14), d(2022, 3, 2))
            .filter(|p| p.text().to_lowercase().contains("roaming"))
            .count();
        assert_eq!(
            before_discovery, 0,
            "roaming should be absent before discovery"
        );
        assert!(
            discovery_window >= 5,
            "discovery-window roaming posts {discovery_window}"
        );
    }

    #[test]
    fn corpus_deterministic_and_ordered() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.posts.len(), b.posts.len());
        assert_eq!(a.posts[..50], b.posts[..50]);
        assert!(a.posts.windows(2).all(|w| w[0].date <= w[1].date));
        assert!(a.posts.windows(2).all(|w| w[0].id < w[1].id));
    }
}
