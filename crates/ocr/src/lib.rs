//! # ocr
//!
//! The speed-test screenshot substrate: provider-styled rendering of
//! [`report::SpeedTestReport`]s, an OCR noise model (glyph confusion,
//! decimal-point dropout, character loss), and a robust extractor that
//! recovers downlink / uplink / latency with unit normalisation and
//! plausibility-window rescue — the stand-in for the paper's Azure OCR step
//! (§4.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod noise;
pub mod render;
pub mod report;

pub use extract::extract;
pub use noise::NoiseModel;
pub use render::render;
pub use report::{ExtractedReport, Provider, SpeedTestReport};
