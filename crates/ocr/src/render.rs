//! Provider-styled text "screenshots".
//!
//! Each provider lays its numbers out differently — different field labels
//! ("DOWNLOAD Mbps" vs "Your Internet speed is"), different orders, and
//! different unit quirks (Fast.com switches to Kbps below 1 Mbps; the
//! Starlink app uses arrows). The extractor has to cope with all of them,
//! which is the realistic part of the paper's OCR pipeline.

use crate::report::{Provider, SpeedTestReport};
use rand::Rng;

/// Format a throughput value with provider-typical precision, sometimes in
/// Kbps for sub-1 Mbps values.
fn fmt_speed(mbps: f64, allow_kbps: bool) -> String {
    if allow_kbps && mbps < 1.0 {
        format!("{:.0} Kbps", mbps * 1000.0)
    } else if mbps >= 100.0 {
        format!("{mbps:.0} Mbps")
    } else {
        format!("{mbps:.1} Mbps")
    }
}

/// Render the clean (noise-free) screenshot text for a report.
///
/// The `rng` picks between minor layout variants of the same provider, as
/// real screenshots differ by app version.
pub fn render<R: Rng + ?Sized>(rng: &mut R, report: &SpeedTestReport) -> String {
    let down = report.downlink_mbps;
    let up = report.uplink_mbps;
    let ping = report.latency_ms;
    match report.provider {
        Provider::Ookla => {
            if rng.gen_bool(0.5) {
                format!(
                    "SPEEDTEST by Ookla\n\
                     PING ms\n{ping:.0}\n\
                     DOWNLOAD Mbps\n{down:.2}\n\
                     UPLOAD Mbps\n{up:.2}\n\
                     Connections Multi\n"
                )
            } else {
                format!(
                    "Speedtest\n\
                     DOWNLOAD {}\nUPLOAD {}\nPing {ping:.0} ms\n\
                     Provider Starlink\n",
                    fmt_speed(down, false),
                    fmt_speed(up, false),
                )
            }
        }
        Provider::Fast => {
            let latency_line = if rng.gen_bool(0.6) {
                format!(
                    "Latency unloaded {ping:.0} ms loaded {:.0} ms\n",
                    ping * 2.4
                )
            } else {
                String::new()
            };
            format!(
                "FAST\nYour Internet speed is\n{}\n{}Upload speed {}\n",
                fmt_speed(down, true),
                latency_line,
                fmt_speed(up, true),
            )
        }
        Provider::StarlinkApp => format!(
            "Starlink\nSPEED TEST\n\
             Download\n{down:.0} Mbps\n\
             Upload\n{up:.1} Mbps\n\
             Latency\n{ping:.0} ms\n\
             Advanced >\n"
        ),
        Provider::MLab => format!(
            "M-Lab Speed Test (NDT)\n\
             Download: {down:.2} Mb/s\n\
             Upload: {up:.2} Mb/s\n\
             Ping/Latency: {ping:.1} ms\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytics::time::Date;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn report(provider: Provider) -> SpeedTestReport {
        SpeedTestReport {
            provider,
            date: Date::from_ymd(2022, 3, 10).unwrap(),
            downlink_mbps: 113.42,
            uplink_mbps: 11.7,
            latency_ms: 43.0,
        }
    }

    #[test]
    fn every_provider_renders_its_numbers() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in Provider::ALL {
            let text = render(&mut rng, &report(p));
            assert!(
                text.contains("113") || text.contains("113.4"),
                "{p:?}: {text}"
            );
            assert!(
                text.to_lowercase().contains("upload") || text.contains("UPLOAD"),
                "{text}"
            );
            assert!(!text.is_empty());
        }
    }

    #[test]
    fn fast_uses_kbps_below_one_mbps() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = report(Provider::Fast);
        r.downlink_mbps = 0.75;
        let text = render(&mut rng, &r);
        assert!(text.contains("750 Kbps"), "{text}");
    }

    #[test]
    fn layout_variants_exist() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = report(Provider::Ookla);
        let variants: std::collections::HashSet<String> =
            (0..20).map(|_| render(&mut rng, &r)).collect();
        assert!(
            variants.len() >= 2,
            "expected multiple Ookla layout variants"
        );
    }

    #[test]
    fn speed_formatting_rules() {
        assert_eq!(fmt_speed(113.4, false), "113 Mbps");
        assert_eq!(fmt_speed(42.37, false), "42.4 Mbps");
        assert_eq!(fmt_speed(0.5, true), "500 Kbps");
        assert_eq!(fmt_speed(0.5, false), "0.5 Mbps");
    }
}
