//! OCR noise model.
//!
//! Real OCR over phone photos of screens confuses visually similar glyphs,
//! drops thin punctuation, and merges whitespace. The model applies, per
//! character and independently:
//!
//! * glyph confusion (`0↔O`, `1↔l`, `5↔S`, `8↔B`, `6↔G`, `2↔Z`);
//! * decimal-point dropout (the nastiest failure for numeric extraction);
//! * occasional character loss.
//!
//! The extractor is tested against this model at several noise levels; the
//! bench sweeps levels to chart the recovery-rate curve.

use analytics::dist::bernoulli;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Noise-level configuration (probabilities per character).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Probability a confusable glyph is swapped.
    pub confusion: f64,
    /// Probability a `.` is dropped.
    pub point_dropout: f64,
    /// Probability any character is dropped.
    pub char_dropout: f64,
}

impl NoiseModel {
    /// No noise at all.
    pub fn clean() -> NoiseModel {
        NoiseModel {
            confusion: 0.0,
            point_dropout: 0.0,
            char_dropout: 0.0,
        }
    }

    /// Light noise: a good phone photo.
    pub fn light() -> NoiseModel {
        NoiseModel {
            confusion: 0.02,
            point_dropout: 0.02,
            char_dropout: 0.002,
        }
    }

    /// Moderate noise: a mediocre photo.
    pub fn moderate() -> NoiseModel {
        NoiseModel {
            confusion: 0.06,
            point_dropout: 0.06,
            char_dropout: 0.008,
        }
    }

    /// Heavy noise: extraction should start failing.
    pub fn heavy() -> NoiseModel {
        NoiseModel {
            confusion: 0.18,
            point_dropout: 0.2,
            char_dropout: 0.03,
        }
    }

    /// Apply the model to a rendered screenshot.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        for ch in text.chars() {
            if ch == '.' && bernoulli(rng, self.point_dropout) {
                continue;
            }
            if ch != '\n' && bernoulli(rng, self.char_dropout) {
                continue;
            }
            let swapped = if bernoulli(rng, self.confusion) {
                confuse(ch)
            } else {
                ch
            };
            out.push(swapped);
        }
        out
    }
}

/// The glyph-confusion table (symmetric).
pub fn confuse(ch: char) -> char {
    match ch {
        '0' => 'O',
        'O' => '0',
        '1' => 'l',
        'l' => '1',
        '5' => 'S',
        'S' => '5',
        '8' => 'B',
        'B' => '8',
        '6' => 'G',
        'G' => '6',
        '2' => 'Z',
        'Z' => '2',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = "DOWNLOAD 105.2 Mbps\nUPLOAD 12.1 Mbps";
        assert_eq!(NoiseModel::clean().apply(&mut rng, text), text);
    }

    #[test]
    fn confusion_table_is_symmetric() {
        for ch in ['0', 'O', '1', 'l', '5', 'S', '8', 'B', '6', 'G', '2', 'Z'] {
            assert_eq!(confuse(confuse(ch)), ch);
        }
        assert_eq!(confuse('x'), 'x');
    }

    #[test]
    fn heavy_noise_changes_text() {
        let mut rng = StdRng::seed_from_u64(2);
        let text = "DOWNLOAD 105.2 Mbps 0150815";
        let noisy = NoiseModel::heavy().apply(&mut rng, text);
        assert_ne!(noisy, text);
    }

    #[test]
    fn newlines_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let text = "a\nb\nc\nd\ne";
        for _ in 0..100 {
            let noisy = NoiseModel::heavy().apply(&mut rng, text);
            assert_eq!(noisy.matches('\n').count(), 4);
        }
    }

    #[test]
    fn dropout_rates_roughly_observed() {
        let mut rng = StdRng::seed_from_u64(4);
        let text = ".".repeat(10_000);
        let noisy = NoiseModel::moderate().apply(&mut rng, &text);
        let kept = noisy.len();
        let rate = 1.0 - kept as f64 / 10_000.0;
        // point_dropout 0.06 + char_dropout 0.008 on survivors ≈ 6.7 %.
        assert!((0.04..0.10).contains(&rate), "dropout rate {rate}");
    }
}
