//! Speed-test report structures.
//!
//! §4.2: *"The test report screenshots are across test providers like Ookla,
//! Fast (powered by Netflix), Starlink itself, and others. We extract uplink
//! speed, downlink speed, latency information, etc. using Azure's Optical
//! Character Recognition."* [`SpeedTestReport`] is the ground truth behind
//! one screenshot; the [`crate::render`] module lays it out provider-style,
//! [`crate::noise`] degrades it like a photographed screen, and
//! [`crate::extract`] recovers the fields.

use analytics::time::Date;
use serde::{Deserialize, Serialize};

/// Speed-test provider whose layout the screenshot mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provider {
    /// Speedtest by Ookla.
    Ookla,
    /// Fast.com (Netflix).
    Fast,
    /// The Starlink app's built-in test.
    StarlinkApp,
    /// Measurement Lab NDT style test.
    MLab,
}

impl Provider {
    /// All providers.
    pub const ALL: [Provider; 4] = [
        Provider::Ookla,
        Provider::Fast,
        Provider::StarlinkApp,
        Provider::MLab,
    ];

    /// Rough popularity mix among shared screenshots.
    pub fn mixture_weight(self) -> f64 {
        match self {
            Provider::Ookla => 0.55,
            Provider::Fast => 0.20,
            Provider::StarlinkApp => 0.18,
            Provider::MLab => 0.07,
        }
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Provider::Ookla => "Speedtest by Ookla",
            Provider::Fast => "FAST.com",
            Provider::StarlinkApp => "Starlink",
            Provider::MLab => "M-Lab NDT",
        }
    }
}

/// Ground-truth content of one screenshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedTestReport {
    /// Provider whose layout is rendered.
    pub provider: Provider,
    /// Test date.
    pub date: Date,
    /// Download speed (Mbps).
    pub downlink_mbps: f64,
    /// Upload speed (Mbps).
    pub uplink_mbps: f64,
    /// Latency (ms).
    pub latency_ms: f64,
}

/// Fields recovered from a screenshot by the extractor. `None` means the
/// field could not be recovered confidently.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExtractedReport {
    /// Recovered download speed (Mbps, unit-normalised).
    pub downlink_mbps: Option<f64>,
    /// Recovered upload speed (Mbps, unit-normalised).
    pub uplink_mbps: Option<f64>,
    /// Recovered latency (ms).
    pub latency_ms: Option<f64>,
    /// Provider guessed from layout cues.
    pub provider: Option<Provider>,
}

impl ExtractedReport {
    /// Number of recovered numeric fields (0–3).
    pub fn fields_recovered(&self) -> usize {
        [
            self.downlink_mbps.is_some(),
            self.uplink_mbps.is_some(),
            self.latency_ms.is_some(),
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }

    /// Whether the primary field of the Fig. 7 analysis (downlink) was
    /// recovered.
    pub fn has_downlink(&self) -> bool {
        self.downlink_mbps.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_weights_sum_to_one() {
        let s: f64 = Provider::ALL.iter().map(|p| p.mixture_weight()).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extracted_report_counting() {
        let mut e = ExtractedReport::default();
        assert_eq!(e.fields_recovered(), 0);
        assert!(!e.has_downlink());
        e.downlink_mbps = Some(100.0);
        e.latency_ms = Some(40.0);
        assert_eq!(e.fields_recovered(), 2);
        assert!(e.has_downlink());
    }
}
