//! Robust field extraction from noisy screenshot text.
//!
//! This is the workhorse that replaces Azure OCR's post-processing in the
//! paper's pipeline. It must survive three realities:
//!
//! 1. **Layouts differ per provider** — labels may be on the same line as
//!    the value (M-Lab) or on the line above (Ookla/Starlink app), and
//!    Fast.com spells download "Your Internet speed is".
//! 2. **Glyph confusion** — `105.2` may arrive as `lO5.2`; labels may
//!    arrive as `D0WNL0AD`. Tokens are therefore canonicalised twice: to
//!    digit-form for value parsing and letter-form for label matching.
//! 3. **Decimal-point dropout** — `105.2 Mbps` may arrive as `1052 Mbps`.
//!    Recovered values outside a plausibility window are rescaled by powers
//!    of ten until they land inside it.

use crate::report::{ExtractedReport, Provider};

/// Plausibility window for throughputs (Mbps) used for decimal-dropout
/// recovery.
const SPEED_RANGE: (f64, f64) = (0.2, 500.0);
/// Plausibility window for latency (ms).
const LATENCY_RANGE: (f64, f64) = (5.0, 900.0);

/// Map confusable letters to the digits they usually were (digit-form).
fn to_digit_form(ch: char) -> char {
    match ch {
        'O' | 'o' => '0',
        'l' | 'I' | 'i' | '|' => '1',
        'S' | 's' => '5',
        'B' => '8',
        'G' => '6',
        'Z' | 'z' => '2',
        c => c,
    }
}

/// Map confusable digits to the letters they usually were (letter-form).
fn to_letter_form(ch: char) -> char {
    match ch {
        '0' => 'o',
        '1' => 'l',
        '5' => 's',
        '8' => 'b',
        '6' => 'g',
        '2' => 'z',
        c => c.to_ascii_lowercase(),
    }
}

/// A token with both canonical forms.
#[derive(Debug, Clone)]
struct Token {
    letter: String,
    digit: String,
    line: usize,
    /// Whether the raw token contained at least one true ASCII digit —
    /// required before attempting numeric parsing, so that ordinary words
    /// ("is" → "15") are never mistaken for values.
    has_digit: bool,
}

fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        for raw in line.split(|c: char| {
            c.is_whitespace() || matches!(c, ':' | ',' | '>' | '<' | '(' | ')' | '/')
        }) {
            if raw.is_empty() {
                continue;
            }
            out.push(Token {
                letter: raw.chars().map(to_letter_form).collect(),
                digit: raw.chars().map(to_digit_form).collect(),
                line: line_no,
                has_digit: raw.chars().any(|c| c.is_ascii_digit()),
            });
        }
    }
    out
}

/// Parse a digit-form token as a number; accepts at most one '.' and
/// requires everything else to be digits (unit suffixes like `105Mbps` are
/// split off).
fn parse_number(digit_form: &str) -> Option<(f64, Option<Unit>)> {
    let mut num = String::new();
    let mut rest = String::new();
    let mut seen_dot = false;
    for ch in digit_form.chars() {
        if !rest.is_empty() {
            rest.push(ch);
        } else if ch.is_ascii_digit() {
            num.push(ch);
        } else if ch == '.' && !seen_dot && !num.is_empty() {
            seen_dot = true;
            num.push(ch);
        } else if num.is_empty() {
            return None; // leading junk: not a number token
        } else {
            rest.push(ch);
        }
    }
    if num.is_empty() || num == "." {
        return None;
    }
    let value: f64 = num.parse().ok()?;
    let unit = if rest.is_empty() {
        None
    } else {
        parse_unit(&rest)
    };
    Some((value, unit))
}

/// Throughput / time units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Mbps,
    Kbps,
    Gbps,
    Ms,
}

fn parse_unit(letter_form_fragment: &str) -> Option<Unit> {
    // Accept digit-contaminated unit text by letter-canonicalising it.
    let s: String = letter_form_fragment.chars().map(to_letter_form).collect();
    let s = s.replace('/', "");
    if s.starts_with("mbps") || s.starts_with("mbs") || s.starts_with("mb") {
        Some(Unit::Mbps)
    } else if s.starts_with("kbps") || s.starts_with("kbs") || s.starts_with("kb") {
        Some(Unit::Kbps)
    } else if s.starts_with("gbps") || s.starts_with("gb") {
        Some(Unit::Gbps)
    } else if s.starts_with("ms") {
        Some(Unit::Ms)
    } else {
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Download,
    Upload,
    Latency,
}

/// Does a letter-form token announce a field label?
fn label_of(token: &str) -> Option<Field> {
    // Fuzzy prefixes tolerate dropped characters at the end.
    const DOWN: [&str; 3] = ["download", "down", "dl"];
    const UP: [&str; 3] = ["upload", "up", "ul"];
    const LAT: [&str; 3] = ["ping", "latency", "idle"];
    let close = |t: &str, word: &str| {
        if t == word {
            return true;
        }
        if word.len() < 6 || t.len() + 2 < word.len() {
            return false;
        }
        // Compare char-wise: byte-slicing `t` could split a multi-byte
        // glyph the noise model injected and panic.
        let mut wc = word.chars();
        t.chars()
            .take(word.chars().count())
            .all(|c| wc.next() == Some(c))
    };
    if DOWN.iter().any(|w| close(token, w)) {
        return Some(Field::Download);
    }
    if UP.iter().any(|w| close(token, w)) {
        return Some(Field::Upload);
    }
    if LAT.iter().any(|w| close(token, w)) {
        return Some(Field::Latency);
    }
    None
}

/// Rescale an implausible value by powers of ten (decimal-point dropout
/// recovery). Returns `None` when no rescaling lands inside the range.
fn rescale_into(value: f64, range: (f64, f64)) -> Option<f64> {
    let mut v = value;
    for _ in 0..4 {
        if (range.0..=range.1).contains(&v) {
            return Some(v);
        }
        v /= 10.0;
    }
    None
}

fn normalise_speed(value: f64, unit: Option<Unit>) -> Option<f64> {
    let mbps = match unit {
        Some(Unit::Kbps) => value / 1000.0,
        Some(Unit::Gbps) => value * 1000.0,
        _ => value,
    };
    rescale_into(mbps, SPEED_RANGE)
}

fn normalise_latency(value: f64, unit: Option<Unit>) -> Option<f64> {
    if matches!(unit, Some(Unit::Mbps) | Some(Unit::Kbps) | Some(Unit::Gbps)) {
        return None; // a throughput unit cannot be a latency
    }
    rescale_into(value, LATENCY_RANGE)
}

/// Guess the provider from layout cues.
fn guess_provider(tokens: &[Token]) -> Option<Provider> {
    let has = |word: &str| tokens.iter().any(|t| t.letter.contains(word));
    if has("ookla") || has("speedtest") {
        Some(Provider::Ookla)
    } else if has("fast") {
        Some(Provider::Fast)
    } else if has("ndt") || has("mlab") || (has("m") && has("lab")) {
        Some(Provider::MLab)
    } else if has("starlink") {
        Some(Provider::StarlinkApp)
    } else {
        None
    }
}

/// Extract fields from (possibly noisy) screenshot text.
///
/// ```
/// // Glyph confusion ("ll3.4" for 113.4) and split labels are handled.
/// let e = ocr::extract::extract("Download\nll3.4 Mbps\nUpload\n11.7 Mbps\nLatency\n43 ms\n");
/// assert_eq!(e.downlink_mbps, Some(113.4));
/// assert_eq!(e.latency_ms, Some(43.0));
/// ```
pub fn extract(text: &str) -> ExtractedReport {
    let tokens = tokenize(text);
    let mut out = ExtractedReport {
        provider: guess_provider(&tokens),
        ..Default::default()
    };

    // Fast.com's download label is the phrase "internet speed".
    let fast_download_anchor = tokens
        .windows(2)
        .position(|w| w[0].letter.contains("internet") && w[1].letter.starts_with("speed"))
        .map(|i| i + 1);

    let mut pending: Vec<(Field, usize)> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if let Some(field) = label_of(&tok.letter) {
            // "Upload speed" style: label token directly.
            pending.push((field, i));
        }
    }
    if let Some(anchor) = fast_download_anchor {
        pending.push((Field::Download, anchor));
    }

    for (field, label_idx) in pending {
        // The value is the first parseable number within the next 4 tokens
        // and 2 lines.
        let label_line = tokens[label_idx].line;
        let mut value: Option<(f64, Option<Unit>)> = None;
        for idx in (label_idx + 1)..tokens.len().min(label_idx + 6) {
            let tok = &tokens[idx];
            if tok.line > label_line + 2 {
                break;
            }
            // Skip unit-only tokens between label and number ("DOWNLOAD Mbps\n105")
            // and plain words that would canonicalise into digits.
            if !tok.has_digit {
                continue;
            }
            if parse_unit(&tok.letter).is_some() && parse_number(&tok.digit).is_none() {
                continue;
            }
            if let Some((v, mut unit)) = parse_number(&tok.digit) {
                // Standalone unit token directly after the number.
                if unit.is_none() {
                    if let Some(next) = tokens.get(idx + 1) {
                        unit = parse_unit(&next.letter);
                    }
                }
                value = Some((v, unit));
                break;
            }
        }
        let Some((v, unit)) = value else { continue };
        match field {
            Field::Download => {
                if out.downlink_mbps.is_none() {
                    out.downlink_mbps = normalise_speed(v, unit);
                }
            }
            Field::Upload => {
                if out.uplink_mbps.is_none() {
                    out.uplink_mbps = normalise_speed(v, unit);
                }
            }
            Field::Latency => {
                if out.latency_ms.is_none() {
                    out.latency_ms = normalise_latency(v, unit);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::render::render;
    use crate::report::SpeedTestReport;
    use analytics::time::Date;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn report(provider: Provider) -> SpeedTestReport {
        SpeedTestReport {
            provider,
            date: Date::from_ymd(2022, 3, 10).unwrap(),
            downlink_mbps: 113.4,
            uplink_mbps: 11.7,
            latency_ms: 43.0,
        }
    }

    #[test]
    fn clean_round_trip_all_providers() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in Provider::ALL {
            for _ in 0..10 {
                let text = render(&mut rng, &report(p));
                let e = extract(&text);
                let d = e.downlink_mbps.unwrap_or(0.0);
                assert!((d - 113.4).abs() < 1.0, "{p:?} downlink {d}: {text}");
                let u = e.uplink_mbps.unwrap_or(0.0);
                assert!((u - 11.7).abs() < 0.5, "{p:?} uplink {u}: {text}");
                // One Fast.com layout variant omits latency entirely.
                match e.latency_ms {
                    Some(l) => assert!((l - 43.0).abs() < 1.5, "{p:?} latency {l}: {text}"),
                    None => assert_eq!(p, Provider::Fast, "latency missing: {text}"),
                }
            }
        }
    }

    #[test]
    fn provider_identified() {
        let mut rng = StdRng::seed_from_u64(2);
        for p in Provider::ALL {
            let text = render(&mut rng, &report(p));
            assert_eq!(extract(&text).provider, Some(p), "{text}");
        }
    }

    #[test]
    fn kbps_normalised() {
        let e = extract("FAST\nYour Internet speed is\n750 Kbps\nUpload speed 300 Kbps\n");
        assert!((e.downlink_mbps.unwrap() - 0.75).abs() < 1e-9);
        assert!((e.uplink_mbps.unwrap() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn glyph_confusion_recovered() {
        // "113.4" rendered as "ll3.4", "43" as "4З"… digit-form fixes it.
        let e = extract("Download\nll3.4 Mbps\nUpload\nS.2 Mbps\nLatency\n4l ms\n");
        assert!((e.downlink_mbps.unwrap() - 113.4).abs() < 1e-9);
        assert!((e.uplink_mbps.unwrap() - 5.2).abs() < 1e-9);
        assert!((e.latency_ms.unwrap() - 41.0).abs() < 1e-9);
    }

    #[test]
    fn decimal_dropout_rescued() {
        // 113.4 -> 1134 should be rescaled into range.
        let e = extract("DOWNLOAD Mbps\n1134\nUPLOAD Mbps\n117\nPING ms\n43\n");
        assert!((e.downlink_mbps.unwrap() - 113.4).abs() < 0.01);
        assert!(
            (e.uplink_mbps.unwrap() - 117.0).abs() < 0.01,
            "117 is already plausible"
        );
    }

    #[test]
    fn garbage_yields_nothing() {
        let e = extract("cat pictures and weather talk, no numbers to see");
        assert_eq!(e.fields_recovered(), 0);
        assert!(extract("").fields_recovered() == 0);
    }

    #[test]
    fn light_noise_high_recovery() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = NoiseModel::light();
        let mut recovered = 0;
        let n = 300;
        for i in 0..n {
            let p = Provider::ALL[i % 4];
            let text = render(&mut rng, &report(p));
            let noisy = model.apply(&mut rng, &text);
            if extract(&noisy).has_downlink() {
                recovered += 1;
            }
        }
        let rate = recovered as f64 / n as f64;
        assert!(rate > 0.85, "light-noise downlink recovery {rate}");
    }

    #[test]
    fn heavy_noise_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = NoiseModel::heavy();
        let mut recovered = 0;
        let mut wild = 0;
        let n = 300;
        for i in 0..n {
            let p = Provider::ALL[i % 4];
            let truth = report(p);
            let rendered = render(&mut rng, &truth);
            let noisy = model.apply(&mut rng, &rendered);
            if let Some(d) = extract(&noisy).downlink_mbps {
                recovered += 1;
                // Recovered values must stay plausible even when wrong.
                if !(0.2..=500.0).contains(&d) {
                    wild += 1;
                }
            }
        }
        assert!(
            recovered > n / 4,
            "heavy-noise recovery collapsed: {recovered}/{n}"
        );
        assert_eq!(wild, 0, "extractor must never emit implausible values");
    }

    #[test]
    fn multibyte_noise_in_labels_does_not_panic() {
        // Glyph noise can substitute multi-byte lookalikes (e.g. Cyrillic
        // 'З'); label matching must not byte-slice mid-character.
        let e = extract("DownloaЗ\n113.4 Mbps\nUpload\n11.7 Mbps\nLatencЗ\n43 ms\n");
        assert!((e.uplink_mbps.unwrap() - 11.7).abs() < 1e-9);
    }

    #[test]
    fn latency_never_takes_throughput_units() {
        let e = extract("Ping 99 Mbps\n");
        assert_eq!(e.latency_ms, None);
    }
}
