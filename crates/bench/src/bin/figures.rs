//! Regenerate every table and figure of the paper from the simulated
//! substrates and write them (text + CSV) under `results/`.
//!
//! ```sh
//! cargo run --release -p bench --bin figures [calls]
//! ```
//!
//! One section per experiment in DESIGN.md's index; EXPERIMENTS.md records
//! the paper-vs-measured comparison for a run of this binary.

use analytics::time::{Date, Month};
use bench::{figure_dataset, figure_forum, FIGURE_CALLS};
use conference::records::{EngagementMetric, NetworkMetric};
use netsim::access::AccessType;
use std::fmt::Write as _;
use std::fs;
use usaas::annotate::PeakAnnotator;
use usaas::correlate;
use usaas::emerging::EmergingTopicMiner;
use usaas::fulcrum::FulcrumAnalysis;
use usaas::outage::OutageDetector;
use usaas::predict::{train_and_evaluate, FeatureSet};
use usaas::report;
use usaas::service::{Answer, Query, UsaasService};

fn main() {
    let calls: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(FIGURE_CALLS);
    fs::create_dir_all("results").expect("create results dir");
    let mut summary = String::new();

    eprintln!("generating call dataset ({calls} calls)…");
    let dataset = figure_dataset(calls);
    eprintln!(
        "  {} sessions, {} rated",
        dataset.len(),
        dataset.rated_sessions().count()
    );
    eprintln!("generating forum corpus…");
    let forum = figure_forum();
    eprintln!(
        "  {} posts, {} speed shares",
        forum.len(),
        forum.speed_shares().count()
    );

    // ---- F1: the four engagement panels -------------------------------
    for (tag, sweep) in [
        ("fig1_latency", NetworkMetric::LatencyMs),
        ("fig1_loss", NetworkMetric::LossPct),
        ("fig1_jitter", NetworkMetric::JitterMs),
        ("fig1_bandwidth", NetworkMetric::BandwidthMbps),
    ] {
        let mut text = String::new();
        let mut curves = Vec::new();
        for metric in EngagementMetric::ALL {
            let c = correlate::engagement_curve(&dataset, sweep, metric, 6, 12)
                .expect("engagement curve");
            text.push_str(&report::curve_table(
                metric.label(),
                sweep.label(),
                "engagement",
                &c,
            ));
            curves.push((metric, c));
        }
        let csv_curves: Vec<(&str, &analytics::BinnedCurve)> =
            curves.iter().map(|(m, c)| (m.label(), c)).collect();
        fs::write(format!("results/{tag}.txt"), &text).expect("write");
        fs::write(
            format!("results/{tag}.csv"),
            report::curves_csv(sweep.label(), &csv_curves),
        )
        .expect("write");
        let _ = writeln!(summary, "## {tag}");
        for (m, c) in &curves {
            let _ = writeln!(
                summary,
                "{:>10}: best {:.1} → worst-end {:.1} (Δ {:.1} points)",
                m.label(),
                c.first_y().unwrap_or(f64::NAN),
                c.last_y().unwrap_or(f64::NAN),
                c.first_y().unwrap_or(f64::NAN) - c.last_y().unwrap_or(f64::NAN),
            );
        }
        let _ = writeln!(summary);
        eprintln!("wrote results/{tag}.{{txt,csv}}");
    }

    // ---- F2: compounding grid ------------------------------------------
    let grid = correlate::compounding_grid(&dataset, EngagementMetric::Presence, 5, 8)
        .expect("compounding grid");
    let gtext = report::grid_table("Fig 2: Presence over latency (x, ms) x loss (y, %)", &grid);
    fs::write("results/fig2_compounding.txt", &gtext).expect("write");
    let _ = writeln!(
        summary,
        "## fig2_compounding\nworst cell {:.1} / best 100.0 (paper: dips ~50%)\n",
        grid.min_value().unwrap_or(f64::NAN)
    );
    eprintln!("wrote results/fig2_compounding.txt");

    // ---- F3: platforms ---------------------------------------------------
    let platform_curves = correlate::platform_curves(
        &dataset,
        NetworkMetric::LossPct,
        EngagementMetric::Presence,
        4,
        10,
    )
    .expect("platform curves");
    let mut ptext = String::new();
    for (p, c) in &platform_curves {
        ptext.push_str(&report::curve_table(p.label(), "loss (%)", "presence", c));
    }
    fs::write("results/fig3_platform.txt", &ptext).expect("write");
    let _ = writeln!(summary, "## fig3_platform");
    for (p, c) in &platform_curves {
        let _ = writeln!(
            summary,
            "{:>12}: presence at high loss {:.1}",
            p.label(),
            c.last_y().unwrap_or(f64::NAN)
        );
    }
    let _ = writeln!(summary);
    eprintln!("wrote results/fig3_platform.txt");

    // ---- F4: MOS ---------------------------------------------------------
    let mut mtext = String::new();
    for metric in EngagementMetric::ALL {
        let c = correlate::mos_by_engagement(&dataset, metric, 4, 5).expect("mos curve");
        mtext.push_str(&report::curve_table(
            metric.label(),
            "engagement (%)",
            "MOS",
            &c,
        ));
    }
    let ranking = correlate::mos_correlations(&dataset).expect("ranking");
    let _ = writeln!(mtext, "\ncorrelation ranking:");
    let _ = writeln!(summary, "## fig4_mos");
    for (m, r) in &ranking {
        let _ = writeln!(mtext, "  {:>10}: r = {r:.3}", m.label());
        let _ = writeln!(summary, "  {:>10}: r = {r:.3}", m.label());
    }
    let _ = writeln!(summary);
    fs::write("results/fig4_mos.txt", &mtext).expect("write");
    eprintln!("wrote results/fig4_mos.txt");

    // ---- S3: MOS predictor ------------------------------------------------
    let _ = writeln!(summary, "## mos_predict (S3)");
    let mut pred_text = String::new();
    for features in [
        FeatureSet::NetworkOnly,
        FeatureSet::EngagementOnly,
        FeatureSet::Full,
    ] {
        match train_and_evaluate(&dataset, features, 4) {
            Ok((_, eval)) => {
                let line = format!(
                    "{features:?}: MAE {:.3} (baseline {:.3}), corr {:.3}, skill {:.1}%",
                    eval.mae,
                    eval.baseline_mae,
                    eval.correlation,
                    eval.skill() * 100.0
                );
                let _ = writeln!(pred_text, "{line}");
                let _ = writeln!(summary, "{line}");
            }
            Err(e) => {
                let _ = writeln!(pred_text, "{features:?}: {e}");
            }
        }
    }
    let _ = writeln!(summary);
    fs::write("results/mos_predict.txt", &pred_text).expect("write");

    // ---- F5: sentiment peaks ----------------------------------------------
    let annotator = PeakAnnotator::default();
    let peaks = annotator.annotate(&forum, 3).expect("peaks");
    let mut f5 = String::new();
    let _ = writeln!(summary, "## fig5_sentiment_peaks");
    for (i, p) in peaks.iter().enumerate() {
        let line = format!(
            "{}. {} — {:.0} strong posts, {}, words {:?}, {}",
            i + 1,
            p.date,
            p.strong_posts,
            if p.positive_dominated {
                "positive"
            } else {
                "negative"
            },
            p.top_words,
            if p.unreported() {
                format!("UNREPORTED (posters from {} countries)", p.countries)
            } else {
                format!("news: {}", p.headlines.join(" | "))
            }
        );
        let _ = writeln!(f5, "{line}");
        let _ = writeln!(summary, "{line}");
    }
    let _ = writeln!(summary);
    // F5b: the Apr 22 cloud.
    let cloud = annotator.day_cloud(&forum, Date::from_ymd(2022, 4, 22).expect("date"), 15);
    let _ = writeln!(f5, "\nword cloud 2022-04-22:\n{cloud}");
    fs::write("results/fig5_sentiment_peaks.txt", &f5).expect("write");
    eprintln!("wrote results/fig5_sentiment_peaks.txt");

    // ---- F6: outages --------------------------------------------------------
    let detector = OutageDetector::default();
    let series = detector.keyword_series(&forum).expect("series");
    let mut f6 = String::from("date,keyword_occurrences\n");
    for (date, v) in series.iter() {
        if v > 0.0 {
            let _ = writeln!(f6, "{date},{v}");
        }
    }
    fs::write("results/fig6_outages.csv", &f6).expect("write");
    let detections = detector.detect(&forum).expect("detect");
    let truth = starlink::outages::outage_timeline(
        Date::from_ymd(2021, 1, 1).expect("date"),
        Date::from_ymd(2022, 12, 31).expect("date"),
        &starlink::outages::TransientOutageConfig::default(),
    );
    let score = detector.score_against(&detections, &truth);
    let _ = writeln!(
        summary,
        "## fig6_outages\n{} detections; precision {:.2}; major recall {:.2}\n",
        detections.len(),
        score.precision,
        score.major_recall
    );
    eprintln!("wrote results/fig6_outages.csv");

    // ---- F7: speeds + fulcrum ----------------------------------------------
    let fig7 = FulcrumAnalysis::default()
        .analyze(
            &forum,
            Month::new(2021, 1).expect("m"),
            Month::new(2022, 12).expect("m"),
        )
        .expect("fig7");
    fs::write("results/fig7_speeds.txt", report::fig7_table(&fig7)).expect("write");
    fs::write("results/fig7_speeds.csv", report::fig7_csv(&fig7)).expect("write");
    let _ = writeln!(summary, "## fig7_speeds\n{}", report::fig7_table(&fig7));
    eprintln!("wrote results/fig7_speeds.{{txt,csv}}");

    // ---- S1/S2: stats --------------------------------------------------------
    let weeks = 104.4;
    let upvotes: f64 = forum.posts.iter().map(|p| f64::from(p.upvotes)).sum();
    let comments: f64 = forum.posts.iter().map(|p| f64::from(p.comments)).sum();
    let _ = writeln!(
        summary,
        "## stats_subreddit (S1)\nposts/week {:.0} (paper 372); upvotes/week {:.0} (paper 8190); \
         comments/week {:.0} (paper 5702); speed shares {} (paper ~1750)\n",
        forum.len() as f64 / weeks,
        upvotes / weeks,
        comments / weeks,
        forum.speed_shares().count()
    );
    if let Ok(Some(roaming)) = EmergingTopicMiner::default().first_detection(&forum, "roaming") {
        let tweet = Date::from_ymd(2022, 3, 3).expect("date");
        let _ = writeln!(
            summary,
            "## stats_roaming (S2)\n'roaming' flagged {} — {} days before the CEO tweet \
             (paper: ~2 weeks); polarity {:+.2}\n",
            roaming.first_flagged,
            tweet.days_since(roaming.first_flagged),
            roaming.polarity
        );
    }

    // ---- §5 service demo ------------------------------------------------------
    let service = UsaasService::build(dataset, forum, 0);
    let (implicit, explicit, social_count) = service.signal_counts();
    let _ = writeln!(
        summary,
        "## usaas service\nsignals: {implicit} implicit / {explicit} explicit / {social_count} social"
    );
    if let Ok(Answer::CrossNetwork(r)) = service.query(&Query::CrossNetwork {
        access: AccessType::SatelliteLeo,
    }) {
        let _ = writeln!(
            summary,
            "Teams-on-Starlink: {} sessions, presence {:.1}% (others {:.1}%), outage-day presence {:?}",
            r.sessions, r.mean_presence, r.others_presence, r.outage_day_presence
        );
    }
    if let Ok(Answer::Deployment(recs)) = service.query(&Query::DeploymentAdvice) {
        let _ = writeln!(summary, "deployment advice: {}", recs[0].shell);
    }

    // ---- §3.3 early indication ---------------------------------------------
    {
        use conference::call::{CallConfig, CallSimulator};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use usaas::early::EarlyQualityMonitor;
        let sim = CallSimulator::default();
        let mut rng = StdRng::seed_from_u64(0xEA71);
        let mut uid = 0;
        let mut detailed = Vec::new();
        for call_id in 0..800u64 {
            let config = CallConfig {
                call_id,
                date: Date::from_ymd(2022, 2, 15).expect("date"),
                start_hour: 10,
                participants: 5,
                scheduled_ticks: 360,
            };
            detailed.extend(sim.simulate_detailed(&mut rng, &config, &mut uid));
        }
        if let Ok(skills) =
            EarlyQualityMonitor::default().skill_by_horizon(&detailed, &[12, 36, 72, 180, 360])
        {
            let _ = writeln!(summary, "## early_indication (§3.3)");
            for sk in skills {
                let _ = writeln!(
                    summary,
                    "  {:>5.1} min: corr {:.3} ({} sessions)",
                    sk.horizon_ticks as f64 * 5.0 / 60.0,
                    sk.correlation,
                    sk.sessions
                );
            }
            let _ = writeln!(summary);
        }
    }

    fs::write("results/summary.txt", &summary).expect("write summary");
    println!("{summary}");
    eprintln!("\nall artefacts under results/");
}
