//! Shared fixtures for the benchmark suite and the figure-regeneration
//! binary: standard dataset/forum sizes so every bench and figure is
//! produced from the same corpora.

#![forbid(unsafe_code)]

use conference::dataset::{generate, DatasetConfig};
use conference::records::CallDataset;
use social::generator::{generate as gen_forum, ForumConfig};
use social::post::Forum;

/// The call-dataset size used for figure regeneration.
pub const FIGURE_CALLS: usize = 30_000;

/// A smaller dataset for timing loops.
pub const BENCH_CALLS: usize = 1_500;

/// Build the figure-scale call dataset (with the LEO outage calendar wired
/// in for the cross-network join).
pub fn figure_dataset(calls: usize) -> CallDataset {
    let mut cfg = DatasetConfig {
        calls,
        seed: 0xF16,
        ..DatasetConfig::default()
    };
    cfg.leo_outage_calendar = starlink::outages::major_outages()
        .into_iter()
        .map(|o| (o.date, o.severity))
        .collect();
    generate(&cfg)
}

/// Build the standard two-year forum corpus.
pub fn figure_forum() -> Forum {
    gen_forum(&ForumConfig::default())
}

/// Build a short forum corpus for timing loops.
pub fn bench_forum() -> Forum {
    let mut cfg = ForumConfig::default();
    cfg.end = cfg.start.offset(90);
    cfg.authors = 2000;
    gen_forum(&cfg)
}

/// Calls in the frame-scan corpus: large enough that the aggregation cost
/// dominates thread-spawn overhead, so the layout/fan-out comparison is
/// about memory traffic rather than setup.
pub const FRAME_CALLS: usize = 24_000;

/// The seeded dataset the `frame_scan` bench aggregates over.
pub fn frame_dataset() -> CallDataset {
    generate(&DatasetConfig::small(FRAME_CALLS, 0xF4A))
}
