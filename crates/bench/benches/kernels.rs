//! Branchless-kernel microbench: branchy row loops vs the predicated
//! columnar kernels ([`analytics::kernels`]) on a §3-shaped workload —
//! a ~1M-row latency/presence column pair under a reference-population
//! mask (~85% selected, the §3 confounder filter shape).
//!
//! Both flavours of every aggregate produce bit-identical results (the
//! kernel module's proptests pin that); this bench prices only the
//! control-flow style: data-dependent branches vs mask words + select.
//!
//! * `masked_sum` — one predicated running sum over the column.
//! * `min_max` — branchless lane min/max vs compare-and-swap.
//! * `binned` — the Fig. 1 engagement-curve accumulate: clamp x into 8
//!   latency bins, sum/count y per bin.
//! * `mask_build` — packing the predicate into `RowMask` words, the
//!   one-off cost the kernel paths pay.
//!
//! Run with `BENCH_JSON=results/BENCH_kernels.json` (or via
//! `scripts/bench_json.sh`) to export the medians.

use analytics::kernels::{self, RowMask};
use analytics::BinSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Rows in the synthetic column pair.
const N: usize = 1 << 20;
/// Fig. 1 latency bins.
const BINS: usize = 8;

/// Deterministic xorshift stream — no RNG dependency in the bench crate.
fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// The §3-shaped workload: latency-like x, presence-like y, and the
/// reference-population mask keeping ~85% of rows.
fn workload() -> (Vec<f64>, Vec<f64>, RowMask) {
    let mut next = xorshift(0x9E3779B97F4A7C15);
    let xs: Vec<f64> = (0..N).map(|_| (next() % 4000) as f64 / 10.0).collect();
    let ys: Vec<f64> = (0..N).map(|_| (next() % 1000) as f64 / 10.0).collect();
    let keep: Vec<bool> = (0..N).map(|_| next() % 100 < 85).collect();
    let mask = RowMask::from_fn(N, |i| keep[i]);
    (xs, ys, mask)
}

/// Branchy reference: data-dependent `if` per row.
fn branchy_sum(values: &[f64], mask: &RowMask) -> f64 {
    let mut sum = 0.0;
    for (i, &v) in values.iter().enumerate() {
        if mask.get(i) {
            sum += v;
        }
    }
    sum
}

fn branchy_min_max(values: &[f64], mask: &RowMask) -> Option<(f64, f64)> {
    let mut out: Option<(f64, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if mask.get(i) {
            let (lo, hi) = out.get_or_insert((v, v));
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
    }
    out
}

fn branchy_binned(xs: &[f64], ys: &[f64], mask: &RowMask, spec: BinSpec) -> (Vec<f64>, Vec<usize>) {
    let mut sums = vec![0.0; spec.bins];
    let mut counts = vec![0usize; spec.bins];
    for i in 0..xs.len() {
        if mask.get(i) {
            if let Some(b) = spec.index(xs[i]) {
                sums[b] += ys[i];
                counts[b] += 1;
            }
        }
    }
    (sums, counts)
}

fn bench_kernels(c: &mut Criterion) {
    let (xs, ys, mask) = workload();
    let spec = BinSpec::new(0.0, 400.0, BINS).unwrap();
    let keep: Vec<bool> = (0..N).map(|i| mask.get(i)).collect();

    let mut group = c.benchmark_group("kernels");
    group.bench_function("masked_sum_branchy", |b| {
        b.iter(|| black_box(branchy_sum(&xs, &mask)))
    });
    group.bench_function("masked_sum_kernel", |b| {
        b.iter(|| black_box(kernels::masked_sum(&xs, &mask)))
    });
    group.bench_function("min_max_branchy", |b| {
        b.iter(|| black_box(branchy_min_max(&xs, &mask)))
    });
    group.bench_function("min_max_kernel", |b| {
        b.iter(|| black_box(kernels::masked_min_max(&xs, &mask)))
    });
    group.bench_function("binned_branchy", |b| {
        b.iter(|| black_box(branchy_binned(&xs, &ys, &mask, spec)))
    });
    group.bench_function("binned_kernel", |b| {
        b.iter(|| black_box(kernels::masked_binned_sum_count(&xs, &ys, &mask, spec)))
    });
    group.bench_function("mask_build", |b| {
        b.iter(|| black_box(RowMask::from_fn(N, |i| keep[i])))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
