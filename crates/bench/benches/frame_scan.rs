//! Columnar-frame scan bench: the §3 correlation mix computed three ways —
//!
//! * `aos` — the array-of-structs reference: every aggregate re-walks
//!   `dataset.sessions` as full `SessionRecord`s;
//! * `columnar` — the same aggregates over [`usaas::SessionFrame`] columns
//!   on one thread;
//! * `columnar_parallel` — frame columns fanned out across scoped workers.
//!
//! All three produce bit-identical answers (see `tests/frame_parity.rs`);
//! this bench measures only the layout and the fan-out. `frame_build`
//! prices the one-off materialisation the columnar paths depend on.
//!
//! The parallel variant's margin over single-thread columnar scales with
//! available cores; on a one-core box it only pays spawn overhead, but the
//! columnar layout win alone keeps both frame variants ahead of AoS.
//!
//! Run with `BENCH_JSON=results/BENCH_frame.json` (or via
//! `scripts/bench_json.sh`) to export the medians.

use bench::frame_dataset;
use conference::records::{CallDataset, EngagementMetric, NetworkMetric};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usaas::{correlate, SessionFrame};

/// Workers for the parallel variant.
const WORKERS: usize = 4;

/// One pass over the paper's §3 figure mix, AoS flavour.
fn figure_mix_aos(dataset: &CallDataset) {
    black_box(
        correlate::engagement_curve(
            dataset,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            8,
            8,
        )
        .unwrap(),
    );
    black_box(
        correlate::engagement_curve(
            dataset,
            NetworkMetric::LossPct,
            EngagementMetric::MicOn,
            8,
            8,
        )
        .unwrap(),
    );
    black_box(correlate::compounding_grid(dataset, EngagementMetric::Presence, 5, 5).unwrap());
    black_box(
        correlate::platform_curves(
            dataset,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            4,
            5,
        )
        .unwrap(),
    );
    black_box(correlate::mos_correlations(dataset).unwrap());
}

/// The same mix over frame columns with a configurable worker count.
fn figure_mix_frame(frame: &SessionFrame, workers: usize) {
    black_box(
        correlate::engagement_curve_frame(
            frame,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            8,
            8,
            workers,
        )
        .unwrap(),
    );
    black_box(
        correlate::engagement_curve_frame(
            frame,
            NetworkMetric::LossPct,
            EngagementMetric::MicOn,
            8,
            8,
            workers,
        )
        .unwrap(),
    );
    black_box(
        correlate::compounding_grid_frame(frame, EngagementMetric::Presence, 5, 5, workers)
            .unwrap(),
    );
    black_box(
        correlate::platform_curves_frame(
            frame,
            NetworkMetric::LatencyMs,
            EngagementMetric::Presence,
            4,
            5,
            workers,
        )
        .unwrap(),
    );
    black_box(correlate::mos_correlations_frame(frame).unwrap());
}

fn bench_frame_scan(c: &mut Criterion) {
    let dataset = frame_dataset();
    let frame = SessionFrame::from_dataset(&dataset, WORKERS);

    let mut group = c.benchmark_group("frame_scan");
    group.sample_size(10);
    group.bench_function("aos", |b| b.iter(|| figure_mix_aos(&dataset)));
    group.bench_function("columnar", |b| b.iter(|| figure_mix_frame(&frame, 1)));
    group.bench_function("columnar_parallel", |b| {
        b.iter(|| figure_mix_frame(&frame, WORKERS))
    });
    group.finish();

    let mut build = c.benchmark_group("frame_build");
    build.sample_size(10);
    build.bench_function("sequential", |b| {
        b.iter(|| black_box(SessionFrame::from_dataset(&dataset, 1)))
    });
    build.bench_function("parallel", |b| {
        b.iter(|| black_box(SessionFrame::from_dataset(&dataset, WORKERS)))
    });
    build.finish();
}

criterion_group!(benches, bench_frame_scan);
criterion_main!(benches);
