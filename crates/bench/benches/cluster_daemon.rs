//! Cluster daemon steady-state: the generic tick loop over a partition set.
//!
//! The daemon is generic over `ServeTarget`, so the same tick loop that
//! drives a single `UsaasService` can drive a `PartitionedService`
//! cluster — feeds and submit batches flow through the router's
//! partitioning ingest instead of a single engine. This bench measures
//! that path on an in-memory two-partition cluster (no fsync noise) and
//! a virtual clock (sleeps are atomic adds):
//!
//! * `healthy` — a clean trickle feed consumed in tick windows: the
//!   cluster daemon machinery's overhead over raw partitioned ingestion.
//! * `submit_burst` — the same items arriving as queued submit batches:
//!   the admission/queue path in front of the router.
//!
//! Run with `BENCH_JSON=results/BENCH_daemon.json` (or via
//! `scripts/bench_json.sh`) to export the medians alongside the
//! single-service daemon numbers.

use conference::dataset::{generate, DatasetConfig};
use conference::records::CallDataset;
use criterion::{criterion_group, criterion_main, Criterion};
use social::post::Forum;
use std::hint::black_box;
use std::sync::Arc;
use usaas::{
    Clock, ClusterDaemon, DaemonConfig, IngestConfig, ItemSource, PartitionedService, RawItem,
    VirtualClock,
};

/// Feed size per iteration.
const N: usize = 2_000;
/// Items pulled per feed per tick.
const WINDOW: usize = 256;
/// Normalisation workers per partition batch.
const WORKERS: usize = 4;
/// Cluster width.
const PARTITIONS: usize = 2;

fn feed_items() -> Vec<RawItem> {
    generate(&DatasetConfig::small(N, 17))
        .sessions
        .into_iter()
        .take(N)
        .map(|s| RawItem::Session(Box::new(s)))
        .collect()
}

fn base() -> CallDataset {
    generate(&DatasetConfig::small(200, 3))
}

fn daemon(base: &CallDataset, clock: Arc<VirtualClock>) -> ClusterDaemon {
    let svc = Arc::new(PartitionedService::build(
        base.clone(),
        Forum { posts: Vec::new() },
        PARTITIONS,
        WORKERS,
    ));
    let mut cfg = DaemonConfig::with_workers(WORKERS);
    cfg.ingest = IngestConfig::with_workers(WORKERS).with_clock(clock);
    cfg.tick_ms = 1_000;
    cfg.max_items_per_tick = WINDOW;
    cfg.checkpoint_every_ms = 0; // in-memory: no checkpoint cadence
    ClusterDaemon::new(svc, cfg)
}

/// Tick the daemon until every feed retires; returns total items fed so
/// the optimiser cannot elide the run.
fn run_feed(base: &CallDataset, items: &[RawItem]) -> usize {
    let clock = Arc::new(VirtualClock::new());
    let daemon = daemon(base, Arc::clone(&clock));
    daemon.register_feed(Box::new(ItemSource::new("bench-feed", items.to_vec())));
    let mut fed = 0;
    while !daemon.health().feeds.iter().all(|f| f.done) {
        fed += daemon.tick().fed;
        clock.sleep_ms(1_000);
    }
    fed
}

/// Submit the feed as queued batches, then tick until the queue drains.
fn run_submit(base: &CallDataset, items: &[RawItem]) -> usize {
    let clock = Arc::new(VirtualClock::new());
    let daemon = daemon(base, Arc::clone(&clock));
    let mut fed = 0;
    for batch in items.chunks(WINDOW) {
        daemon.submit(batch.to_vec());
        fed += daemon.tick().fed;
        clock.sleep_ms(1_000);
    }
    fed
}

fn bench_cluster_daemon(c: &mut Criterion) {
    let base = base();
    let items = feed_items();

    let mut group = c.benchmark_group("cluster_daemon");
    group.sample_size(10);
    group.bench_function("healthy", |b| b.iter(|| black_box(run_feed(&base, &items))));
    group.bench_function("submit_burst", |b| {
        b.iter(|| black_box(run_submit(&base, &items)))
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_daemon);
criterion_main!(benches);
