//! Persistence round-trip bench: what durability costs.
//!
//! Three phases over the same persisted service directory:
//!
//! * `checkpoint` — encode + checksum + atomic-rename a full snapshot of
//!   the service (dataset, forum, frame, store, health).
//! * `recover_snapshot` — `open_or_recover` of a directory whose journal
//!   is fully covered by the snapshot: pure snapshot decode + validation.
//! * `recover_replay` — `open_or_recover` of a directory holding only the
//!   epoch-0 snapshot plus a journaled append: decode plus the journal
//!   replay path (re-normalise, extend the frame, commit).
//!
//! The `persist_differential` group prices the dirty-column checkpoint
//! against those full snapshots, over the same service shape:
//!
//! * `checkpoint_full` — the forced full snapshot (the old behaviour).
//! * `checkpoint_diff` — the differential snapshot: only the session/post
//!   suffixes dirtied since the base, plus health and view keys.
//! * `recover_diff` — `open_or_recover` through the diff fast path: base
//!   decode + suffix apply instead of a full journal replay.
//!
//! Run with `BENCH_JSON=results/BENCH_persist.json` (or via
//! `scripts/bench_json.sh`) to export the medians.

use analytics::time::Date;
use conference::dataset::{generate, DatasetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use social::generator::{generate as gen_forum, ForumConfig};
use std::hint::black_box;
use std::path::PathBuf;
use usaas::UsaasService;

/// Calls in the base dataset per service.
const N: usize = 800;
/// Worker threads for builds and recovery.
const WORKERS: usize = 4;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("usaas-bench-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A persisted service with one journaled append on top of the epoch-0
/// snapshot; `checkpointed` controls whether a second snapshot covers it.
fn persisted_dir(tag: &str, checkpointed: bool) -> PathBuf {
    let dir = scratch(tag);
    let dataset = generate(&DatasetConfig::small(N, 17));
    let forum = gen_forum(&ForumConfig {
        authors: 400,
        end: Date::from_ymd(2021, 6, 30).unwrap(),
        ..ForumConfig::default()
    });
    let svc = UsaasService::build_persistent(dataset, forum, WORKERS, &dir).unwrap();
    let delta = generate(&DatasetConfig::small(N / 4, 99));
    svc.append_batch(delta.sessions, Vec::new());
    if checkpointed {
        svc.checkpoint().unwrap();
    }
    dir
}

fn bench_persist_roundtrip(c: &mut Criterion) {
    let snap_dir = persisted_dir("snap", true);
    let replay_dir = persisted_dir("replay", false);
    let svc = UsaasService::open_or_recover(&snap_dir, WORKERS).unwrap();

    let mut group = c.benchmark_group("persist_roundtrip");
    group.sample_size(10);
    group.bench_function("checkpoint", |b| {
        b.iter(|| black_box(svc.checkpoint_full().unwrap()))
    });
    group.bench_function("recover_snapshot", |b| {
        b.iter(|| {
            let recovered = UsaasService::open_or_recover(&snap_dir, WORKERS).unwrap();
            black_box(recovered.epoch())
        })
    });
    group.bench_function("recover_replay", |b| {
        b.iter(|| {
            let recovered = UsaasService::open_or_recover(&replay_dir, WORKERS).unwrap();
            black_box(recovered.epoch())
        })
    });
    group.finish();

    drop(svc);
    let _ = std::fs::remove_dir_all(&snap_dir);
    let _ = std::fs::remove_dir_all(&replay_dir);
}

fn bench_persist_differential(c: &mut Criterion) {
    // A service whose full base snapshot covers the build, with one
    // appended delta dirtying a session suffix: the checkpoint choice
    // point the differential path exists for.
    let diff_dir = persisted_dir("diff", false);
    let svc = UsaasService::open_or_recover(&diff_dir, WORKERS).unwrap();
    svc.checkpoint_full().unwrap();
    let delta = generate(&DatasetConfig::small(N / 4, 123));
    svc.append_batch(delta.sessions, Vec::new());

    let mut group = c.benchmark_group("persist_differential");
    // The diff write is small and fsync-dominated — extra samples keep
    // its min/median stable enough for the bench regression gate.
    group.sample_size(30);
    group.bench_function("checkpoint_full", |b| {
        b.iter(|| black_box(svc.checkpoint_full().unwrap()))
    });
    // Re-arm the diff base: the forced fulls above moved it to the
    // current sequence, so dirty it again before timing the diff.
    svc.checkpoint_full().unwrap();
    let delta = generate(&DatasetConfig::small(N / 4, 124));
    svc.append_batch(delta.sessions, Vec::new());
    group.bench_function("checkpoint_diff", |b| {
        b.iter(|| {
            let path = svc.checkpoint().unwrap();
            debug_assert!(path
                .file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("diff-"));
            black_box(path)
        })
    });
    group.bench_function("recover_diff", |b| {
        b.iter(|| {
            let recovered = UsaasService::open_or_recover(&diff_dir, WORKERS).unwrap();
            black_box(recovered.epoch())
        })
    });
    group.finish();

    drop(svc);
    let _ = std::fs::remove_dir_all(&diff_dir);
}

criterion_group!(benches, bench_persist_roundtrip, bench_persist_differential);
criterion_main!(benches);
