//! Criterion micro-benches for the substrates: path simulation throughput,
//! the loss chain, client aggregation, analytics primitives, the signal
//! store, and the ingestion pipeline.

use analytics::time::Date;
use analytics::timeseries::DailySeries;
use bench::bench_forum;
use conference::dataset::{generate, DatasetConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::access::AccessType;
use netsim::path::NetworkPath;
use netsim::sampler::ClientSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use usaas::ingest::ingest_all;
use usaas::store::SignalStore;

fn bench_path_ticks(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let targets = AccessType::Cable.sample_targets(&mut rng);
    c.bench_function("netsim_path_10k_ticks", |b| {
        b.iter(|| {
            let mut path = NetworkPath::from_targets(targets);
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += path.tick(&mut rng).latency_ms;
            }
            black_box(acc)
        });
    });
}

fn bench_client_sampler(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let targets = AccessType::Fiber.sample_targets(&mut rng);
    let mut path = NetworkPath::from_targets(targets);
    let samples: Vec<netsim::path::PathSample> = (0..720).map(|_| path.tick(&mut rng)).collect();
    c.bench_function("client_sampler_session_720_ticks", |b| {
        b.iter(|| {
            let mut sampler = ClientSampler::with_capacity(720);
            for s in &samples {
                sampler.record(black_box(s));
            }
            black_box(sampler.finish().expect("stats"))
        });
    });
}

fn bench_analytics_primitives(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    use rand::Rng;
    let xs: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..100.0)).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x * 0.5 + rng.gen_range(0.0..10.0))
        .collect();
    let mut group = c.benchmark_group("analytics");
    group.bench_function("pearson_10k", |b| {
        b.iter(|| black_box(analytics::pearson(black_box(&xs), black_box(&ys)).expect("r")));
    });
    group.bench_function("spearman_10k", |b| {
        b.iter(|| black_box(analytics::spearman(black_box(&xs), black_box(&ys)).expect("r")));
    });
    group.bench_function("percentile_10k", |b| {
        b.iter(|| black_box(analytics::percentile(black_box(&xs), 95.0).expect("p95")));
    });
    let start = Date::from_ymd(2021, 1, 1).expect("date");
    let series = DailySeries::from_values(start, xs[..730].to_vec()).expect("series");
    group.bench_function("peak_detection_730_days", |b| {
        b.iter(|| black_box(series.peaks(3.0, 3)));
    });
    group.finish();
}

fn bench_ingestion(c: &mut Criterion) {
    let dataset = generate(&DatasetConfig::small(150, 4));
    let forum = bench_forum();
    let mut group = c.benchmark_group("ingest_pipeline");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let store = SignalStore::new();
                    black_box(ingest_all(&store, &dataset, &forum, workers))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_path_ticks,
    bench_client_sampler,
    bench_analytics_primitives,
    bench_ingestion,
);
criterion_main!(benches);
