//! Criterion benches for the §4 (social) pipeline: corpus generation, every
//! figure's analysis, and the strong-threshold / negative-filter ablations.

use analytics::time::Month;
use bench::bench_forum;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sentiment::analyzer::SentimentAnalyzer;
use sentiment::corpus::CompiledDict;
use sentiment::keywords::KeywordDictionary;
use sentiment::wordcloud::WordCloud;
use social::generator::{generate, ForumConfig};
use social::post::Forum;
use std::hint::black_box;
use usaas::annotate::PeakAnnotator;
use usaas::emerging::EmergingTopicMiner;
use usaas::fulcrum::FulcrumAnalysis;
use usaas::outage::OutageDetector;

fn bench_forum_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("forum_generation");
    group.sample_size(10);
    for days in [30i32, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, &days| {
            b.iter(|| {
                let mut cfg = ForumConfig::default();
                cfg.end = cfg.start.offset(days);
                cfg.authors = 1500;
                black_box(generate(&cfg).len())
            });
        });
    }
    group.finish();
}

/// The first 2000 posts of the bench forum as their own corpus, so the
/// string and interned variants sweep exactly the same documents.
fn sub_forum_2000() -> Forum {
    let forum = bench_forum();
    Forum {
        posts: forum.posts.into_iter().take(2000).collect(),
    }
}

/// How the `interned` variants read their input: the corpus is built once
/// outside the timing loop — the tokenize-once contract — exactly as
/// `UsaasService` memoizes it across queries.
fn bench_corpus_build(c: &mut Criterion) {
    let forum = sub_forum_2000();
    let texts: Vec<String> = forum.posts.iter().map(|p| p.text()).collect();
    let mut group = c.benchmark_group("corpus_build_2000_posts");
    group.sample_size(20);
    // Baseline: what every string-path consumer pays per pass (tokenize
    // each document, no interning).
    group.bench_function("string_tokenize", |b| {
        b.iter(|| {
            let mut tokens = 0usize;
            for t in &texts {
                tokens += sentiment::tokenize::tokenize(black_box(t)).len();
            }
            black_box(tokens)
        });
    });
    for workers in [1usize, 4] {
        group.bench_function(format!("interned_{workers}w"), |b| {
            b.iter(|| black_box(forum.token_corpus(workers).total_tokens()));
        });
    }
    group.finish();
}

fn bench_sentiment_analyzer(c: &mut Criterion) {
    let forum = sub_forum_2000();
    let texts: Vec<String> = forum.posts.iter().map(|p| p.text()).collect();
    let corpus = forum.token_corpus(4);
    let analyzer = SentimentAnalyzer::default();
    let mut group = c.benchmark_group("sentiment_score_2000_posts");
    group.bench_function("string", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(analyzer.score(black_box(t)));
            }
        });
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            let vocab = corpus.vocab();
            for i in 0..corpus.docs() {
                black_box(analyzer.score_ids(black_box(corpus.doc(i)), vocab));
            }
        });
    });
    group.bench_function("interned_par4", |b| {
        b.iter(|| black_box(analyzer.score_corpus(black_box(&corpus), 4)));
    });
    group.finish();
}

fn bench_keyword_matcher(c: &mut Criterion) {
    let forum = sub_forum_2000();
    let texts: Vec<String> = forum.posts.iter().map(|p| p.text()).collect();
    let corpus = forum.token_corpus(4);
    let dict = KeywordDictionary::outages();
    let compiled = CompiledDict::compile(&dict, corpus.vocab());
    let mut group = c.benchmark_group("keyword_match_2000_posts");
    group.bench_function("string", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for t in &texts {
                total += dict.count_matches(black_box(t));
            }
            black_box(total)
        });
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut scratch = Vec::new();
            for i in 0..corpus.docs() {
                total += compiled.count_ids_with(black_box(corpus.doc(i)), &mut scratch);
            }
            black_box(total)
        });
    });
    group.bench_function("interned_par4", |b| {
        b.iter(|| black_box(compiled.count_corpus(black_box(&corpus), 4)));
    });
    group.finish();
}

fn bench_wordcloud(c: &mut Criterion) {
    let forum = sub_forum_2000();
    let texts: Vec<String> = forum.posts.iter().map(|p| p.text()).collect();
    let corpus = forum.token_corpus(4);
    let mut group = c.benchmark_group("wordcloud_2000_posts");
    group.bench_function("string", |b| {
        b.iter(|| {
            black_box(WordCloud::from_documents(
                texts.iter().map(String::as_str),
                50,
            ))
        });
    });
    group.bench_function("interned", |b| {
        b.iter(|| black_box(WordCloud::from_corpus_docs(&corpus, 0..corpus.docs(), 50)));
    });
    group.finish();
}

fn bench_ocr_extract(c: &mut Criterion) {
    let forum = bench_forum();
    let shots: Vec<String> = forum
        .speed_shares()
        .map(|p| p.screenshot.as_ref().unwrap().ocr_text.clone())
        .collect();
    assert!(!shots.is_empty());
    c.bench_function("ocr_extract_all_screenshots", |b| {
        b.iter(|| {
            let mut recovered = 0usize;
            for s in &shots {
                if ocr::extract::extract(black_box(s)).has_downlink() {
                    recovered += 1;
                }
            }
            black_box(recovered)
        });
    });
}

fn bench_fig5_annotate(c: &mut Criterion) {
    let forum = bench_forum();
    let annotator = PeakAnnotator::default();
    let mut group = c.benchmark_group("fig5_sentiment_peaks");
    group.sample_size(10);
    group.bench_function("annotate", |b| {
        b.iter(|| black_box(annotator.annotate(black_box(&forum), 3).expect("peaks")));
    });
    group.finish();
}

fn bench_fig6_detect(c: &mut Criterion) {
    let forum = bench_forum();
    let mut group = c.benchmark_group("fig6_outage_detection");
    group.sample_size(10);
    // Ablation: the paper's negative-sentiment filter on vs off.
    for (name, negative_filter) in [("with_negative_filter", true), ("without_filter", false)] {
        let detector = OutageDetector {
            negative_filter,
            ..OutageDetector::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(detector.detect(black_box(&forum)).expect("detect")));
        });
    }
    group.finish();
}

fn bench_fig7_fulcrum(c: &mut Criterion) {
    let forum = bench_forum();
    let analysis = FulcrumAnalysis {
        min_reports: 3,
        ..FulcrumAnalysis::default()
    };
    let start = Month::new(2021, 1).expect("month");
    let end = Month::new(2021, 4).expect("month");
    let mut group = c.benchmark_group("fig7_speeds");
    group.sample_size(10);
    group.bench_function("analyze", |b| {
        b.iter(|| {
            black_box(
                analysis
                    .analyze(black_box(&forum), start, end)
                    .expect("series"),
            )
        });
    });
    group.finish();
}

fn bench_emerging_topics(c: &mut Criterion) {
    let forum = bench_forum();
    let miner = EmergingTopicMiner::default();
    let mut group = c.benchmark_group("stats_roaming");
    group.sample_size(10);
    group.bench_function("mine", |b| {
        b.iter(|| black_box(miner.mine(black_box(&forum)).expect("topics")));
    });
    group.finish();
}

/// Ablation: strong-sentiment threshold sweep — how the Fig. 5a strong-post
/// counts respond to the ≥ 0.7 choice.
fn bench_strong_threshold_sweep(c: &mut Criterion) {
    let forum = bench_forum();
    let analyzer = SentimentAnalyzer::default();
    let corpus = forum.token_corpus(4);
    let scores: Vec<sentiment::analyzer::SentimentScores> = analyzer.score_corpus(&corpus, 4);
    let mut group = c.benchmark_group("strong_threshold_sweep");
    for threshold in [0.6f64, 0.7, 0.8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &threshold| {
                b.iter(|| {
                    let strong = scores
                        .iter()
                        .filter(|s| s.positive >= threshold || s.negative >= threshold)
                        .count();
                    black_box(strong)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forum_generation,
    bench_corpus_build,
    bench_sentiment_analyzer,
    bench_keyword_matcher,
    bench_wordcloud,
    bench_ocr_extract,
    bench_fig5_annotate,
    bench_fig6_detect,
    bench_fig7_fulcrum,
    bench_emerging_topics,
    bench_strong_threshold_sweep,
);
criterion_main!(benches);
