//! Resilient-ingestion throughput bench: what fault handling costs.
//!
//! Three regimes over the same session feed, all on a virtual clock (a
//! breaker cooldown costs one atomic add, not wall time):
//!
//! * `healthy` — a clean source straight through the streaming engine;
//!   the price of the retry/breaker/quarantine machinery when nothing
//!   goes wrong.
//! * `fault1pct` — ~1% drops plus ~1% single-shot transient failures:
//!   the retry path and fault hashing are exercised on a realistic
//!   flakiness level.
//! * `breaker_open` — the tail quarter of the feed hard-fails: the retry
//!   budget drains per item, the breaker trips and cycles through its
//!   cooldown, and the dead letters are quarantined.
//!
//! Run with `BENCH_JSON=results/BENCH_ingest.json` (or via
//! `scripts/bench_json.sh`) to export the medians.

use conference::dataset::{generate, DatasetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use usaas::{
    ingest_stream, BreakerConfig, Clock, FaultInjector, FaultPlan, IngestConfig, ItemSource,
    RawItem, SignalStore, VirtualClock,
};

/// Feed size per iteration.
const N: usize = 4_000;
/// Normalisation workers.
const WORKERS: usize = 4;

fn session_items() -> Vec<RawItem> {
    generate(&DatasetConfig::small(N, 17))
        .sessions
        .into_iter()
        .map(|s| RawItem::Session(Box::new(s)))
        .collect()
}

/// One full ingestion run over a fresh store; returns stored signals so
/// the optimiser cannot elide the work.
fn run(items: &[RawItem], plan: Option<&FaultPlan>) -> usize {
    let store = SignalStore::new();
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let cfg = IngestConfig {
        workers: WORKERS,
        breaker: BreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 1_000,
            half_open_successes: 1,
        },
        clock: Arc::clone(&clock),
        ..IngestConfig::default()
    };
    let src = ItemSource::new("bench-feed", items.to_vec());
    let report = match plan {
        Some(plan) => ingest_stream(
            &store,
            vec![Box::new(FaultInjector::new(src, plan.clone(), clock))],
            &cfg,
        ),
        None => ingest_stream(&store, vec![Box::new(src)], &cfg),
    };
    report.stored
}

fn bench_ingest_resilience(c: &mut Criterion) {
    let items = session_items();
    let fault1pct = FaultPlan::seeded(23)
        .with_drops(0.01)
        .with_transient(0.01, 1);
    let breaker_open = FaultPlan::seeded(23).with_burst((3 * N / 4)..N);

    let mut group = c.benchmark_group("ingest_resilience");
    group.sample_size(10);
    group.bench_function("healthy", |b| b.iter(|| black_box(run(&items, None))));
    group.bench_function("fault1pct", |b| {
        b.iter(|| black_box(run(&items, Some(&fault1pct))))
    });
    group.bench_function("breaker_open", |b| {
        b.iter(|| black_box(run(&items, Some(&breaker_open))))
    });
    group.finish();
}

criterion_group!(benches, bench_ingest_resilience);
criterion_main!(benches);
