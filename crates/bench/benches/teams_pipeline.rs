//! Criterion benches for the §3 (conferencing) pipeline: one benchmark per
//! figure/analysis plus the mitigation ablation that explains Fig. 1b.

use bench::{figure_dataset, BENCH_CALLS};
use conference::dataset::{generate_with, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric};
use conference::CallSimulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::mitigation::Mitigation;
use std::hint::black_box;
use usaas::correlate;
use usaas::predict::{train_and_evaluate, FeatureSet};

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    for calls in [200usize, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(calls), &calls, |b, &calls| {
            b.iter(|| {
                let cfg = DatasetConfig::small(calls, 1);
                black_box(conference::dataset::generate(&cfg).len())
            });
        });
    }
    group.finish();
}

fn bench_fig1_curves(c: &mut Criterion) {
    let ds = figure_dataset(BENCH_CALLS);
    let mut group = c.benchmark_group("fig1_engagement_curves");
    for (name, sweep) in [
        ("fig1_latency", NetworkMetric::LatencyMs),
        ("fig1_loss", NetworkMetric::LossPct),
        ("fig1_jitter", NetworkMetric::JitterMs),
        ("fig1_bandwidth", NetworkMetric::BandwidthMbps),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for metric in EngagementMetric::ALL {
                    let curve = correlate::engagement_curve(black_box(&ds), sweep, metric, 6, 5)
                        .expect("curve");
                    black_box(curve);
                }
            });
        });
    }
    group.finish();
}

fn bench_fig2_grid(c: &mut Criterion) {
    let ds = figure_dataset(BENCH_CALLS);
    c.bench_function("fig2_compounding_grid", |b| {
        b.iter(|| {
            black_box(
                correlate::compounding_grid(black_box(&ds), EngagementMetric::Presence, 5, 3)
                    .expect("grid"),
            )
        });
    });
}

fn bench_fig3_platforms(c: &mut Criterion) {
    let ds = figure_dataset(BENCH_CALLS);
    c.bench_function("fig3_platform_curves", |b| {
        b.iter(|| {
            black_box(
                correlate::platform_curves(
                    black_box(&ds),
                    NetworkMetric::LossPct,
                    EngagementMetric::Presence,
                    4,
                    3,
                )
                .expect("curves"),
            )
        });
    });
}

fn bench_fig4_mos(c: &mut Criterion) {
    let ds = figure_dataset(BENCH_CALLS);
    c.bench_function("fig4_mos_correlation", |b| {
        b.iter(|| {
            for m in EngagementMetric::ALL {
                black_box(correlate::mos_by_engagement(black_box(&ds), m, 4, 2).expect("curve"));
            }
            black_box(correlate::mos_correlations(&ds).expect("ranking"));
        });
    });
}

fn bench_mos_predictor(c: &mut Criterion) {
    // Train on a dataset with a raised feedback rate so fits are non-trivial.
    let mut sim = CallSimulator::default();
    sim.feedback.rate = 0.1;
    let ds = generate_with(&DatasetConfig::small(BENCH_CALLS, 5), &sim);
    c.bench_function("mos_predict_train_eval", |b| {
        b.iter(|| {
            black_box(train_and_evaluate(black_box(&ds), FeatureSet::Full, 4).expect("train"))
        });
    });
}

/// Ablation: how much work the mitigation stack does — the same dataset
/// generated with and without app-layer safeguards, measuring the Fig. 1b
/// loss-panel drop. (The timing is incidental; the printed drop difference
/// is the ablation result.)
fn bench_mitigation_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mitigation_ablation");
    group.sample_size(10);
    for (name, mitigation) in [
        ("enabled", Mitigation::default()),
        ("disabled", Mitigation::disabled()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let sim = CallSimulator {
                    mitigation,
                    ..CallSimulator::default()
                };
                let ds = generate_with(&DatasetConfig::small(150, 77), &sim);
                let c = correlate::engagement_curve(
                    &ds,
                    NetworkMetric::LossPct,
                    EngagementMetric::Presence,
                    5,
                    2,
                )
                .expect("curve");
                black_box((c.first_y(), c.last_y()))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dataset_generation,
    bench_fig1_curves,
    bench_fig2_grid,
    bench_fig3_platforms,
    bench_fig4_mos,
    bench_mos_predictor,
    bench_mitigation_ablation,
);
criterion_main!(benches);
