//! Lock-contention bench for the sharded `SignalStore`: eight writer threads
//! hammering per-item inserts, against the same workload forced through a
//! single shard (the old one-big-lock layout, reachable via
//! `SignalStore::with_shards(1)`).

use analytics::time::Date;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::access::AccessType;
use std::hint::black_box;
use usaas::signals::{ExplicitSignal, NetworkHint, Payload, Signal};
use usaas::store::SignalStore;

const WORKERS: usize = 8;
const PER_WORKER: usize = 2_000;
/// Two years of days, matching the corpus span the store serves in practice.
const SPAN_DAYS: i32 = 730;

fn signal(date: Date, id: u64) -> Signal {
    Signal {
        date,
        network: NetworkHint::from_access(AccessType::Cable),
        payload: Payload::Explicit(ExplicitSignal {
            rating: (id % 5) as u8 + 1,
            call_id: id,
            user_id: id / 7,
        }),
    }
}

fn worker_batches() -> Vec<Vec<Signal>> {
    let base = Date::from_ymd(2021, 1, 1).expect("date");
    (0..WORKERS)
        .map(|w| {
            (0..PER_WORKER)
                .map(|i| {
                    let id = (w * PER_WORKER + i) as u64;
                    signal(base.offset((id % SPAN_DAYS as u64) as i32), id)
                })
                .collect()
        })
        .collect()
}

fn bench_store_contention(c: &mut Criterion) {
    let batches = worker_batches();
    let mut group = c.benchmark_group("store_contention");
    group.sample_size(10);
    for (label, shards) in [("single_lock", 1usize), ("sharded_16", 16)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &shards, |b, &shards| {
            b.iter(|| {
                let store = SignalStore::with_shards(shards);
                let store = &store;
                std::thread::scope(|s| {
                    for batch in &batches {
                        s.spawn(move || {
                            for sig in batch {
                                store.insert(sig.clone());
                            }
                        });
                    }
                });
                black_box(store.len())
            });
        });
    }
    group.finish();
}

fn bench_batch_inserts(c: &mut Criterion) {
    let batches = worker_batches();
    let mut group = c.benchmark_group("store_insert_batch");
    group.sample_size(10);
    for (label, shards) in [("single_lock", 1usize), ("sharded_16", 16)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &shards, |b, &shards| {
            b.iter(|| {
                let store = SignalStore::with_shards(shards);
                let store = &store;
                std::thread::scope(|s| {
                    for batch in &batches {
                        s.spawn(move || store.insert_batch(batch.clone()));
                    }
                });
                black_box(store.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_contention, bench_batch_inserts);
criterion_main!(benches);
