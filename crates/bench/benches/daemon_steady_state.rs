//! Daemon steady-state throughput: what the tick loop costs.
//!
//! The continuous-serving daemon funnels its submit queue and feed
//! windows through one `ingest_append` per tick. This bench drives a
//! full feed through the tick loop on an in-memory service (no fsync
//! noise) and a virtual clock (sleeps are atomic adds), in three
//! regimes:
//!
//! * `healthy` — a clean trickle feed consumed in tick windows: the
//!   daemon machinery's overhead over raw ingestion.
//! * `fault1pct` — the same feed behind ~1% drops plus ~1% single-shot
//!   transient failures: the steady-state price of realistic flakiness.
//! * `submit_burst` — the same items arriving as queued submit batches
//!   instead of a registered feed: the admission/queue path.
//!
//! Run with `BENCH_JSON=results/BENCH_daemon.json` (or via
//! `scripts/bench_json.sh`) to export the medians.

use conference::dataset::{generate, DatasetConfig};
use conference::records::CallDataset;
use criterion::{criterion_group, criterion_main, Criterion};
use social::post::Forum;
use std::hint::black_box;
use std::sync::Arc;
use usaas::{
    Clock, Daemon, DaemonConfig, FaultInjector, FaultPlan, IngestConfig, ItemSource, RawItem,
    UsaasService, VirtualClock,
};

/// Feed size per iteration.
const N: usize = 2_000;
/// Items pulled per feed per tick.
const WINDOW: usize = 256;
/// Normalisation workers.
const WORKERS: usize = 4;

fn feed_items() -> Vec<RawItem> {
    generate(&DatasetConfig::small(N, 17))
        .sessions
        .into_iter()
        .take(N)
        .map(|s| RawItem::Session(Box::new(s)))
        .collect()
}

fn base() -> CallDataset {
    generate(&DatasetConfig::small(200, 3))
}

fn daemon(base: &CallDataset, clock: Arc<VirtualClock>) -> Daemon {
    let svc = Arc::new(UsaasService::build(
        base.clone(),
        Forum { posts: Vec::new() },
        WORKERS,
    ));
    let mut cfg = DaemonConfig::with_workers(WORKERS);
    cfg.ingest = IngestConfig::with_workers(WORKERS).with_clock(clock);
    cfg.tick_ms = 1_000;
    cfg.max_items_per_tick = WINDOW;
    cfg.checkpoint_every_ms = 0; // in-memory: no checkpoint cadence
    Daemon::new(svc, cfg)
}

/// Tick the daemon until every feed retires; returns total items fed so
/// the optimiser cannot elide the run.
fn run_feed(base: &CallDataset, items: &[RawItem], plan: Option<&FaultPlan>) -> usize {
    let clock = Arc::new(VirtualClock::new());
    let daemon = daemon(base, Arc::clone(&clock));
    let src = ItemSource::new("bench-feed", items.to_vec());
    match plan {
        Some(plan) => daemon.register_feed(Box::new(FaultInjector::new(
            src,
            plan.clone(),
            clock.clone() as Arc<dyn Clock>,
        ))),
        None => daemon.register_feed(Box::new(src)),
    }
    let mut fed = 0;
    while !daemon.health().feeds.iter().all(|f| f.done) {
        fed += daemon.tick().fed;
        clock.sleep_ms(1_000);
    }
    fed
}

/// Submit the feed as queued batches, then tick until the queue drains.
fn run_submit(base: &CallDataset, items: &[RawItem]) -> usize {
    let clock = Arc::new(VirtualClock::new());
    let daemon = daemon(base, Arc::clone(&clock));
    let mut fed = 0;
    for batch in items.chunks(WINDOW) {
        daemon.submit(batch.to_vec());
        fed += daemon.tick().fed;
        clock.sleep_ms(1_000);
    }
    fed
}

fn bench_daemon_steady_state(c: &mut Criterion) {
    let base = base();
    let items = feed_items();
    let fault1pct = FaultPlan::seeded(23)
        .with_drops(0.01)
        .with_transient(0.01, 1);

    let mut group = c.benchmark_group("daemon_steady_state");
    group.sample_size(10);
    group.bench_function("healthy", |b| {
        b.iter(|| black_box(run_feed(&base, &items, None)))
    });
    group.bench_function("fault1pct", |b| {
        b.iter(|| black_box(run_feed(&base, &items, Some(&fault1pct))))
    });
    group.bench_function("submit_burst", |b| {
        b.iter(|| black_box(run_submit(&base, &items)))
    });
    group.finish();
}

criterion_group!(benches, bench_daemon_steady_state);
criterion_main!(benches);
