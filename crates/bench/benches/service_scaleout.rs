//! Scale-out serving bench: the consistent-hash partitioned
//! [`usaas::PartitionedService`] against its own single-partition
//! configuration on the same corpus.
//!
//! Two groups price the two serving regimes:
//!
//! - `scaleout_batch`: the steady-state `query_batch` figure mix. After
//!   the first sample every answer is served by the cluster's merged-
//!   answer cache, so this measures the router overhead a partitioned
//!   deployment adds to cache-hit serving — it must stay flat as
//!   partitions grow.
//! - `scaleout_fresh`: the uncached text-heavy queries (`answer_fresh`
//!   bypasses the merged-answer cache) with **one worker per partition**,
//!   so the scatter fan-out is the only parallelism. The §4/§5 sentiment
//!   and topic scans dominate; each partition scans its shard of the
//!   forum concurrently, and the residual is the router's merge cost.

use bench::{bench_forum, BENCH_CALLS};
use conference::dataset::{generate, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::access::AccessType;
use std::hint::black_box;
use usaas::service::Query;
use usaas::PartitionedService;

const PARTITION_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn query_mix() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::MicOn,
            bins: 6,
        },
        Query::CompoundingGrid {
            engagement: EngagementMetric::Presence,
            bins: 4,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
        Query::DeploymentAdvice,
        Query::SentimentPeaks { k: 3 },
    ]
}

/// The uncached scatter set: every query here re-scans the social corpus
/// (sentiment scoring, OCR speed shots, outage keyword hits), so partition
/// count directly controls the per-shard scan size — while the merged
/// partials stay small (band counts, dated evals, daily hit counts), so
/// the router residual doesn't swamp the scan savings.
fn text_mix() -> Vec<Query> {
    vec![
        Query::DeploymentAdvice,
        Query::SpeedTrend,
        Query::OutageTimeline,
    ]
}

fn clusters(workers: usize) -> Vec<(usize, PartitionedService)> {
    PARTITION_COUNTS
        .iter()
        .map(|&partitions| {
            let dataset = generate(&DatasetConfig::small(BENCH_CALLS, 4));
            (
                partitions,
                PartitionedService::build(dataset, bench_forum(), partitions, workers),
            )
        })
        .collect()
}

fn bench_scaleout_batch(c: &mut Criterion) {
    let clusters = clusters(4);
    let queries = query_mix();
    let mut group = c.benchmark_group("scaleout_batch");
    group.sample_size(10);
    for (partitions, cluster) in &clusters {
        group.bench_function(BenchmarkId::new("partitions", partitions), |b| {
            b.iter(|| black_box(cluster.query_batch(&queries)));
        });
    }
    group.finish();
}

fn bench_scaleout_fresh(c: &mut Criterion) {
    // One worker per partition: the scatter fan-out is the only
    // parallelism, so the group isolates what sharding itself buys (and
    // what the router's cross-partition merges cost) on the text scans.
    let clusters = clusters(1);
    let queries = text_mix();
    let mut group = c.benchmark_group("scaleout_fresh");
    group.sample_size(10);
    for (partitions, cluster) in &clusters {
        group.bench_function(BenchmarkId::new("partitions", partitions), |b| {
            b.iter(|| {
                let answers: Vec<_> = queries.iter().map(|q| cluster.answer_fresh(q)).collect();
                black_box(answers)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaleout_batch, bench_scaleout_fresh);
criterion_main!(benches);
