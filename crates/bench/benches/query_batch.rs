//! Query-serving bench: the parallel `UsaasService::query_batch` executor
//! against the same query mix answered sequentially.

use bench::{bench_forum, BENCH_CALLS};
use conference::dataset::{generate, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::access::AccessType;
use std::hint::black_box;
use usaas::service::{Query, UsaasService};

fn query_mix() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::MicOn,
            bins: 6,
        },
        Query::EngagementCurve {
            sweep: NetworkMetric::JitterMs,
            engagement: EngagementMetric::CamOn,
            bins: 6,
        },
        Query::CompoundingGrid {
            engagement: EngagementMetric::Presence,
            bins: 4,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
        Query::DeploymentAdvice,
    ]
}

fn bench_query_batch(c: &mut Criterion) {
    let dataset = generate(&DatasetConfig::small(BENCH_CALLS, 4));
    let service = UsaasService::build(dataset, bench_forum(), 4);
    let queries = query_mix();
    let mut group = c.benchmark_group("query_batch");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let answers: Vec<_> = queries.iter().map(|q| service.query(q)).collect();
            black_box(answers)
        });
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(service.query_batch(&queries)));
    });
    group.finish();
}

criterion_group!(benches, bench_query_batch);
criterion_main!(benches);
