//! Query-serving bench: the parallel `UsaasService::query_batch` executor
//! against the same query mix answered sequentially, plus the memoized
//! steady state — repeated mixes collapsing onto the answer cache, and a
//! multi-tenant fan-out where several dashboards replay the mix at once.
//!
//! The service memoizes answers by query parameters, so after the first
//! sample every group here measures cache-served latency; the uncached
//! aggregate compute is priced separately by the `frame_scan` bench.

use bench::{bench_forum, BENCH_CALLS};
use conference::dataset::{generate, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::access::AccessType;
use std::hint::black_box;
use usaas::service::{Query, UsaasService};

fn query_mix() -> Vec<Query> {
    vec![
        Query::EngagementCurve {
            sweep: NetworkMetric::LatencyMs,
            engagement: EngagementMetric::MicOn,
            bins: 6,
        },
        Query::EngagementCurve {
            sweep: NetworkMetric::JitterMs,
            engagement: EngagementMetric::CamOn,
            bins: 6,
        },
        Query::CompoundingGrid {
            engagement: EngagementMetric::Presence,
            bins: 4,
        },
        Query::MosCorrelation,
        Query::OutageTimeline,
        Query::SpeedTrend,
        Query::CrossNetwork {
            access: AccessType::SatelliteLeo,
        },
        Query::DeploymentAdvice,
    ]
}

fn bench_query_batch(c: &mut Criterion) {
    let dataset = generate(&DatasetConfig::small(BENCH_CALLS, 4));
    let service = UsaasService::build(dataset, bench_forum(), 4);
    let queries = query_mix();
    let mut group = c.benchmark_group("query_batch");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let answers: Vec<_> = queries.iter().map(|q| service.query(q)).collect();
            black_box(answers)
        });
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(service.query_batch(&queries)));
    });
    // The same mix replayed four times in one batch: the answer cache
    // computes each distinct aggregate once and serves the repeats.
    let repeated: Vec<Query> = std::iter::repeat_with(|| queries.clone())
        .take(4)
        .flatten()
        .collect();
    group.bench_function("repeated_mix_cached", |b| {
        b.iter(|| black_box(service.query_batch(&repeated)));
    });
    group.finish();
}

/// Three tenants, each with its own service (own corpus, own cache),
/// replaying the figure mix concurrently — the steady-state serving load of
/// a small multi-dashboard deployment.
fn bench_multi_tenant(c: &mut Criterion) {
    let services: Vec<UsaasService> = (0..3)
        .map(|tenant| {
            let dataset = generate(&DatasetConfig::small(BENCH_CALLS, 4 + tenant));
            UsaasService::build(dataset, bench_forum(), 4)
        })
        .collect();
    let queries = query_mix();
    let mut group = c.benchmark_group("multi_tenant");
    group.sample_size(10);
    group.bench_function("three_dashboards", |b| {
        b.iter(|| {
            let mut answers: Vec<Option<_>> = Vec::new();
            answers.resize_with(services.len(), || None);
            crossbeam::thread::scope(|scope| {
                for (slot, service) in answers.iter_mut().zip(&services) {
                    let queries = &queries;
                    scope.spawn(move |_| {
                        *slot = Some(service.query_batch(queries));
                    });
                }
            })
            .unwrap();
            black_box(answers)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_query_batch, bench_multi_tenant);
criterion_main!(benches);
