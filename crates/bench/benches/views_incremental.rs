//! Materialized-view steady-state bench: the cost of absorbing a small
//! append and re-serving the hot dashboard mix, two ways —
//!
//! * `fresh` — the pre-view world: every epoch invalidates everything, so
//!   each hot answer is recomputed from the full corpus
//!   ([`usaas::Generation::answer_fresh`]);
//! * `incremental` — the view-backed path: [`usaas::ViewSet`] carries each
//!   accumulator across the epoch roll, `append_batch` advances it by the
//!   delta, and the query pays only the cheap finishing pass.
//!
//! Both arms do identical work per iteration — append one fixed 100-call
//! batch, then answer the full hot set — at corpora of 1k/10k/100k calls.
//! The view answers are bit-identical to the fresh ones (pinned by
//! `tests/views_parity.rs`); this bench prices the maintenance strategy
//! only. The fresh arm's cost grows with the corpus; the incremental
//! arm's tracks the batch, so the gap widens with corpus size.
//!
//! Run with `BENCH_JSON=results/BENCH_views.json` (or via
//! `scripts/bench_json.sh`) to export the medians.

use bench::bench_forum;
use conference::dataset::{generate, DatasetConfig};
use conference::records::{EngagementMetric, NetworkMetric, SessionRecord};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usaas::{Query, UsaasService};

/// Worker count for both arms.
const WORKERS: usize = 4;

/// Sessions in the per-iteration append.
const BATCH: usize = 100;

/// Corpus sizes (calls) swept by the comparison.
const SIZES: [(usize, &str); 3] = [(1_000, "1k"), (10_000, "10k"), (100_000, "100k")];

/// The hot dashboard mix: every figure the paper's operator dashboard
/// re-requests after each ingest — the correlation-bin sweeps across all
/// four network metrics, the compounding grids, platform sensitivity, the
/// MOS aggregates, the sentiment day-series, the outage timeline, and the
/// deployment ranking.
fn hot_queries() -> Vec<Query> {
    let mut queries = Vec::new();
    for sweep in NetworkMetric::ALL {
        queries.push(Query::EngagementCurve {
            sweep,
            engagement: EngagementMetric::Presence,
            bins: 8,
        });
    }
    queries.push(Query::EngagementCurve {
        sweep: NetworkMetric::LossPct,
        engagement: EngagementMetric::MicOn,
        bins: 8,
    });
    queries.push(Query::EngagementCurve {
        sweep: NetworkMetric::LatencyMs,
        engagement: EngagementMetric::CamOn,
        bins: 8,
    });
    for engagement in EngagementMetric::ALL {
        queries.push(Query::CompoundingGrid {
            engagement,
            bins: 5,
        });
    }
    queries.push(Query::PlatformSensitivity {
        sweep: NetworkMetric::LatencyMs,
        engagement: EngagementMetric::Presence,
    });
    queries.push(Query::PlatformSensitivity {
        sweep: NetworkMetric::LossPct,
        engagement: EngagementMetric::Presence,
    });
    queries.push(Query::MosCorrelation);
    queries.push(Query::SentimentPeaks { k: 3 });
    queries.push(Query::OutageTimeline);
    queries.push(Query::DeploymentAdvice);
    queries
}

/// The fixed append absorbed every iteration.
fn batch() -> Vec<SessionRecord> {
    generate(&DatasetConfig::small(BATCH, 0xBEE)).sessions
}

fn bench_views_incremental(c: &mut Criterion) {
    let forum = bench_forum();
    let queries = hot_queries();
    let delta = batch();

    let mut group = c.benchmark_group("views_incremental");
    group.sample_size(10);

    for (calls, label) in SIZES {
        let dataset = generate(&DatasetConfig::small(calls, 0xA11));

        // Fresh arm: no views ever installed; each iteration recomputes
        // the whole mix from the post-append corpus, as every epoch did
        // before the view layer existed.
        let fresh = UsaasService::build(dataset.clone(), forum.clone(), WORKERS);
        // Prime the shared token corpus so neither arm pays first-touch
        // tokenization inside the timing loop.
        let _ = fresh
            .snapshot()
            .answer_fresh(&Query::SentimentPeaks { k: 3 });
        group.bench_function(format!("fresh_{label}"), |b| {
            b.iter(|| {
                black_box(fresh.append_batch(delta.clone(), Vec::new()));
                let generation = fresh.snapshot();
                for q in &queries {
                    black_box(generation.answer_fresh(q)).ok();
                }
            })
        });

        // Incremental arm: install the views once, then each iteration's
        // append advances them by the delta and the queries pay only the
        // finishing pass.
        let svc = UsaasService::build(dataset, forum.clone(), WORKERS);
        for q in &queries {
            let _ = svc.query(q);
        }
        assert!(
            !svc.snapshot().views().is_empty(),
            "hot queries must install views before the timing loop"
        );
        group.bench_function(format!("incremental_{label}"), |b| {
            b.iter(|| {
                black_box(svc.append_batch(delta.clone(), Vec::new()));
                for q in &queries {
                    black_box(svc.query(q)).ok();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_views_incremental);
criterion_main!(benches);
